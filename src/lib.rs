//! # ri-tree: the Relational Interval Tree, reproduced in Rust
//!
//! A complete, from-scratch reproduction of **"Managing Intervals
//! Efficiently in Object-Relational Databases"** (Hans-Peter Kriegel,
//! Marco Pötke, Thomas Seidl; VLDB 2000) — the RI-tree — including the
//! relational storage engine it runs on, the competing access methods it
//! was evaluated against, and the full experiment harness regenerating
//! every table and figure of the paper's evaluation.
//!
//! This facade re-exports the public API of all member crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `ritree-core` | the RI-tree: [`core::RiTree`], [`core::Interval`], Allen relations, `now`/∞ endpoints |
//! | [`relstore`] | `ri-relstore` | the relational engine: [`relstore::Database`], tables, indexes, plans, EXPLAIN |
//! | [`btree`] | `ri-btree` | the disk-based composite-key B+-tree |
//! | [`pagestore`] | `ri-pagestore` | buffer pool, block devices, I/O statistics, latency model |
//! | [`baselines`] | `ri-baselines` | T-index, IST, MAP21, Window-List |
//! | [`mem`] | `ri-mem` | main-memory structures behind the [`mem::IntervalIndex`] trait: interval tree, segment tree, skip list, HINT, naive oracle |
//! | [`workloads`] | `ri-workloads` | the paper's Table 1 data distributions and query generators |
//!
//! ## Quick start
//!
//! ```
//! use ri_tree::prelude::*;
//!
//! // An in-memory database with the paper's server configuration
//! // (2 KB blocks, 200-block cache).
//! let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
//! let db = Arc::new(Database::create(pool).unwrap());
//!
//! // CREATE TABLE Intervals (node, lower, upper, id) + the two composite
//! // indexes of the paper's Figure 2 — all in one call:
//! let tree = RiTree::create(db, "demo").unwrap();
//!
//! tree.insert(Interval::new(10, 20).unwrap(), 1).unwrap();
//! tree.insert(Interval::new(15, 40).unwrap(), 2).unwrap();
//!
//! assert_eq!(tree.intersection(Interval::new(18, 30).unwrap()).unwrap(),
//!            vec![1, 2]);
//! ```
//!
//! ## Concurrency
//!
//! Readers and writers both scale across threads: the buffer pool is
//! lock-striped, the B+-trees are **B-link trees** (readers descend with
//! no latches at all; writers latch one node at a time and splits never
//! exclude anyone), and the relational layer exposes batch façades —
//! [`relstore::Database::execute_parallel`] /
//! [`core::RiTree::intersection_batch`] for reads,
//! [`relstore::Database::execute_mixed`] / [`core::RiTree::insert_batch`]
//! for mixed and write batches.  Single-threaded use stays deterministic:
//! the page-access sequence is pinned by golden counters, so every figure
//! of the paper is exactly reproducible.  See ARCHITECTURE.md for the
//! B-link protocol.
//!
//! ## Durability
//!
//! Attach a second device as a write-ahead log and the database becomes
//! crash-safe: [`pagestore::BufferPool::new_durable`] enforces
//! WAL-before-data via page LSNs, [`relstore::Database::commit`]
//! group-commits (one log fsync can cover many concurrent committers),
//! [`relstore::Database::checkpoint`] truncates the log *fuzzily* —
//! callers need not be quiescent; the truncation horizon spares every
//! in-flight transaction's rollback before-images — and
//! [`relstore::Database::open`] replays the committed tail after a
//! crash.  Pools built without a WAL behave exactly like the original
//! volatile engine — same goldens, byte for byte.  The contract is
//! enforced by `tests/crash_recovery.rs`, which kills workloads
//! (including checkpoints racing open transactions) at every
//! device-write index and every sync barrier, torn writes included,
//! and verifies recovery each time.
//!
//! ## Bulk load & beyond-paper scale
//!
//! Loading a large dataset into a fresh tree does not descend the tree
//! once per row: [`core::RiTree::insert_batch`] routes batches of
//! ≥ [`core::BULK_BATCH_MIN`] intervals into an *empty* tree through a
//! bottom-up, fill-rate-1.0 builder ([`btree::BTree::bulk_build_into`])
//! that writes each index page exactly once, left to right — `O(pages)`
//! sequential I/O instead of `O(n · height)` descents.
//! [`workloads::WorkloadSpec::stream`] generates the paper's data
//! distributions as `O(1)`-memory iterators, so million-to-ten-million
//! interval datasets (the `fig21_scaleup` figure) never materialize in
//! RAM.  Bulk-built and insert-built trees are observably equivalent
//! (proptest-checked in `tests/bulk_load.rs`).
//!
//! ## The HINT hot tier
//!
//! Skewed read workloads can keep their hot range in memory:
//! [`core::HotTier`] wraps an [`core::RiTree`] with a read-through
//! cache backed by [`mem::HintIndex`] — a comparison-free hierarchical
//! interval index (HINT) — under a configurable interval budget
//! ([`core::HotTierConfig`]).  Admission is 2Q with a decaying
//! frequency gate (scans cannot thrash residents), eviction is
//! lowest-frequency-first, and coherence is exact: route DML through
//! [`core::HotTier::insert`] / [`core::HotTier::delete`] and a query
//! through the tier never returns a deleted interval nor misses a
//! committed one (stress-proven in `crates/core/tests/hot_tier.rs`).
//! The `fig23_hot_tier` figure measures ≥5× fewer physical pool reads
//! at Zipf s = 1.0 with a budget of 75% of the stored intervals.
//!
//! See `examples/` for runnable scenarios (temporal reservations with
//! `now`/∞, spatial curve segments, engineering tolerances) and
//! `crates/bench/src/bin/` for the per-figure experiment binaries.

pub use ri_baselines as baselines;
pub use ri_btree as btree;
pub use ri_mem as mem;
pub use ri_pagestore as pagestore;
pub use ri_relstore as relstore;
pub use ri_workloads as workloads;
pub use ritree_core as core;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use ri_pagestore::{BufferPool, BufferPoolConfig, FileDisk, MemDisk, DEFAULT_PAGE_SIZE};
    pub use ri_relstore::{Database, IntervalAccessMethod};
    pub use ritree_core::{
        AllenRelation, HotTier, HotTierConfig, HotTierStats, Interval, OpenEnd, RiTree,
    };
    pub use std::sync::Arc;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_quickstart() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
        let db = Arc::new(Database::create(pool).unwrap());
        let tree = RiTree::create(db, "demo").unwrap();
        tree.insert(Interval::new(1, 2).unwrap(), 7).unwrap();
        assert_eq!(tree.stab(1).unwrap(), vec![7]);
    }
}
