//! Stress under pathological buffer-pool configurations: correctness must
//! not depend on the cache being large enough.

use ri_tree::baselines::{Ist, IstOrder, TileIndex};
use ri_tree::mem::NaiveIntervalSet;
use ri_tree::pagestore::{BufferPool, BufferPoolConfig};
use ri_tree::prelude::*;

fn env(frames: usize) -> Arc<Database> {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::with_capacity(frames),
    ));
    Arc::new(Database::create(pool).unwrap())
}

#[test]
fn single_frame_pool_ritree() {
    let db = env(1); // every access evicts
    let tree = RiTree::create(db, "t").unwrap();
    let mut naive = NaiveIntervalSet::new();
    let mut x = 0xACDCu64;
    for id in 0..800i64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let l = (x % 20_000) as i64;
        let len = ((x >> 33) % 900) as i64;
        tree.insert(Interval::new(l, l + len).unwrap(), id).unwrap();
        naive.insert(l, l + len, id);
    }
    for q in [(0, 25_000), (5000, 5100), (12_345, 12_345)] {
        assert_eq!(
            tree.intersection(Interval::new(q.0, q.1).unwrap()).unwrap(),
            naive.intersection(q.0, q.1)
        );
    }
}

#[test]
fn four_frame_pool_mixed_updates() {
    let db = env(4);
    let tree = RiTree::create(db, "t").unwrap();
    let mut naive = NaiveIntervalSet::new();
    let mut x = 0xBEEF5u64;
    for step in 0..1500i64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let l = (x % 10_000) as i64;
        let len = ((x >> 40) % 300) as i64;
        if x.is_multiple_of(4) && !naive.is_empty() {
            // Delete a known interval.
            let victims = naive.triples().to_vec();
            let (dl, du, did) = victims[(x >> 20) as usize % victims.len()];
            assert!(tree.delete(Interval::new(dl, du).unwrap(), did).unwrap(), "step {step}");
            naive.delete(dl, du, did);
        } else {
            tree.insert(Interval::new(l, l + len).unwrap(), step).unwrap();
            naive.insert(l, l + len, step);
        }
    }
    assert_eq!(tree.count().unwrap(), naive.len() as u64);
    for q in [(0, 11_000), (2500, 2600), (9999, 9999)] {
        assert_eq!(
            tree.intersection(Interval::new(q.0, q.1).unwrap()).unwrap(),
            naive.intersection(q.0, q.1),
            "query {q:?}"
        );
    }
}

#[test]
fn small_pool_baselines_agree() {
    let data: Vec<(i64, i64)> = (0..600)
        .map(|i| {
            let l = (i * 131) % 30_000;
            (l, l + (i * 7) % 2000)
        })
        .collect();
    let naive = NaiveIntervalSet::from_triples(
        data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)),
    );
    let ti = TileIndex::build_bulk(env(3), "x", 8, &data).unwrap();
    let ist = Ist::build_bulk(env(3), "x", IstOrder::D, &data).unwrap();
    for q in [(0, 35_000), (15_000, 15_500), (29_000, 40_000)] {
        assert_eq!(ti.am_intersection(q.0, q.1).unwrap(), naive.intersection(q.0, q.1));
        assert_eq!(ist.am_intersection(q.0, q.1).unwrap(), naive.intersection(q.0, q.1));
    }
}

#[test]
fn cache_size_changes_io_but_not_results() {
    let data: Vec<(i64, i64)> =
        (0..3000).map(|i| (i * 17 % 50_000, i * 17 % 50_000 + 800)).collect();
    let mut io_by_cache = Vec::new();
    let mut results = Vec::new();
    for frames in [4, 40, 400] {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(frames),
        ));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(db, "t").unwrap();
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        }
        pool.clear_cache().unwrap();
        let before = pool.stats().snapshot();
        let mut total = 0;
        for q in (0..50_000).step_by(5000) {
            total += tree.intersection(Interval::new(q, q + 200).unwrap()).unwrap().len();
        }
        io_by_cache.push(pool.stats().snapshot().since(&before).physical_reads);
        results.push(total);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "results vary with cache size");
    assert!(
        io_by_cache[0] >= io_by_cache[2],
        "smaller cache should not do fewer reads: {io_by_cache:?}"
    );
}
