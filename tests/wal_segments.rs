//! Size-bounded log segments and the background flusher, end to end on
//! file-backed devices: a database whose WAL rolls over many tiny
//! segments survives close/reopen, checkpoints retire segments without
//! growing the log file forever, and a `FlushPolicy::Background` pool
//! round-trips through `Database::close` (flusher joined, log
//! truncated) with nothing lost.

mod common;

use common::{durable_file_pool_with, TempDir};
use ri_tree::pagestore::{FlushPolicy, WalConfig};
use ri_tree::prelude::*;

/// Deterministic interval for row `id`.
fn iv(id: i64) -> Interval {
    let lo = (id * 131) % 60_000;
    Interval::new(lo, lo + 200 + id % 97).unwrap()
}

/// Tiny segments (4 pages = 3 payload pages per segment at the default
/// 2 KB page size) force rollovers on every few inserts; committed work
/// must survive a plain close/reopen across many segment boundaries.
#[test]
fn tiny_segments_survive_reopen_across_many_rollovers() {
    const ROWS: i64 = 300;
    let dir = TempDir::new("wal-seg-reopen");
    let (data, wal) = (dir.file("data"), dir.file("wal"));
    let config = WalConfig { segment_pages: 4, ..WalConfig::default() };
    {
        let pool = durable_file_pool_with(&data, &wal, config);
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        for id in 0..ROWS {
            tree.insert(iv(id), id).unwrap();
            if id % 7 == 0 {
                db.commit().unwrap();
            }
        }
        db.commit().unwrap();
        let s = pool.wal().unwrap().stats();
        assert!(s.segments_created >= 10, "3 KB segments must roll over constantly: {s:?}");
        // No checkpoint before the drop: reopen replays the whole
        // segmented tail.
    }
    let pool = durable_file_pool_with(&data, &wal, config);
    let db = Arc::new(Database::open(Arc::clone(&pool)).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), ROWS as u64, "no committed insert may be lost");
    for id in 0..ROWS {
        assert!(tree.stab(iv(id).lower).unwrap().contains(&id), "row {id} lost");
    }
}

/// Checkpoints retire whole segments and recycle their device slots:
/// under a steady write/checkpoint cadence the log *file* stops
/// growing, instead of accreting one segment per rollover forever.
#[test]
fn checkpoints_bound_the_log_file_size() {
    let dir = TempDir::new("wal-seg-bound");
    let (data, wal) = (dir.file("data"), dir.file("wal"));
    let config = WalConfig { segment_pages: 4, ..WalConfig::default() };
    let pool = durable_file_pool_with(&data, &wal, config);
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    // Warm-up rounds so the slot pool reaches its steady-state size.
    let mut id = 0i64;
    let round = |id: &mut i64| {
        for _ in 0..20 {
            tree.insert(iv(*id), *id).unwrap();
            *id += 1;
        }
        db.commit().unwrap();
        db.checkpoint().unwrap();
    };
    for _ in 0..5 {
        round(&mut id);
    }
    let wal_handle = pool.wal().unwrap();
    let pages_at_steady_state = wal_handle.stats();
    let file_pages = std::fs::metadata(&wal).unwrap().len() / DEFAULT_PAGE_SIZE as u64;
    for _ in 0..10 {
        round(&mut id);
    }
    let s = wal_handle.stats();
    assert!(
        s.segments_retired > pages_at_steady_state.segments_retired,
        "checkpoints must keep retiring segments: {s:?}"
    );
    // Without slot recycling every segment created after the warm-up
    // would be a fresh 4-page carve; with it the file grows at most
    // marginally (the per-round record volume still creeps up as the
    // tree gains pages, so allow a couple of late carves).
    let created = s.segments_created - pages_at_steady_state.segments_created;
    let file_pages_after = std::fs::metadata(&wal).unwrap().len() / DEFAULT_PAGE_SIZE as u64;
    let grown_pages = file_pages_after - file_pages;
    assert!(created >= 10, "ten more rounds must keep rolling over: {s:?}");
    assert!(
        grown_pages <= 2 * 4,
        "recycling must reuse retired slots: {created} segments created after warm-up \
         but the file grew {grown_pages} pages (no-recycling growth would be {})",
        created * 4
    );
    assert_eq!(tree.count().unwrap(), id as u64);
}

/// A `FlushPolicy::Background` database: the flusher drains large
/// transactions ahead of their commits, `Database::close` joins the
/// thread and truncates the log, and a reopen finds everything.
#[test]
fn background_flusher_roundtrips_through_close() {
    const ROWS: i64 = 400;
    let dir = TempDir::new("wal-flusher-close");
    let (data, wal) = (dir.file("data"), dir.file("wal"));
    let config = WalConfig {
        flush_policy: FlushPolicy::Background { watermark_bytes: 1024 },
        ..WalConfig::default()
    };
    {
        let pool = durable_file_pool_with(&data, &wal, config);
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        // Two large transactions: plenty of buffered bytes between
        // commits for the watermark to wake the flusher on.
        for id in 0..ROWS {
            tree.insert(iv(id), id).unwrap();
            if id == ROWS / 2 {
                db.commit().unwrap();
            }
        }
        db.commit().unwrap();
        let s = pool.wal().unwrap().stats();
        assert_eq!(
            s.syncs,
            s.commit_syncs + s.forced_syncs + s.checkpoint_syncs,
            "sync identity must hold with the flusher running: {s:?}"
        );
        db.close().unwrap();
        let s = pool.wal().unwrap().stats();
        assert_eq!(s.checkpoints, 1, "close takes the final checkpoint");
    }
    // Reopen under FlushPolicy::Off: policies interoperate on the same
    // log device (the policy is a pool property, not an on-disk one).
    let pool = durable_file_pool_with(&data, &wal, WalConfig::default());
    let db = Arc::new(Database::open(Arc::clone(&pool)).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), ROWS as u64, "no committed insert may be lost");
    for id in (0..ROWS).step_by(17) {
        assert!(tree.stab(iv(id).lower).unwrap().contains(&id), "row {id} lost");
    }
}
