//! Property tests across the whole stack: the RI-tree (and its Allen
//! queries) must agree with the naive oracle for arbitrary data and
//! queries, including after interleaved deletions.

use proptest::prelude::*;
use ri_tree::mem::NaiveIntervalSet;
use ri_tree::pagestore::{BufferPool, BufferPoolConfig};
use ri_tree::prelude::*;

fn tree_env(frames: usize) -> RiTree {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::with_capacity(frames),
    ));
    let db = Arc::new(Database::create(pool).unwrap());
    RiTree::create(db, "p").unwrap()
}

fn interval_strategy() -> impl Strategy<Value = (i64, i64)> {
    (-2000i64..2000, 0i64..500).prop_map(|(l, len)| (l, l + len))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn intersection_matches_oracle(
        data in prop::collection::vec(interval_strategy(), 0..200),
        queries in prop::collection::vec(interval_strategy(), 1..20),
    ) {
        let tree = tree_env(16);
        let mut naive = NaiveIntervalSet::new();
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
            naive.insert(l, u, id as i64);
        }
        for &(ql, qu) in &queries {
            let got = tree.intersection(Interval::new(ql, qu).unwrap()).unwrap();
            prop_assert_eq!(got, naive.intersection(ql, qu));
        }
    }

    #[test]
    fn deletions_keep_agreement(
        data in prop::collection::vec(interval_strategy(), 1..150),
        delete_mask in prop::collection::vec(any::<bool>(), 1..150),
        query in interval_strategy(),
    ) {
        let tree = tree_env(16);
        let mut naive = NaiveIntervalSet::new();
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
            naive.insert(l, u, id as i64);
        }
        for (id, &(l, u)) in data.iter().enumerate() {
            if *delete_mask.get(id).unwrap_or(&false) {
                prop_assert!(tree.delete(Interval::new(l, u).unwrap(), id as i64).unwrap());
                naive.delete(l, u, id as i64);
            }
        }
        let (ql, qu) = query;
        let got = tree.intersection(Interval::new(ql, qu).unwrap()).unwrap();
        prop_assert_eq!(got, naive.intersection(ql, qu));
        prop_assert_eq!(tree.count().unwrap(), naive.len() as u64);
    }

    #[test]
    fn allen_relations_match_oracle(
        data in prop::collection::vec(interval_strategy(), 0..120),
        query in interval_strategy(),
    ) {
        let tree = tree_env(32);
        let mut naive = NaiveIntervalSet::new();
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
            naive.insert(l, u, id as i64);
        }
        let q = Interval::new(query.0, query.1).unwrap();
        for rel in AllenRelation::ALL {
            let got = tree.allen(rel, q).unwrap();
            let want = naive.filter(|l, u| rel.matches(&Interval::new(l, u).unwrap(), &q));
            prop_assert_eq!(got, want, "{:?} on {}", rel, q);
        }
    }

    #[test]
    fn fork_level_lemma_via_public_api(
        data in prop::collection::vec(interval_strategy(), 1..100),
    ) {
        // Section 3.4 Lemma, checked through the stored rows: every
        // interval's fork node w satisfies l <= w + offset <= u.
        let tree = tree_env(32);
        for (id, &(l, u)) in data.iter().enumerate() {
            tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        }
        let p = tree.load_params().unwrap();
        let offset = p.offset.unwrap();
        for &(l, u) in &data {
            let w = p.fork_of(l, u).unwrap();
            prop_assert!(l <= w + offset && w + offset <= u,
                "fork {} outside [{}, {}]", w + offset, l, u);
        }
    }
}
