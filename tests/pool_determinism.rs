//! Determinism regression: a `shards = 1` buffer pool must reproduce the
//! seed (single-`Mutex`) pool's behavior *byte for byte* — same hits, same
//! misses, same eviction victims, same write-backs, same counters after
//! every single operation.
//!
//! Figures 13 and 14 report exact physical block access counts; any drift
//! in LRU victim selection or counter accounting would silently change
//! those figures.  This suite pins the behavior two ways:
//!
//! 1. an in-test **reference model** — a direct reimplementation of the
//!    seed pool's LRU algorithm over a plain `Vec` disk — is stepped in
//!    lockstep with the real pool through a scripted operation sequence,
//!    comparing all four [`IoStats`] counters after every operation;
//! 2. **golden constants** captured from the seed implementation pin the
//!    final counters and a fingerprint of the whole counter trace, so the
//!    reference model itself cannot drift along with the code under test.

use ri_tree::btree::BTree;
use ri_tree::pagestore::{BufferPool, BufferPoolConfig, IoSnapshot, MemDisk, PageId};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_SIZE: usize = 256;
const CAPACITY: usize = 8;
const NUM_PAGES: u64 = 24;
const OPS: u64 = 600;

/// Golden values captured from the seed implementation (single global
/// `Mutex`, pre-sharding). `shards = 1` must reproduce them exactly.
const GOLDEN_FINAL: IoSnapshot = IoSnapshot {
    logical_reads: 362,
    logical_writes: 253,
    physical_reads: 415,
    physical_writes: 213,
};
const GOLDEN_TRACE_HASH: u64 = 0x1532_5ee0_cd08_3d4e;

/// Reference reimplementation of the seed pool: LRU over `capacity`
/// frames, write-back on eviction, logical/physical counters bumped at
/// exactly the same points as `pagestore::buffer`.
struct RefPool {
    disk: Vec<Vec<u8>>,
    frames: Vec<RefFrame>,
    table: HashMap<u64, usize>,
    clock: u64,
    capacity: usize,
    stats: IoSnapshot,
}

struct RefFrame {
    page: u64,
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

impl RefPool {
    fn new(num_pages: u64, capacity: usize) -> Self {
        RefPool {
            disk: (0..num_pages).map(|_| vec![0u8; PAGE_SIZE]).collect(),
            frames: Vec::new(),
            table: HashMap::new(),
            clock: 0,
            capacity,
            stats: IoSnapshot::default(),
        }
    }

    fn ensure_resident(&mut self, id: u64) -> usize {
        self.clock += 1;
        let now = self.clock;
        if let Some(&idx) = self.table.get(&id) {
            self.frames[idx].last_used = now;
            return idx;
        }
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(RefFrame {
                page: u64::MAX,
                data: vec![0u8; PAGE_SIZE],
                dirty: false,
                last_used: 0,
            });
            self.frames.len() - 1
        } else {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(i, _)| i)
                .unwrap();
            if self.frames[victim].dirty {
                let page = self.frames[victim].page;
                self.disk[page as usize].copy_from_slice(&self.frames[victim].data);
                self.stats.physical_writes += 1;
                self.frames[victim].dirty = false;
            }
            let old = self.frames[victim].page;
            self.table.remove(&old);
            victim
        };
        let fr = &mut self.frames[idx];
        fr.data.copy_from_slice(&self.disk[id as usize]);
        self.stats.physical_reads += 1;
        fr.page = id;
        fr.dirty = false;
        fr.last_used = now;
        self.table.insert(id, idx);
        idx
    }

    fn read(&mut self, id: u64) -> Vec<u8> {
        self.stats.logical_reads += 1;
        let idx = self.ensure_resident(id);
        self.frames[idx].data.clone()
    }

    fn write(&mut self, id: u64, f: impl FnOnce(&mut [u8])) {
        self.stats.logical_writes += 1;
        let idx = self.ensure_resident(id);
        let mut buf = self.frames[idx].data.clone();
        f(&mut buf);
        let idx = self.ensure_resident(id);
        self.frames[idx].data.copy_from_slice(&buf);
        self.frames[idx].dirty = true;
    }

    fn flush_all(&mut self) {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty {
                let page = self.frames[idx].page;
                self.disk[page as usize].copy_from_slice(&self.frames[idx].data);
                self.stats.physical_writes += 1;
                self.frames[idx].dirty = false;
            }
        }
    }

    fn clear_cache(&mut self) {
        self.flush_all();
        self.table.clear();
        self.frames.clear();
    }
}

/// xorshift64 — fixed seed, fully deterministic op sequence.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

#[test]
fn shards_1_reproduces_seed_pool_byte_for_byte() {
    let pool = BufferPool::new(MemDisk::new(PAGE_SIZE), BufferPoolConfig::with_capacity(CAPACITY));
    let pages: Vec<PageId> = (0..NUM_PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    let mut model = RefPool::new(NUM_PAGES, CAPACITY);

    let mut x = 0x5EED_CAFE_u64;
    let mut trace_hash = 0xcbf2_9ce4_8422_2325_u64;
    for op in 1..=OPS {
        let r = next(&mut x);
        let id = r % NUM_PAGES;
        if op % 151 == 0 {
            pool.clear_cache().unwrap();
            model.clear_cache();
        } else if op % 97 == 0 {
            pool.flush_all().unwrap();
            model.flush_all();
        } else if r % 100 < 60 {
            let got = pool.with_page(pages[id as usize], |d| d.to_vec()).unwrap();
            let want = model.read(id);
            assert_eq!(got, want, "op {op}: page {id} contents diverged");
        } else {
            let stamp = (r >> 32) as u8;
            let off = (r >> 24) as usize % PAGE_SIZE;
            pool.with_page_mut(pages[id as usize], |d| {
                d[off] = stamp;
                d[0] = d[0].wrapping_add(1);
            })
            .unwrap();
            model.write(id, |d| {
                d[off] = stamp;
                d[0] = d[0].wrapping_add(1);
            });
        }
        let snap = pool.stats().snapshot();
        assert_eq!(
            (snap.logical_reads, snap.logical_writes, snap.physical_reads, snap.physical_writes),
            (
                model.stats.logical_reads,
                model.stats.logical_writes,
                model.stats.physical_reads,
                model.stats.physical_writes
            ),
            "op {op}: counters diverged from the seed LRU model"
        );
        trace_hash = fnv1a(trace_hash, snap.logical_reads);
        trace_hash = fnv1a(trace_hash, snap.logical_writes);
        trace_hash = fnv1a(trace_hash, snap.physical_reads);
        trace_hash = fnv1a(trace_hash, snap.physical_writes);
    }

    // Final state: every page byte-identical between pool and model.
    pool.flush_all().unwrap();
    model.flush_all();
    for (id, &pid) in pages.iter().enumerate() {
        let got = pool.with_page(pid, |d| d.to_vec()).unwrap();
        assert_eq!(got, model.disk[id], "page {id} final contents diverged");
    }

    let final_snap = pool.stats().snapshot();
    eprintln!(
        "GOLDEN logical_reads: {}, logical_writes: {}, physical_reads: {}, physical_writes: {}, trace_hash: {:#x}",
        final_snap.logical_reads,
        final_snap.logical_writes,
        final_snap.physical_reads,
        final_snap.physical_writes,
        trace_hash
    );
    assert_eq!(final_snap, GOLDEN_FINAL, "final counters drifted from the seed pool");
    assert_eq!(trace_hash, GOLDEN_TRACE_HASH, "counter trace drifted from the seed pool");
}

// ----------------------------------------------------------------------
// Write-path determinism (PR 3)
// ----------------------------------------------------------------------

/// Golden values captured from the B-link write path at the moment of
/// the PR 5 format change (page format v2: right links + high keys;
/// latch-free descents; two-phase splits; deletes leave empty leaves in
/// place).  Single-threaded, the page-access sequence is fully
/// deterministic: same logical reads/writes, same misses, same eviction
/// victims, after every single operation.
///
/// The PR 3/4 goldens (captured from the pre-latching seed algorithm)
/// necessarily retired with the format: the v2 tree stores high keys,
/// allocates under the meta latch, never frees pages, and therefore has
/// a different — but still exactly pinned — access trace.  The
/// `GOLDEN_WRITE_CONTENT_HASH` below is **unchanged from the seed**:
/// the tree's logical contents after the mixed phase are bit-for-bit
/// what the seed algorithm produced.
///
/// Re-capture with `scripts/recapture-goldens.sh` (never edit by hand);
/// CI runs `scripts/recapture-goldens.sh --check` so these cannot drift
/// silently.
const GOLDEN_WRITE_FINAL: IoSnapshot = IoSnapshot {
    logical_reads: 5464,
    logical_writes: 1879,
    physical_reads: 2656,
    physical_writes: 862,
};
const GOLDEN_WRITE_TRACE_HASH: u64 = 0x2421_b40b_9a31_2471;
/// FNV-1a over the phase-1 `(key0, key1, payload)` stream of `scan_all`,
/// pinning the tree *contents*, not just the I/O counters.  Identical to
/// the seed's value: the B-link refactor changed the physical trace, not
/// what the tree stores.
const GOLDEN_WRITE_CONTENT_HASH: u64 = 0xa89f_0873_6e03_39b2;

#[test]
fn btree_write_path_reproduces_seed_byte_for_byte() {
    // 256-byte pages (leaf capacity 9, internal capacity 7) over an
    // 8-frame single-shard pool: constant splits and evictions, the seed
    // pool's LRU exercised by every structural move the tree makes.
    let pool =
        Arc::new(BufferPool::new(MemDisk::new(PAGE_SIZE), BufferPoolConfig::with_capacity(8)));
    let stats = pool.stats();
    let tree = BTree::create(Arc::clone(&pool), 2).unwrap();

    let mut live: Vec<(i64, i64, u64)> = Vec::new();
    let mut model: std::collections::BTreeSet<(i64, i64, u64)> = std::collections::BTreeSet::new();
    let mut x = 0x5EED_1DEA_u64;
    let mut trace_hash = 0xcbf2_9ce4_8422_2325_u64;
    let mut op_count = 0u64;

    let step = |snap: IoSnapshot, trace_hash: &mut u64, op_count: &mut u64| {
        *op_count += 1;
        *trace_hash = fnv1a(*trace_hash, snap.logical_reads);
        *trace_hash = fnv1a(*trace_hash, snap.logical_writes);
        *trace_hash = fnv1a(*trace_hash, snap.physical_reads);
        *trace_hash = fnv1a(*trace_hash, snap.physical_writes);
    };

    // Phase 1: mixed inserts / deletes / scans over a narrow key domain
    // (many duplicates, frequent delete hits, leaf splits throughout).
    for _ in 0..600 {
        let r = next(&mut x);
        let a = (r % 40) as i64 - 20;
        let b = ((r >> 16) % 40) as i64 - 20;
        let p = (r >> 48) % 8;
        match r % 100 {
            0..=59 => {
                if model.insert((a, b, p)) {
                    tree.insert(&[a, b], p).unwrap();
                    live.push((a, b, p));
                }
            }
            60..=84 => {
                let target = if !live.is_empty() && r % 3 != 0 {
                    live[(r >> 8) as usize % live.len()]
                } else {
                    (a, b, p) // often a miss
                };
                let existed = model.remove(&target);
                assert_eq!(tree.delete(&[target.0, target.1], target.2).unwrap(), existed);
                if existed {
                    live.retain(|&e| e != target);
                }
            }
            _ => {
                let (lo, hi) = (a.min(b), a.max(b));
                let got = tree.scan_range(&[lo, i64::MIN], &[hi, i64::MAX]).count();
                let want = model.iter().filter(|&&(k, _, _)| k >= lo && k <= hi).count();
                assert_eq!(got, want);
            }
        }
        step(stats.snapshot(), &mut trace_hash, &mut op_count);
    }

    // Contents after the mixed phase, pinned independently of the
    // counters (the drain below empties the tree).
    let mut content_hash = 0xcbf2_9ce4_8422_2325_u64;
    for e in tree.scan_all() {
        let e = e.unwrap();
        content_hash = fnv1a(content_hash, e.key.col(0) as u64);
        content_hash = fnv1a(content_hash, e.key.col(1) as u64);
        content_hash = fnv1a(content_hash, e.payload);
    }

    // Phase 2: drain the tree in a seeded order — exercises the B-link
    // delete path down to the entry-free tree: emptied leaves stay
    // linked (deletes never restructure), keep routing, and are refilled
    // by the interleaved re-inserts below.
    while !live.is_empty() {
        let r = next(&mut x);
        let target = live.swap_remove(r as usize % live.len());
        assert!(model.remove(&target));
        assert!(tree.delete(&[target.0, target.1], target.2).unwrap());
        step(stats.snapshot(), &mut trace_hash, &mut op_count);
        if r % 5 == 0 {
            // Re-grow a little so the drain crosses leaf boundaries
            // repeatedly instead of monotonically shrinking.
            let a = (r % 23) as i64 - 11;
            let b = ((r >> 20) % 23) as i64 - 11;
            let p = 8 + (r >> 50) % 4;
            if model.insert((a, b, p)) {
                tree.insert(&[a, b], p).unwrap();
                live.push((a, b, p));
            }
            step(stats.snapshot(), &mut trace_hash, &mut op_count);
        }
    }
    assert_eq!(tree.entry_count().unwrap(), 0, "phase 2 drains the tree");
    tree.check_invariants().unwrap();

    let final_snap = stats.snapshot();
    eprintln!(
        "GOLDEN-WRITE ops: {op_count}, logical_reads: {}, logical_writes: {}, physical_reads: {}, physical_writes: {}, trace_hash: {:#x}, content_hash: {:#x}",
        final_snap.logical_reads,
        final_snap.logical_writes,
        final_snap.physical_reads,
        final_snap.physical_writes,
        trace_hash,
        content_hash
    );
    assert_eq!(final_snap, GOLDEN_WRITE_FINAL, "write-path counters drifted from the seed");
    assert_eq!(trace_hash, GOLDEN_WRITE_TRACE_HASH, "write-path counter trace drifted");
    assert_eq!(content_hash, GOLDEN_WRITE_CONTENT_HASH, "final tree contents drifted");
}
