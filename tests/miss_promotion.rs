//! Stress and protocol tests for the buffer pool's promoted miss path:
//! device reads run *outside* the shard lock (three-phase
//! reserve/fetch/publish), same-page faults coalesce single-flight,
//! reserved frames are never evicted, and flush/clear drain in-flight
//! misses before touching frames.
//!
//! The tests drive real device-read ordering through the
//! [`FaultyDisk`] read hooks: a hook blocks (or rendezvouses) inside the
//! device read itself, which is exactly the window the old
//! fetch-under-the-lock implementation could never expose concurrently.

use ri_tree::pagestore::{
    BufferPool, BufferPoolConfig, FaultPlan, FaultyDisk, MemDisk, PageId, PoolStats,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const PAGE_SIZE: usize = 256;
/// Generous bound for "the other thread gets scheduled"; reached only on
/// regression (a read serialized that must overlap), never in passing runs.
const STALL: Duration = Duration::from_secs(20);

/// Rendezvous point: `arrive_and_wait(n)` blocks until `n` parties are
/// inside, panicking (with a protocol diagnosis) on timeout.
#[derive(Default)]
struct Gate {
    count: Mutex<u32>,
    cv: Condvar,
}

impl Gate {
    fn arrive_and_wait(&self, parties: u32, why: &str) {
        let mut count = self.count.lock().unwrap();
        *count += 1;
        self.cv.notify_all();
        let deadline = Instant::now() + STALL;
        while *count < parties {
            let left = deadline.saturating_duration_since(Instant::now());
            assert!(!left.is_zero(), "gate timed out — {why}");
            let (c, _) = self.cv.wait_timeout(count, left).unwrap();
            count = c;
        }
        self.cv.notify_all();
    }
}

/// Spin until `pred` holds, panicking on timeout.  Used from inside read
/// hooks to sequence the *other* threads' observable progress.
fn wait_until(pred: impl Fn() -> bool, why: &str) {
    let deadline = Instant::now() + STALL;
    while !pred() {
        assert!(Instant::now() < deadline, "condition timed out — {why}");
        std::thread::yield_now();
    }
}

struct TestEnv {
    disk: Arc<FaultyDisk<MemDisk>>,
    pool: Arc<BufferPool>,
    stats: PoolStats,
}

/// A pool over a hook-capable device; `shards` stripes over `frames`
/// total frames.  The `Arc<FaultyDisk>` stays accessible after the pool
/// takes ownership (the `DiskManager for Arc<D>` forwarder).
fn env(frames: usize, shards: usize) -> TestEnv {
    let disk = Arc::new(FaultyDisk::new(MemDisk::new(PAGE_SIZE), FaultPlan::default()));
    let pool =
        Arc::new(BufferPool::new(Arc::clone(&disk), BufferPoolConfig::sharded(frames, shards)));
    let stats = pool.stats();
    TestEnv { disk, pool, stats }
}

/// Allocates `n` pages stamped with their index, then empties the cache so
/// every page is cold.
fn cold_pages(env: &TestEnv, n: u64) -> Vec<PageId> {
    let pages: Vec<PageId> = (0..n)
        .map(|i| {
            let p = env.pool.allocate_page().unwrap();
            env.pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
            p
        })
        .collect();
    env.pool.clear_cache().unwrap();
    pages
}

/// Two threads, same (single) shard, disjoint cold pages: with promoted
/// misses *both* device reads are in flight at once — neither thread
/// waits for the other's fetch.  Under the old fetch-under-the-lock
/// implementation the second read could not start until the first
/// finished, and this rendezvous would dead-time-out.
#[test]
fn disjoint_cold_misses_in_one_shard_overlap() {
    let env = env(4, 1);
    let pages = cold_pages(&env, 2);
    let io_before = env.stats.snapshot();
    let miss_before = env.stats.miss_snapshot();
    let gate = Arc::new(Gate::default());
    let g = Arc::clone(&gate);
    env.disk.set_read_hook(Some(Arc::new(move |_page, _n| {
        g.arrive_and_wait(2, "both cold reads must be in flight simultaneously");
    })));
    let mut handles = Vec::new();
    for (i, &p) in pages.iter().enumerate() {
        let pool = Arc::clone(&env.pool);
        handles.push(std::thread::spawn(move || {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    env.disk.set_read_hook(None);
    assert_eq!(env.stats.snapshot().since(&io_before).physical_reads, 2);
    assert_eq!(env.stats.miss_snapshot().since(&miss_before).lock_free_reads, 2);
}

/// Four threads fault the same cold page: exactly one device read is
/// issued; the other three coalesce on the in-flight entry and are served
/// from the published frame.
#[test]
fn same_page_faults_coalesce_to_one_device_read() {
    let env = env(4, 1);
    let pages = cold_pages(&env, 1);
    let page = pages[0];
    let reads_before = env.disk.reads_attempted();
    let io_before = env.stats.snapshot();
    let miss_before = env.stats.miss_snapshot();

    // The fetcher's device read parks until all three other faults have
    // registered as coalesced — proving they are blocked on the in-flight
    // entry, not queued for their own read.
    let stats = env.stats.clone();
    env.disk.set_read_hook(Some(Arc::new(move |_page, _n| {
        let base = miss_before.coalesced_faults;
        wait_until(
            || stats.miss_snapshot().coalesced_faults >= base + 3,
            "three concurrent faults must coalesce on the in-flight read",
        );
    })));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let pool = Arc::clone(&env.pool);
        handles.push(std::thread::spawn(move || {
            assert_eq!(pool.with_page(page, |d| d[0]).unwrap(), 0);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    env.disk.set_read_hook(None);

    assert_eq!(env.disk.reads_attempted() - reads_before, 1, "single-flight: one device read");
    let io = env.stats.snapshot().since(&io_before);
    assert_eq!(io.physical_reads, 1);
    assert_eq!(io.logical_reads, 4);
    let miss = env.stats.miss_snapshot().since(&miss_before);
    assert_eq!(miss.coalesced_faults, 3);
    assert_eq!(miss.lock_free_reads, 1);
}

/// Capacity-1 shard: while the only frame is reserved by an in-flight
/// miss, a fault on a different page must *wait for the publish* rather
/// than evict the reserved frame (whose buffer is out with the fetcher).
#[test]
fn fault_waits_when_every_frame_is_reserved() {
    let env = env(1, 1);
    let pages = cold_pages(&env, 2);
    let (p, q) = (pages[0], pages[1]);

    // P's read parks until Q's fault has *entered* the pool (its logical
    // read is counted before it can possibly block on the reservation).
    let stats = env.stats.clone();
    let io_before = env.stats.snapshot();
    let logical_before = io_before.logical_reads;
    let first_read = Arc::new(AtomicBool::new(true));
    let fr = Arc::clone(&first_read);
    env.disk.set_read_hook(Some(Arc::new(move |_page, _n| {
        if fr.swap(false, Ordering::SeqCst) {
            wait_until(
                || stats.snapshot().logical_reads >= logical_before + 2,
                "the second fault must arrive while the frame is reserved",
            );
            // Give the second fault time to reach its wait; if it were
            // (incorrectly) allowed to evict the reserved frame, the
            // publish below would corrupt or panic.
            std::thread::sleep(Duration::from_millis(50));
        }
    })));
    let pool_a = Arc::clone(&env.pool);
    let a = std::thread::spawn(move || assert_eq!(pool_a.with_page(p, |d| d[0]).unwrap(), 0));
    let pool_b = Arc::clone(&env.pool);
    let b = std::thread::spawn(move || assert_eq!(pool_b.with_page(q, |d| d[0]).unwrap(), 1));
    a.join().unwrap();
    b.join().unwrap();
    env.disk.set_read_hook(None);
    assert_eq!(
        env.stats.snapshot().since(&io_before).physical_reads,
        2,
        "Q faulted after P published"
    );
}

/// `flush_all` must drain in-flight misses before walking frames: while a
/// fetch is parked inside its device read, a concurrent flush blocks; it
/// completes promptly once the fetch publishes.
#[test]
fn flush_all_waits_for_in_flight_misses() {
    let env = env(2, 1);
    let pages = cold_pages(&env, 1);
    let page = pages[0];

    let release = Arc::new(AtomicBool::new(false));
    let rel = Arc::clone(&release);
    env.disk.set_read_hook(Some(Arc::new(move |_page, _n| {
        wait_until(|| rel.load(Ordering::SeqCst), "test releases the parked fetch");
    })));

    let disk = Arc::clone(&env.disk);
    let reads_base = disk.reads_attempted();
    let pool_reader = Arc::clone(&env.pool);
    let reader = std::thread::spawn(move || {
        assert_eq!(pool_reader.with_page(page, |d| d[0]).unwrap(), 0);
    });
    // Wait until the fetch is genuinely in flight (device read started).
    wait_until(|| disk.reads_attempted() > reads_base, "fetch reaches the device");

    let flushed = Arc::new(AtomicBool::new(false));
    let (pool_f, flag) = (Arc::clone(&env.pool), Arc::clone(&flushed));
    let flusher = std::thread::spawn(move || {
        pool_f.flush_all().unwrap();
        flag.store(true, Ordering::SeqCst);
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!flushed.load(Ordering::SeqCst), "flush_all ran past an in-flight miss");

    release.store(true, Ordering::SeqCst);
    reader.join().unwrap();
    flusher.join().unwrap();
    assert!(flushed.load(Ordering::SeqCst));
    env.disk.set_read_hook(None);
}

/// `clear_cache` during a parked fetch with a coalesced waiter: the clear
/// drains the miss, the waiter is served (from the published frame or by
/// refetching after the clear), and the data survives intact.
#[test]
fn clear_cache_drains_misses_and_waiters_survive() {
    let env = env(4, 1);
    let pages = cold_pages(&env, 3);
    let page = pages[1];

    let release = Arc::new(AtomicBool::new(false));
    let rel = Arc::clone(&release);
    let stats = env.stats.clone();
    let miss_base = env.stats.miss_snapshot().coalesced_faults;
    env.disk.set_read_hook(Some(Arc::new(move |_page, _n| {
        // Only the first (parked) fetch waits; post-clear refetches and
        // the waiter's possible refetch sail through.
        if !rel.load(Ordering::SeqCst) {
            wait_until(
                || rel.load(Ordering::SeqCst) || stats.miss_snapshot().coalesced_faults > miss_base,
                "a waiter coalesces or the test releases",
            );
        }
    })));

    let mut readers = Vec::new();
    for _ in 0..2 {
        let pool = Arc::clone(&env.pool);
        readers.push(std::thread::spawn(move || {
            assert_eq!(pool.with_page(page, |d| d[0]).unwrap(), 1);
        }));
    }
    // Let the fault get airborne, then clear underneath it.
    let disk = Arc::clone(&env.disk);
    wait_until(|| disk.reads_attempted() >= 4, "the contended fetch reaches the device");
    release.store(true, Ordering::SeqCst);
    env.pool.clear_cache().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    env.disk.set_read_hook(None);
    // Everything still readable, correct, and quiesced.
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(env.pool.with_page(p, |d| d[0]).unwrap(), i as u8);
    }
    env.pool.clear_cache().unwrap();
}

/// The stale-image window: while a dirty victim's promoted write-back is
/// parked at the device, a fault on that victim must wait for the
/// write-back to land — serving the on-disk image during the window would
/// resurrect the pre-update page and lose the write (the regression that
/// fig19's 8-thread writer verification caught in development).
#[test]
fn fault_on_evicting_victim_waits_for_its_writeback() {
    let env = env(1, 1); // one frame: faulting Q always evicts P
    let pages = cold_pages(&env, 2);
    let (p, q) = (pages[0], pages[1]);

    // Dirty P in cache with the "new" value.
    env.pool.with_page_mut(p, |d| d[0] = 77).unwrap();

    // Park P's eviction write-back at the device.
    let release = Arc::new(AtomicBool::new(false));
    let rel = Arc::clone(&release);
    env.disk.set_write_hook(Some(Arc::new(move |_page, _n| {
        wait_until(|| rel.load(Ordering::SeqCst), "test releases the parked write-back");
    })));

    let disk = Arc::clone(&env.disk);
    let writes_base = disk.writes_attempted();
    let pool_a = Arc::clone(&env.pool);
    let evictor = std::thread::spawn(move || {
        assert_eq!(pool_a.with_page(q, |d| d[0]).unwrap(), 1);
    });
    wait_until(|| disk.writes_attempted() > writes_base, "write-back reaches the device");

    // Fault P while its write-back is parked: must block, then serve 77.
    let got = Arc::new(Mutex::new(None::<u8>));
    let (pool_b, got_b) = (Arc::clone(&env.pool), Arc::clone(&got));
    let reader = std::thread::spawn(move || {
        let v = pool_b.with_page(p, |d| d[0]).unwrap();
        *got_b.lock().unwrap() = Some(v);
    });
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(*got.lock().unwrap(), None, "fault served the stale window");

    release.store(true, Ordering::SeqCst);
    evictor.join().unwrap();
    reader.join().unwrap();
    env.disk.set_write_hook(None);
    assert_eq!(*got.lock().unwrap(), Some(77), "the dirty update survived promotion");
}

/// Liveness: a flush must terminate under *sustained* miss traffic.  The
/// drain registers the janitor as draining, which turns new reservations
/// away until the shard quiesces — without that admission control this
/// flush waits for a gap in the miss stream that never comes.
#[test]
fn flush_terminates_under_sustained_miss_traffic() {
    let env = env(2, 1); // 2 frames, 8 hot pages: every sweep misses
    let pages = cold_pages(&env, 8);
    // A small device delay per read keeps multiple faults perpetually
    // in play around the janitor's drain attempts.
    env.disk.set_read_hook(Some(Arc::new(|_page, _n| {
        std::thread::sleep(Duration::from_millis(1));
    })));
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|t| {
            let pool = Arc::clone(&env.pool);
            let pages = pages.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut i = t;
                while !done.load(Ordering::SeqCst) {
                    let k = i % pages.len();
                    assert_eq!(pool.with_page(pages[k], |d| d[0]).unwrap(), k as u8);
                    i += 3;
                }
            })
        })
        .collect();
    // Let the miss stream establish itself, then flush: it must return
    // while the readers are still hammering (the test harness itself is
    // the timeout that catches a starved drain).
    std::thread::sleep(Duration::from_millis(50));
    env.pool.flush_all().unwrap();
    assert!(!done.load(Ordering::SeqCst), "flush returned while traffic was still live");
    done.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    env.disk.set_read_hook(None);
}

/// Injected read failures under contention: every faulting caller gets the
/// error (waiters retry, become the fetcher, and fail in turn — the
/// in-flight entry never wedges), and the pool works once the fault lifts.
#[test]
fn poisoned_page_fails_every_coalesced_caller_then_recovers() {
    let env = env(4, 1);
    let pages = cold_pages(&env, 1);
    let page = pages[0];
    env.disk.set_plan(FaultPlan { poison_page_reads: Some(page), ..Default::default() });
    let mut handles = Vec::new();
    for _ in 0..4 {
        let pool = Arc::clone(&env.pool);
        handles.push(std::thread::spawn(move || pool.with_page(page, |d| d[0])));
    }
    for h in handles {
        assert!(h.join().unwrap().is_err(), "a poisoned fault must error, not hang or serve");
    }
    env.disk.set_plan(FaultPlan::default());
    assert_eq!(env.pool.with_page(page, |d| d[0]).unwrap(), 0);
    env.pool.clear_cache().unwrap();
}

/// Many threads, many shards, tiny capacity, hot contention on a small
/// page set: counters stay exact — every logical access lands, every
/// fault is either a device read or a coalesced wait, and single-flight
/// guarantees reads never exceed faults.
#[test]
fn accounting_identity_holds_under_contention() {
    const THREADS: usize = 8;
    const SWEEPS: usize = 40;
    let env = env(8, 4);
    let pages = cold_pages(&env, 8);
    let before_io = env.stats.snapshot();
    let before_miss = env.stats.miss_snapshot();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&env.pool);
            let pages = pages.clone();
            std::thread::spawn(move || {
                for s in 0..SWEEPS {
                    for k in 0..pages.len() {
                        let i = (k + t * 3 + s) % pages.len();
                        assert_eq!(pool.with_page(pages[i], |d| d[0]).unwrap(), i as u8);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let io = env.stats.snapshot().since(&before_io);
    let miss = env.stats.miss_snapshot().since(&before_miss);
    assert_eq!(io.logical_reads, (THREADS * SWEEPS * pages.len()) as u64);
    // Pool capacity == working set: every page faults exactly once per
    // cold start regardless of racing, thanks to single-flight.
    assert_eq!(io.physical_reads, pages.len() as u64);
    assert_eq!(miss.lock_free_reads, io.physical_reads, "every fetch was promoted");
    // Lifetime identity: the device saw exactly the promoted reads.
    assert_eq!(env.disk.reads_attempted(), env.stats.miss_snapshot().lock_free_reads);
}
