//! Helpers shared by the file-backed integration suites.
//!
//! Each `tests/*.rs` file is its own crate, so anything here is pulled
//! in with `mod common;` and only the items a suite uses are linked —
//! hence the file-wide `dead_code` allowance.
#![allow(dead_code)]

use ri_tree::pagestore::WalConfig;
use ri_tree::prelude::*;
use std::path::{Path, PathBuf};

/// A per-test scratch directory removed when the test ends (pass or
/// fail-with-unwind); earlier revisions leaked one directory per run.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("ri-tree-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }

    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A durable pool over two file-backed devices (data + WAL), default
/// WAL configuration.
pub fn durable_file_pool(data: &Path, wal: &Path) -> Arc<BufferPool> {
    durable_file_pool_with(data, wal, WalConfig::default())
}

/// [`durable_file_pool`] with an explicit [`WalConfig`] (segment size,
/// flush policy).
pub fn durable_file_pool_with(data: &Path, wal: &Path, config: WalConfig) -> Arc<BufferPool> {
    Arc::new(
        BufferPool::new_durable_with(
            FileDisk::open(data, DEFAULT_PAGE_SIZE).unwrap(),
            BufferPoolConfig::with_capacity(64),
            FileDisk::open(wal, DEFAULT_PAGE_SIZE).unwrap(),
            config,
        )
        .unwrap(),
    )
}
