//! Every access method in the repository must return identical results on
//! the paper's Table 1 workloads — the precondition for any performance
//! comparison being meaningful.

use ri_tree::baselines::{Ist, IstOrder, Map21, TileIndex, WindowList};
use ri_tree::mem::{IntervalTree, NaiveIntervalSet};
use ri_tree::prelude::*;
use ri_tree::workloads::{d1, d2, d3, d4, queries_for_selectivity, WorkloadSpec};

fn fresh_db() -> Arc<Database> {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    Arc::new(Database::create(pool).unwrap())
}

fn check_distribution(spec: WorkloadSpec, seed: u64) {
    let data = spec.generate(seed);
    let naive = NaiveIntervalSet::from_triples(
        data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)),
    );
    let mem_tree = IntervalTree::build(
        &data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)).collect::<Vec<_>>(),
    );

    // Relational methods, one per database.
    let db = fresh_db();
    let ri = RiTree::create(Arc::clone(&db), "x").unwrap();
    for (id, &(l, u)) in data.iter().enumerate() {
        ri.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
    }
    let ti = TileIndex::build_bulk(fresh_db(), "x", 8, &data).unwrap();
    let ist_d = Ist::build_bulk(fresh_db(), "x", IstOrder::D, &data).unwrap();
    let ist_v = Ist::build_bulk(fresh_db(), "x", IstOrder::V, &data).unwrap();
    let m21 = {
        let m = Map21::create(fresh_db(), "x").unwrap();
        for (id, &(l, u)) in data.iter().enumerate() {
            m.am_insert(l, u, id as i64).unwrap();
        }
        m
    };
    let wl = WindowList::build(fresh_db(), "x", &data).unwrap();

    let methods: Vec<&dyn IntervalAccessMethod> = vec![&ri, &ti, &ist_d, &ist_v, &m21, &wl];

    let mut queries = queries_for_selectivity(&spec, 0.01, 8, seed + 1);
    queries.extend(queries_for_selectivity(&spec, 0.0, 4, seed + 2)); // point queries
    queries.push((0, (1 << 20) - 1)); // whole domain
    queries.push((1 << 21, 1 << 22)); // outside the domain

    for &(ql, qu) in &queries {
        let expected = naive.intersection(ql, qu);
        assert_eq!(mem_tree.intersection(ql, qu), expected, "mem tree, [{ql}, {qu}]");
        for m in &methods {
            let got = m.am_intersection(ql, qu).unwrap();
            assert_eq!(
                got,
                expected,
                "{} disagrees with oracle on [{ql}, {qu}] ({})",
                m.method_name(),
                spec.name
            );
        }
    }
}

#[test]
fn d1_uniform_uniform() {
    check_distribution(d1(2500, 2000), 101);
}

#[test]
fn d2_uniform_exponential() {
    check_distribution(d2(2500, 2000), 102);
}

#[test]
fn d3_poisson_uniform() {
    check_distribution(d3(2500, 2000), 103);
}

#[test]
fn d4_poisson_exponential() {
    check_distribution(d4(2500, 2000), 104);
}

#[test]
fn long_interval_stress() {
    // Mean duration 50k: heavy overlap, T-index redundancy extreme.
    check_distribution(d2(800, 50_000), 105);
}

#[test]
fn point_only_database() {
    check_distribution(d1(1500, 0), 106);
}
