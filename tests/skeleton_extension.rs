//! The Skeleton Index extension (paper Section 7) must change costs, never
//! answers.

use ri_tree::core::RiOptions;
use ri_tree::mem::NaiveIntervalSet;
use ri_tree::prelude::*;

fn envs() -> (Arc<Database>, Arc<Database>) {
    let mk = || {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
        Arc::new(Database::create(pool).unwrap())
    };
    (mk(), mk())
}

/// Clustered data: intervals concentrated in a narrow band of a huge data
/// space, so most backbone nodes on a random query's descent are empty —
/// the situation the skeleton is designed for.
fn clustered_data() -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    let mut x = 0x5EEDu64;
    // One far-away interval expands the space to ~2^30.
    out.push((1 << 30, (1 << 30) + 10));
    for _ in 0..3000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let l = 500_000 + (x % 20_000) as i64;
        out.push((l, l + (x >> 40) as i64 % 200));
    }
    out
}

#[test]
fn skeleton_results_identical_to_plain() {
    let (db_a, db_b) = envs();
    let plain = RiTree::create(db_a, "t").unwrap();
    let skel = RiTree::create_with_options(db_b, "t", RiOptions { skeleton: true }).unwrap();
    let data = clustered_data();
    let mut naive = NaiveIntervalSet::new();
    for (id, &(l, u)) in data.iter().enumerate() {
        plain.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        skel.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        naive.insert(l, u, id as i64);
    }
    let queries = [
        (0i64, 1_000_000i64),
        (505_000, 505_500),
        (100, 400_000),
        (600_000, 1 << 29),
        ((1 << 30) - 5, (1 << 30) + 100),
        (42, 42),
    ];
    for &(ql, qu) in &queries {
        let want = naive.intersection(ql, qu);
        assert_eq!(plain.intersection(Interval::new(ql, qu).unwrap()).unwrap(), want);
        assert_eq!(
            skel.intersection(Interval::new(ql, qu).unwrap()).unwrap(),
            want,
            "skeleton changed results on [{ql}, {qu}]"
        );
    }
}

#[test]
fn skeleton_prunes_empty_node_probes() {
    let (db_a, db_b) = envs();
    let plain = RiTree::create(db_a, "t").unwrap();
    let skel = RiTree::create_with_options(db_b, "t", RiOptions { skeleton: true }).unwrap();
    for (id, &(l, u)) in clustered_data().iter().enumerate() {
        plain.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
        skel.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
    }
    // A query far from the data cluster in a deep (2^30) space: the plain
    // tree probes ~2·30 nodes, nearly all empty.
    let q = Interval::new(100_000_000, 100_002_000).unwrap();
    let (_, s_plain) =
        plain.execute_id_plan(&plain.intersection_plan(q, i64::MAX - 2).unwrap()).unwrap();
    let (_, s_skel) =
        skel.execute_id_plan(&skel.intersection_plan(q, i64::MAX - 2).unwrap()).unwrap();
    assert!(
        s_skel.index_searches * 2 <= s_plain.index_searches,
        "skeleton should at least halve probes on sparse paths: {} vs {}",
        s_skel.index_searches,
        s_plain.index_searches
    );
}

#[test]
fn skeleton_survives_delete_and_reopen() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    {
        let tree = RiTree::create_with_options(Arc::clone(&db), "t", RiOptions { skeleton: true })
            .unwrap();
        for i in 0..200i64 {
            tree.insert(Interval::new(i * 100, i * 100 + 50).unwrap(), i).unwrap();
        }
        for i in 0..100i64 {
            assert!(tree.delete(Interval::new(i * 100, i * 100 + 50).unwrap(), i).unwrap());
        }
    }
    let tree = RiTree::open(db, "t").unwrap();
    assert_eq!(tree.count().unwrap(), 100);
    let hits = tree.intersection(Interval::new(0, 50_000).unwrap()).unwrap();
    assert_eq!(hits, (100..200).collect::<Vec<i64>>());
    // Deleting everything leaves an empty but functional skeleton tree.
    for i in 100..200i64 {
        assert!(tree.delete(Interval::new(i * 100, i * 100 + 50).unwrap(), i).unwrap());
    }
    assert_eq!(tree.intersection(Interval::new(0, 1 << 20).unwrap()).unwrap(), Vec::<i64>::new());
}
