//! Bulk load at beyond-paper scale (PR 7): a million-entry stream
//! builds in `O(pages)` sequential writes with no per-key descents, the
//! bulk-routed `insert_batch` is indistinguishable from per-row inserts
//! under property testing, and a bulk-loaded tree is ordinary DML-able,
//! durable state afterwards.

use ri_tree::btree::layout::{internal_capacity, leaf_capacity};
use ri_tree::btree::{predicted_pages, BTree, Entry};
use ri_tree::core::BULK_BATCH_MIN;
mod common;

use common::{durable_file_pool, TempDir};
use ri_tree::pagestore::{CrashPlan, FaultClock, FaultPlan, FaultyDisk};
use ri_tree::prelude::*;
use ri_tree::workloads::d4;

/// One million intervals: an order of magnitude past the paper's
/// largest experiment (Figure 14 stops at n = 100,000).
const MILLION: usize = 1_000_000;

/// The acceptance criterion of this PR, measured: bulk-loading a
/// million sorted entries costs one logical write per packed page (plus
/// a constant handful of meta-page writes) and essentially no reads —
/// there are no per-key descents to re-read upper levels.  The same
/// million keys inserted one by one would pay `O(n log n)` logical
/// accesses.
#[test]
fn million_entry_bulk_build_does_o_pages_sequential_writes() {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(64, 1),
    ));
    // Poisson starts arrive sorted; the unique payload breaks ties, so
    // (lower, id) is sorted by (key, payload) as the builder requires.
    let entries = d4(MILLION, 2000)
        .stream(42)
        .enumerate()
        .map(|(i, (lower, _upper))| Entry::new(&[lower, i as i64], i as u64));
    let before = pool.stats().snapshot();
    let tree = BTree::bulk_load_entries(Arc::clone(&pool), 2, entries, 1.0).unwrap();
    pool.flush_all().unwrap();
    let io = pool.stats().snapshot().since(&before);

    let pages = predicted_pages(
        MILLION as u64,
        leaf_capacity(DEFAULT_PAGE_SIZE, 2),
        internal_capacity(DEFAULT_PAGE_SIZE, 2),
    );
    let stats = tree.stats().unwrap();
    assert_eq!(stats.entries, MILLION as u64);
    assert_eq!(stats.pages, pages, "every level packed at fill 1.0");

    // O(pages) writes: one store per packed page + O(1) meta traffic.
    assert!(
        io.logical_writes <= pages + 8,
        "expected ~{pages} logical writes (one per page), got {}",
        io.logical_writes
    );
    // No descents: the builder never re-reads what it wrote.  The
    // handful of logical reads are meta-page round-trips.
    assert!(io.logical_reads <= 8, "expected O(1) reads, got {}", io.logical_reads);
    // Even through a 64-frame pool each page touches the device exactly
    // once in each direction: one allocation fault in (a fresh block
    // still passes through the cache) and one write-back out — the
    // build is a single sequential pass, nothing is dirtied twice and
    // re-evicted.
    assert!(
        io.physical_writes >= pages && io.physical_writes <= pages + 8,
        "expected ~{pages} physical writes, got {}",
        io.physical_writes
    );
    assert!(
        io.physical_reads <= pages + 8,
        "expected at most one allocation fault per page, got {} physical reads",
        io.physical_reads
    );

    // The structure is a real, fully functional tree.
    tree.check_invariants().unwrap();
    let (lower_1234, _) = d4(MILLION, 2000).stream(42).nth(1234).unwrap();
    assert!(tree.contains(&[lower_1234, 1234], 1234).unwrap());
}

/// The full stack at the same scale: a streamed million-interval D4
/// workload through `RiTree::insert_batch` routes onto the bulk
/// builder, leaving both indexes at exactly the predicted full-fill
/// page count with no read churn through a small cache.
#[test]
fn streamed_million_interval_batch_bulk_loads_the_ri_tree() {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::with_capacity(256),
    ));
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "big").unwrap();

    let items: Vec<(Interval, i64)> = d4(MILLION, 2000)
        .stream(7)
        .enumerate()
        .map(|(i, (l, u))| (Interval::new(l, u).unwrap(), i as i64))
        .collect();
    let before = pool.stats().snapshot();
    tree.insert_batch(&items, 1).unwrap();
    pool.flush_all().unwrap();
    let io = pool.stats().snapshot().since(&before);

    assert_eq!(tree.count().unwrap(), MILLION as u64);
    let per_index = predicted_pages(
        MILLION as u64,
        leaf_capacity(DEFAULT_PAGE_SIZE, 3),
        internal_capacity(DEFAULT_PAGE_SIZE, 3),
    );
    assert_eq!(
        tree.storage().unwrap().index_pages,
        2 * per_index,
        "both indexes at full fill: the batch took the bulk route"
    );
    // Descent-free, whole-stack: every device page (heap + indexes +
    // catalog) is faulted in at most once and written back at most
    // once.  A million per-row descents through a 256-frame pool would
    // re-fault upper index levels constantly and dwarf this bound.
    let device_pages = pool.num_pages();
    assert!(
        io.physical_reads <= device_pages + 8,
        "expected at most one fault per device page ({device_pages}), got {} physical reads",
        io.physical_reads
    );
    assert!(
        io.physical_writes <= device_pages + 8,
        "expected at most one write-back per device page ({device_pages}), got {}",
        io.physical_writes
    );

    // Spot-check query behavior at scale.
    let hits = tree.stab(items[MILLION / 2].0.lower).unwrap();
    assert!(hits.contains(&((MILLION / 2) as i64)));
    assert!(!tree.intersection(Interval::new(0, 2000).unwrap()).unwrap().is_empty());
}

mod equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Property: a bulk-routed batch (empty tree, `len >=
        /// BULK_BATCH_MIN`) answers every query exactly like a tree
        /// built by per-row inserts.
        #[test]
        fn bulk_built_tree_is_equivalent_to_insert_built_tree(
            seed in 0u64..1_000,
            extra in 0usize..300,
        ) {
            let n = BULK_BATCH_MIN + extra;
            let mk = || {
                let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
                let db = Arc::new(Database::create(pool).unwrap());
                RiTree::create(db, "t").unwrap()
            };
            // Pseudorandom (not sorted, duplicates possible) intervals.
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let items: Vec<(Interval, i64)> = (0..n)
                .map(|id| {
                    let r = next();
                    let l = (r % 40_000) as i64 - 10_000;
                    let len = ((r >> 40) % 900) as i64;
                    (Interval::new(l, l + len).unwrap(), id as i64)
                })
                .collect();

            let bulk = mk();
            bulk.insert_batch(&items, 1).unwrap();
            let incremental = mk();
            for &(iv, id) in &items {
                incremental.insert(iv, id).unwrap();
            }

            prop_assert_eq!(bulk.count().unwrap(), incremental.count().unwrap());
            for q in [(-10_000i64, 31_000i64), (-500, 500), (15_000, 15_050), (29_999, 29_999)] {
                let q = Interval::new(q.0, q.1).unwrap();
                prop_assert_eq!(bulk.intersection(q).unwrap(), incremental.intersection(q).unwrap());
            }
            for p in [-9_999i64, 0, 12_345, 29_000] {
                prop_assert_eq!(bulk.stab(p).unwrap(), incremental.stab(p).unwrap());
            }
            // Deletes behave identically afterwards.
            let (iv, id) = items[n / 2];
            prop_assert!(bulk.delete(iv, id).unwrap());
            prop_assert!(incremental.delete(iv, id).unwrap());
            prop_assert_eq!(bulk.delete(iv, id).unwrap(), false);
        }
    }
}

/// A bulk-loaded tree is ordinary durable state: the build's page
/// stores flow through the WAL like any other write, so committed bulk
/// work plus committed post-bulk DML both survive a crash that loses
/// every unsynced device write.
#[test]
fn bulk_load_then_dml_survives_a_crash() {
    const BATCH: i64 = 1_500;
    let dir = TempDir::new("crash");
    let (data_path, wal_path) = (dir.file("data"), dir.file("wal"));
    {
        let clock = FaultClock::new();
        let data = Arc::new(FaultyDisk::with_clock(
            FileDisk::open(&data_path, DEFAULT_PAGE_SIZE).unwrap(),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        let wal = Arc::new(FaultyDisk::with_clock(
            FileDisk::open(&wal_path, DEFAULT_PAGE_SIZE).unwrap(),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        // Device writes stay in the volatile cache until synced; the
        // crash below discards everything not yet destaged.
        clock.arm_crash(CrashPlan { crash_at_write: None, ..Default::default() });
        let pool = Arc::new(
            BufferPool::new_durable(data, BufferPoolConfig::with_capacity(64), wal).unwrap(),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();

        let items: Vec<(Interval, i64)> = (0..BATCH)
            .map(|id| {
                let l = (id * 61) % 70_000;
                (Interval::new(l, l + 200 + id % 31).unwrap(), id)
            })
            .collect();
        assert!(items.len() >= BULK_BATCH_MIN, "must exercise the bulk route");
        tree.insert_batch(&items, 1).unwrap();
        db.commit().unwrap();

        // Ordinary DML on top of the bulk-built structure.
        for id in 0..50i64 {
            tree.insert(Interval::new(90_000 + id, 90_100 + id).unwrap(), BATCH + id).unwrap();
        }
        for id in 0..25i64 {
            let l = (id * 61) % 70_000;
            assert!(tree.delete(Interval::new(l, l + 200 + id % 31).unwrap(), id).unwrap());
        }
        db.commit().unwrap();
        // NO checkpoint: the data file never saw the committed pages.
        clock.crash_now();
    }

    let pool = durable_file_pool(&data_path, &wal_path);
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), (BATCH + 50 - 25) as u64);
    for id in 25..BATCH {
        let l = (id * 61) % 70_000;
        assert!(tree.stab(l).unwrap().contains(&id), "bulk row {id} lost");
    }
    for id in 0..25i64 {
        let l = (id * 61) % 70_000;
        assert!(!tree.stab(l).unwrap().contains(&id), "deleted row {id} resurrected");
    }
    assert!(tree.stab(90_010).unwrap().contains(&(BATCH + 10)), "post-bulk insert lost");
    // Still writable + durable going forward.
    tree.insert(Interval::new(3, 4).unwrap(), 999_999).unwrap();
    db.commit().unwrap();
}
