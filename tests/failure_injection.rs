//! Failure injection through the whole stack: injected device faults must
//! surface as errors (never panics or silent corruption), and the database
//! must remain usable once the fault clears.

use ri_tree::pagestore::{
    BufferPool, BufferPoolConfig, FaultClock, FaultPlan, FaultyDisk, MemDisk, PageId,
};
use ri_tree::prelude::*;

/// Builds a database on a shared fault-injectable disk.  The `FaultyDisk`
/// handle is kept through an `Arc` so the plan can be changed mid-test.
struct FaultyEnv {
    faulty: Arc<FaultyDisk<MemDisk>>,
    pool: Arc<BufferPool>,
}

/// `DiskManager` pass-through so the pool can own an `Arc`d disk.
struct SharedDisk(Arc<FaultyDisk<MemDisk>>);

impl ri_tree::pagestore::DiskManager for SharedDisk {
    fn page_size(&self) -> usize {
        self.0.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.0.num_pages()
    }
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> ri_tree::pagestore::Result<()> {
        self.0.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &[u8]) -> ri_tree::pagestore::Result<()> {
        self.0.write_page(id, buf)
    }
    fn allocate_page(&self) -> ri_tree::pagestore::Result<PageId> {
        self.0.allocate_page()
    }
    fn sync(&self) -> ri_tree::pagestore::Result<()> {
        self.0.sync()
    }
}

fn faulty_env() -> FaultyEnv {
    let faulty = Arc::new(FaultyDisk::new(MemDisk::new(DEFAULT_PAGE_SIZE), FaultPlan::default()));
    let pool = Arc::new(BufferPool::new(
        SharedDisk(Arc::clone(&faulty)),
        BufferPoolConfig::with_capacity(8), // tiny: faults trigger quickly
    ));
    FaultyEnv { faulty, pool }
}

#[test]
fn read_fault_surfaces_as_error_then_recovers() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    for i in 0..2000i64 {
        tree.insert(Interval::new(i * 3, i * 3 + 40).unwrap(), i).unwrap();
    }
    env.pool.clear_cache().unwrap();

    // Fail the next read: the cold-cache query must error, not panic.
    let reads_so_far = env.faulty.reads_attempted();
    env.faulty.set_plan(FaultPlan { fail_read_at: Some(reads_so_far), ..Default::default() });
    let err = tree.intersection(Interval::new(0, 100).unwrap()).unwrap_err();
    assert!(err.to_string().contains("injected"), "unexpected error: {err}");

    // Lift the fault: identical query now succeeds with correct results.
    env.faulty.set_plan(FaultPlan::default());
    let hits = tree.intersection(Interval::new(0, 100).unwrap()).unwrap();
    assert_eq!(hits.len(), 34); // intervals with 3i <= 100 && 3i+40 >= 0
}

#[test]
fn write_fault_during_insert_is_reported() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    for i in 0..500i64 {
        tree.insert(Interval::new(i, i + 5).unwrap(), i).unwrap();
    }
    // Fail the next write-back: some insert soon must fail when the tiny
    // pool evicts a dirty page.
    let writes = env.faulty.writes_attempted();
    env.faulty.set_plan(FaultPlan { fail_write_at: Some(writes), ..Default::default() });
    let mut failed = false;
    for i in 500..1500i64 {
        if tree.insert(Interval::new(i, i + 5).unwrap(), i).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "expected some insert to hit the injected write fault");

    // After the (one-shot) fault, the database continues to work, and all
    // successfully inserted intervals are queryable.
    env.faulty.set_plan(FaultPlan::default());
    tree.insert(Interval::new(10_000, 10_010).unwrap(), 9999).unwrap();
    assert!(tree.stab(10_005).unwrap().contains(&9999));
    let all = tree.intersection(Interval::new(0, 20_000).unwrap()).unwrap();
    assert!(all.len() >= 501, "previously inserted intervals must survive");
}

/// A device fault on the *log* append path must fail the commit cleanly:
/// the durable horizon does not move (no partially published commit),
/// and once the fault clears, the very next commit publishes everything
/// — including the records the failed attempt had appended — which a
/// post-crash reopen then proves durable.
#[test]
fn wal_append_fault_fails_commit_without_partial_publish() {
    let data = Arc::new(MemDisk::new(DEFAULT_PAGE_SIZE));
    let wal_mem = Arc::new(MemDisk::new(DEFAULT_PAGE_SIZE));
    let clock = FaultClock::new();
    let data_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&data),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let wal_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&wal_mem),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let pool = Arc::new(
        BufferPool::new_durable(
            Arc::clone(&data_faulty),
            BufferPoolConfig::with_capacity(64),
            Arc::clone(&wal_faulty),
        )
        .unwrap(),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    for i in 0..50i64 {
        tree.insert(Interval::new(i * 20, i * 20 + 30).unwrap(), i).unwrap();
    }
    db.commit().unwrap();

    let wal = pool.wal().unwrap();
    let durable_before = wal.durable_lsn();
    assert_eq!(durable_before, wal.end_lsn());

    // Fail the next write on the log device: the commit's group flush
    // dies before any of its pages reach the disk.
    wal_faulty.set_plan(FaultPlan {
        fail_write_at: Some(wal_faulty.writes_attempted()),
        ..Default::default()
    });
    tree.insert(Interval::new(70_000, 70_100).unwrap(), 777).unwrap();
    let err = db.commit().unwrap_err();
    assert!(err.to_string().contains("injected"), "unexpected error: {err}");
    assert_eq!(
        wal.durable_lsn(),
        durable_before,
        "a failed commit must not move the durable horizon (no partial publish)"
    );
    assert!(wal.end_lsn() > durable_before, "the failed commit's records stay pending");

    // Fault clears (it was one-shot): the database keeps working, and the
    // next commit publishes the retained records together with its own.
    tree.insert(Interval::new(80_000, 80_100).unwrap(), 888).unwrap();
    db.commit().unwrap();
    assert_eq!(wal.durable_lsn(), wal.end_lsn(), "retry publishes the full backlog");
    assert!(tree.stab(70_050).unwrap().contains(&777));
    assert!(tree.stab(80_050).unwrap().contains(&888));

    // Power cut, reopen from the raw devices: everything the successful
    // commits covered — including the insert whose first commit attempt
    // failed — survives recovery.
    clock.crash_now();
    drop((tree, db, pool));
    data_faulty.settle_crash();
    wal_faulty.settle_crash();
    let pool = Arc::new(
        BufferPool::new_durable(data, BufferPoolConfig::with_capacity(64), wal_mem).unwrap(),
    );
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), 52);
    assert!(tree.stab(70_050).unwrap().contains(&777));
    assert!(tree.stab(80_050).unwrap().contains(&888));
}

#[test]
fn deep_failure_leaves_prior_data_intact() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    let baseline: Vec<i64> = (0..300).collect();
    for &i in &baseline {
        tree.insert(Interval::new(i * 10, i * 10 + 100).unwrap(), i).unwrap();
    }
    let before = tree.intersection(Interval::new(0, 5000).unwrap()).unwrap();

    // Poison reads of a page that belongs to the lower index tree; queries
    // fail while poisoned.
    env.pool.clear_cache().unwrap();
    env.faulty.set_plan(FaultPlan { poison_page_reads: Some(PageId(3)), ..Default::default() });
    let _ = tree.intersection(Interval::new(0, 5000).unwrap()); // may fail
    env.faulty.set_plan(FaultPlan::default());

    let after = tree.intersection(Interval::new(0, 5000).unwrap()).unwrap();
    assert_eq!(before, after, "read faults must not corrupt state");
}
