//! Failure injection through the whole stack: injected device faults must
//! surface as errors (never panics or silent corruption), and the database
//! must remain usable once the fault clears.

use ri_tree::pagestore::{BufferPool, BufferPoolConfig, FaultPlan, FaultyDisk, MemDisk, PageId};
use ri_tree::prelude::*;

/// Builds a database on a shared fault-injectable disk.  The `FaultyDisk`
/// handle is kept through an `Arc` so the plan can be changed mid-test.
struct FaultyEnv {
    faulty: Arc<FaultyDisk<MemDisk>>,
    pool: Arc<BufferPool>,
}

/// `DiskManager` pass-through so the pool can own an `Arc`d disk.
struct SharedDisk(Arc<FaultyDisk<MemDisk>>);

impl ri_tree::pagestore::DiskManager for SharedDisk {
    fn page_size(&self) -> usize {
        self.0.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.0.num_pages()
    }
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> ri_tree::pagestore::Result<()> {
        self.0.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &[u8]) -> ri_tree::pagestore::Result<()> {
        self.0.write_page(id, buf)
    }
    fn allocate_page(&self) -> ri_tree::pagestore::Result<PageId> {
        self.0.allocate_page()
    }
    fn sync(&self) -> ri_tree::pagestore::Result<()> {
        self.0.sync()
    }
}

fn faulty_env() -> FaultyEnv {
    let faulty = Arc::new(FaultyDisk::new(MemDisk::new(DEFAULT_PAGE_SIZE), FaultPlan::default()));
    let pool = Arc::new(BufferPool::new(
        SharedDisk(Arc::clone(&faulty)),
        BufferPoolConfig::with_capacity(8), // tiny: faults trigger quickly
    ));
    FaultyEnv { faulty, pool }
}

#[test]
fn read_fault_surfaces_as_error_then_recovers() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    for i in 0..2000i64 {
        tree.insert(Interval::new(i * 3, i * 3 + 40).unwrap(), i).unwrap();
    }
    env.pool.clear_cache().unwrap();

    // Fail the next read: the cold-cache query must error, not panic.
    let reads_so_far = env.faulty.reads_attempted();
    env.faulty.set_plan(FaultPlan { fail_read_at: Some(reads_so_far), ..Default::default() });
    let err = tree.intersection(Interval::new(0, 100).unwrap()).unwrap_err();
    assert!(err.to_string().contains("injected"), "unexpected error: {err}");

    // Lift the fault: identical query now succeeds with correct results.
    env.faulty.set_plan(FaultPlan::default());
    let hits = tree.intersection(Interval::new(0, 100).unwrap()).unwrap();
    assert_eq!(hits.len(), 34); // intervals with 3i <= 100 && 3i+40 >= 0
}

#[test]
fn write_fault_during_insert_is_reported() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    for i in 0..500i64 {
        tree.insert(Interval::new(i, i + 5).unwrap(), i).unwrap();
    }
    // Fail the next write-back: some insert soon must fail when the tiny
    // pool evicts a dirty page.
    let writes = env.faulty.writes_attempted();
    env.faulty.set_plan(FaultPlan { fail_write_at: Some(writes), ..Default::default() });
    let mut failed = false;
    for i in 500..1500i64 {
        if tree.insert(Interval::new(i, i + 5).unwrap(), i).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "expected some insert to hit the injected write fault");

    // After the (one-shot) fault, the database continues to work, and all
    // successfully inserted intervals are queryable.
    env.faulty.set_plan(FaultPlan::default());
    tree.insert(Interval::new(10_000, 10_010).unwrap(), 9999).unwrap();
    assert!(tree.stab(10_005).unwrap().contains(&9999));
    let all = tree.intersection(Interval::new(0, 20_000).unwrap()).unwrap();
    assert!(all.len() >= 501, "previously inserted intervals must survive");
}

#[test]
fn deep_failure_leaves_prior_data_intact() {
    let env = faulty_env();
    let db = Arc::new(Database::create(Arc::clone(&env.pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
    let baseline: Vec<i64> = (0..300).collect();
    for &i in &baseline {
        tree.insert(Interval::new(i * 10, i * 10 + 100).unwrap(), i).unwrap();
    }
    let before = tree.intersection(Interval::new(0, 5000).unwrap()).unwrap();

    // Poison reads of a page that belongs to the lower index tree; queries
    // fail while poisoned.
    env.pool.clear_cache().unwrap();
    env.faulty.set_plan(FaultPlan { poison_page_reads: Some(PageId(3)), ..Default::default() });
    let _ = tree.intersection(Interval::new(0, 5000).unwrap()); // may fail
    env.faulty.set_plan(FaultPlan::default());

    let after = tree.intersection(Interval::new(0, 5000).unwrap()).unwrap();
    assert_eq!(before, after, "read faults must not corrupt state");
}
