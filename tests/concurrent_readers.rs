//! Concurrent read scalability: the buffer pool and B+-trees are fully
//! thread-safe for readers, so a loaded RI-tree can serve intersection
//! queries from many threads at once (writers are serialized by the
//! application, as in the paper's host-DBMS setting).

use crossbeam::thread;
use ri_tree::mem::NaiveIntervalSet;
use ri_tree::prelude::*;

#[test]
fn parallel_readers_get_identical_answers() {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    let tree = Arc::new(RiTree::create(Arc::clone(&db), "t").unwrap());
    let mut naive = NaiveIntervalSet::new();
    let mut x = 0xC0FFEEu64;
    for id in 0..5000i64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let l = (x % 500_000) as i64;
        let len = ((x >> 36) % 2000) as i64;
        tree.insert(Interval::new(l, l + len).unwrap(), id).unwrap();
        naive.insert(l, l + len, id);
    }
    let queries: Vec<(i64, i64)> = (0..40).map(|i| (i * 12_000, i * 12_000 + 4000)).collect();
    let expected: Vec<Vec<i64>> =
        queries.iter().map(|&(ql, qu)| naive.intersection(ql, qu)).collect();

    thread::scope(|s| {
        for t in 0..4 {
            let tree = Arc::clone(&tree);
            let queries = &queries;
            let expected = &expected;
            s.spawn(move |_| {
                for round in 0..5 {
                    for (i, &(ql, qu)) in queries.iter().enumerate() {
                        let got = tree.intersection(Interval::new(ql, qu).unwrap()).unwrap();
                        assert_eq!(
                            got, expected[i],
                            "thread {t}, round {round}, query {i} diverged"
                        );
                    }
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn readers_race_against_cache_pressure() {
    // A pool far smaller than the working set: readers constantly evict
    // each other's pages; answers must stay exact.
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        ri_tree::pagestore::BufferPoolConfig::with_capacity(8),
    ));
    let db = Arc::new(Database::create(pool).unwrap());
    let tree = Arc::new(RiTree::create(db, "t").unwrap());
    for id in 0..3000i64 {
        tree.insert(Interval::new(id * 7, id * 7 + 100).unwrap(), id).unwrap();
    }
    let expected = tree.intersection(Interval::new(10_000, 10_400).unwrap()).unwrap();
    assert!(!expected.is_empty());
    thread::scope(|s| {
        for _ in 0..6 {
            let tree = Arc::clone(&tree);
            let expected = expected.clone();
            s.spawn(move |_| {
                for _ in 0..50 {
                    let got = tree.intersection(Interval::new(10_000, 10_400).unwrap()).unwrap();
                    assert_eq!(got, expected);
                }
            });
        }
    })
    .unwrap();
}
