//! Plan-level properties: the Figure 8 and Figure 9 plans are equivalent,
//! minstep pruning never changes results, and EXPLAIN output matches the
//! paper's Figure 10 operator tree.

use ri_tree::prelude::*;
use ri_tree::workloads::{d3, queries_for_selectivity, restricted_d3};

fn tree_with(data: &[(i64, i64)]) -> RiTree {
    let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    let db = Arc::new(Database::create(pool).unwrap());
    let tree = RiTree::create(db, "t").unwrap();
    for (id, &(l, u)) in data.iter().enumerate() {
        tree.insert(Interval::new(l, u).unwrap(), id as i64).unwrap();
    }
    tree
}

#[test]
fn fig8_and_fig9_plans_agree() {
    let spec = d3(4000, 2000);
    let data = spec.generate(31);
    let tree = tree_with(&data);
    let queries = queries_for_selectivity(&spec, 0.02, 20, 32);
    for (ql, qu) in queries {
        let q = Interval::new(ql, qu).unwrap();
        let two = tree.intersection(q).unwrap();
        let plan8 = tree.intersection_plan_fig8(q, i64::MAX - 2).unwrap();
        let (three, stats) = tree.execute_id_plan(&plan8).unwrap();
        assert_eq!(two, three, "plans disagree on {q}");
        // The three-fold plan's branches are also disjoint: no duplicates.
        let mut dedup = three.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), three.len(), "Fig 8 plan produced duplicates");
        assert!(stats.index_searches >= 1);
    }
}

#[test]
fn minstep_pruning_is_safe() {
    // Coarse granularity (long intervals) is where pruning actually skips
    // levels; verify results stay identical.
    let spec = restricted_d3(4000, 1500);
    let data = spec.generate(33);
    let tree = tree_with(&data);
    let p = tree.load_params().unwrap();
    assert!(p.minstep2 > 1, "workload should leave minstep coarse, got {}", p.minstep2);
    for (ql, qu) in queries_for_selectivity(&spec, 0.01, 20, 34) {
        let q = Interval::new(ql, qu).unwrap();
        let pruned = tree.intersection(q).unwrap();
        let plan = tree.intersection_plan_unpruned(q, i64::MAX - 2).unwrap();
        let (unpruned, _) = tree.execute_id_plan(&plan).unwrap();
        assert_eq!(pruned, unpruned, "pruning changed results on {q}");
    }
}

#[test]
fn pruning_shrinks_transient_node_lists() {
    // Every interval has length exactly 2048, so the Section 3.4 Lemma
    // guarantees registrations at level >= 11 and a coarse minstep —
    // unlike generated workloads, where domain-edge clamping can produce
    // one short interval that spoils the granularity.
    let data: Vec<(i64, i64)> =
        (0..4000i64).map(|i| (i * 977 % 900_000, i * 977 % 900_000 + 2048)).collect();
    let tree = tree_with(&data);
    let p = tree.load_params().unwrap();
    assert!(p.minstep2 >= 2048, "expected coarse granularity, minstep2 = {}", p.minstep2);
    let q = Interval::new(500_000, 500_100).unwrap();
    let plan9 = tree.intersection_plan(q, i64::MAX - 2).unwrap();
    let plan_un = tree.intersection_plan_unpruned(q, i64::MAX - 2).unwrap();
    let (_, s_pruned) = tree.execute_id_plan(&plan9).unwrap();
    let (_, s_unpruned) = tree.execute_id_plan(&plan_un).unwrap();
    assert!(
        s_pruned.index_searches < s_unpruned.index_searches,
        "pruned {} vs unpruned {} searches",
        s_pruned.index_searches,
        s_unpruned.index_searches
    );
}

#[test]
fn explain_matches_figure_10_operator_tree() {
    let tree = tree_with(&[(0, 100), (50, 200), (150, 300)]);
    let text = tree.explain(Interval::new(40, 160).unwrap()).unwrap();
    let expected_ops = [
        "SELECT STATEMENT",
        "UNION-ALL",
        "NESTED LOOPS",
        "COLLECTION ITERATOR LEFT_NODES",
        "INDEX RANGE SCAN RI_t_UPPER",
        "NESTED LOOPS",
        "COLLECTION ITERATOR RIGHT_NODES",
        "INDEX RANGE SCAN RI_t_LOWER",
    ];
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), expected_ops.len());
    for (line, op) in lines.iter().zip(expected_ops) {
        assert!(line.trim_start().starts_with(op), "line {line:?} does not start with {op:?}");
    }
}

#[test]
fn query_results_never_contain_duplicates() {
    // Section 4.2: "the three OR-connected conditions specify disjoint
    // interval sets ... no duplicates have to be eliminated".
    let spec = d3(5000, 4000);
    let data = spec.generate(37);
    let tree = tree_with(&data);
    for (ql, qu) in queries_for_selectivity(&spec, 0.05, 10, 38) {
        let ids = tree.intersection(Interval::new(ql, qu).unwrap()).unwrap();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len(), "duplicates in result");
    }
}
