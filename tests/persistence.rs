//! Full-stack persistence: an RI-tree database on a file-backed pool
//! survives close/reopen, including the backbone parameter dictionary.

use ri_tree::prelude::*;
use std::path::PathBuf;

fn temp_db_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ri-tree-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.db"))
}

#[test]
fn ritree_survives_reopen() {
    let path = temp_db_path("reopen");
    let _ = std::fs::remove_file(&path);
    let expected_params;
    {
        let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
        let pool = Arc::new(BufferPool::with_defaults(disk));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        for i in 0..2000i64 {
            let l = (i * 37) % 100_000;
            tree.insert(Interval::new(l, l + (i % 500)).unwrap(), i).unwrap();
        }
        tree.insert_open(99_000, OpenEnd::Infinity, 777_777).unwrap();
        expected_params = tree.load_params().unwrap();
        db.checkpoint().unwrap();
    } // everything dropped: the only durable state is the file

    let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
    let pool = Arc::new(BufferPool::with_defaults(disk));
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();

    assert_eq!(tree.count().unwrap(), 2001);
    assert_eq!(tree.load_params().unwrap(), expected_params, "dictionary must persist");

    // Queries behave identically after reopen.
    let hits = tree.intersection(Interval::new(50_000, 50_100).unwrap()).unwrap();
    assert!(!hits.is_empty());
    // The open-ended interval still answers far-future queries.
    assert!(tree
        .intersection(Interval::new(10_000_000, 10_000_001).unwrap())
        .unwrap()
        .contains(&777_777));

    // And the tree is still writable.
    tree.insert(Interval::new(1, 2).unwrap(), 999_999).unwrap();
    assert!(tree.stab(1).unwrap().contains(&999_999));
    db.checkpoint().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unflushed_changes_are_lost_but_db_stays_consistent() {
    let path = temp_db_path("crash");
    let _ = std::fs::remove_file(&path);
    {
        let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
        let pool = Arc::new(BufferPool::with_defaults(disk));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(db, "t").unwrap();
        for i in 0..500i64 {
            tree.insert(Interval::new(i, i + 10).unwrap(), i).unwrap();
        }
        // BufferPool::drop flushes best-effort; emulate the checkpointed
        // state explicitly for determinism.
        tree.db().checkpoint().unwrap();
    }
    let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
    let pool = Arc::new(BufferPool::with_defaults(disk));
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(db, "t").unwrap();
    assert_eq!(tree.count().unwrap(), 500);
    // Structure passes the engine's own consistency checks: all 500 rows
    // reachable via queries.
    assert_eq!(tree.intersection(Interval::new(0, 1000).unwrap()).unwrap().len(), 500);
    std::fs::remove_file(&path).unwrap();
}
