//! Full-stack persistence: an RI-tree database on a file-backed pool
//! survives close/reopen, including the backbone parameter dictionary
//! and — with a WAL attached — committed work that was never
//! checkpointed.

mod common;

use common::{durable_file_pool, TempDir};
use ri_tree::pagestore::{CrashPlan, FaultClock, FaultPlan, FaultyDisk};
use ri_tree::prelude::*;

#[test]
fn ritree_survives_reopen() {
    let dir = TempDir::new("reopen");
    let path = dir.file("db");
    let expected_params;
    {
        let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
        let pool = Arc::new(BufferPool::with_defaults(disk));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        for i in 0..2000i64 {
            let l = (i * 37) % 100_000;
            tree.insert(Interval::new(l, l + (i % 500)).unwrap(), i).unwrap();
        }
        tree.insert_open(99_000, OpenEnd::Infinity, 777_777).unwrap();
        expected_params = tree.load_params().unwrap();
        db.checkpoint().unwrap();
    } // everything dropped: the only durable state is the file

    let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
    let pool = Arc::new(BufferPool::with_defaults(disk));
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();

    assert_eq!(tree.count().unwrap(), 2001);
    assert_eq!(tree.load_params().unwrap(), expected_params, "dictionary must persist");

    // Queries behave identically after reopen.
    let hits = tree.intersection(Interval::new(50_000, 50_100).unwrap()).unwrap();
    assert!(!hits.is_empty());
    // The open-ended interval still answers far-future queries.
    assert!(tree
        .intersection(Interval::new(10_000_000, 10_000_001).unwrap())
        .unwrap()
        .contains(&777_777));

    // And the tree is still writable.
    tree.insert(Interval::new(1, 2).unwrap(), 999_999).unwrap();
    assert!(tree.stab(1).unwrap().contains(&999_999));
    db.checkpoint().unwrap();
}

#[test]
fn unflushed_changes_are_lost_but_db_stays_consistent() {
    let dir = TempDir::new("crash");
    let path = dir.file("db");
    {
        let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
        let pool = Arc::new(BufferPool::with_defaults(disk));
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(db, "t").unwrap();
        for i in 0..500i64 {
            tree.insert(Interval::new(i, i + 10).unwrap(), i).unwrap();
        }
        // BufferPool::drop flushes best-effort; emulate the checkpointed
        // state explicitly for determinism.
        tree.db().checkpoint().unwrap();
    }
    let disk = FileDisk::open(&path, DEFAULT_PAGE_SIZE).unwrap();
    let pool = Arc::new(BufferPool::with_defaults(disk));
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(db, "t").unwrap();
    assert_eq!(tree.count().unwrap(), 500);
    // Structure passes the engine's own consistency checks: all 500 rows
    // reachable via queries.
    assert_eq!(tree.intersection(Interval::new(0, 1000).unwrap()).unwrap().len(), 500);
}

/// The WAL counterpart of `unflushed_changes_are_lost...`: with a log
/// device attached, committed-but-never-checkpointed work *survives* an
/// abrupt stop.  The writing process dies mid-flight (simulated power
/// cut, unsynced device writes discarded), and reopening the two files
/// replays the WAL tail.
#[test]
fn reopen_without_checkpoint_recovers_from_wal_tail() {
    let dir = TempDir::new("waltail");
    let (data_path, wal_path) = (dir.file("data"), dir.file("wal"));
    const ROWS: i64 = 300;
    {
        let clock = FaultClock::new();
        let data = Arc::new(FaultyDisk::with_clock(
            FileDisk::open(&data_path, DEFAULT_PAGE_SIZE).unwrap(),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        let wal = Arc::new(FaultyDisk::with_clock(
            FileDisk::open(&wal_path, DEFAULT_PAGE_SIZE).unwrap(),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        // Armed with no scheduled crash point: device writes stay in the
        // volatile cache until a sync destages them, like a real disk's
        // write cache.  The explicit crash below drops whatever was not
        // yet synced.
        clock.arm_crash(CrashPlan { crash_at_write: None, ..Default::default() });
        let pool = Arc::new(
            BufferPool::new_durable(data, BufferPoolConfig::with_capacity(64), wal).unwrap(),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        for i in 0..ROWS {
            let l = (i * 53) % 80_000;
            tree.insert(Interval::new(l, l + 100 + i % 40).unwrap(), i).unwrap();
        }
        db.commit().unwrap();
        // NO checkpoint: the data file never sees the committed pages.
        clock.crash_now();
    } // drop settles both devices' surviving writes into the files

    let pool = durable_file_pool(&data_path, &wal_path);
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), ROWS as u64, "committed rows must be replayed");
    let all = tree.intersection(Interval::new(0, 100_000).unwrap()).unwrap();
    assert_eq!(all.len(), ROWS as usize);
    for i in 0..ROWS {
        let l = (i * 53) % 80_000;
        assert!(tree.stab(l).unwrap().contains(&i), "row {i} lost without a checkpoint");
    }
    // Recovery checkpointed; a plain second reopen sees the same state.
    drop((tree, db));
    let pool = durable_file_pool(&data_path, &wal_path);
    let db = Arc::new(Database::open(pool).unwrap());
    let tree = RiTree::open(Arc::clone(&db), "t").unwrap();
    assert_eq!(tree.count().unwrap(), ROWS as u64);
    // And it is still writable + durable going forward.
    tree.insert(Interval::new(5, 6).unwrap(), 999_999).unwrap();
    db.commit().unwrap();
}
