//! Multi-threaded stress for the lock-striped buffer pool: concurrent
//! readers and writers spanning every shard, under eviction pressure,
//! must lose no updates, write dirty victims back correctly, and account
//! for every access in the aggregate counters.

use crossbeam::thread;
use ri_tree::pagestore::{BufferPool, BufferPoolConfig, MemDisk, PageId, DEFAULT_PAGE_SIZE};
use std::sync::Arc;

/// Little-endian u64 at a fixed page offset: the per-page round counter.
fn get_round(d: &[u8]) -> u64 {
    u64::from_le_bytes(d[8..16].try_into().unwrap())
}

fn put_round(d: &mut [u8], v: u64) {
    d[8..16].copy_from_slice(&v.to_le_bytes());
}

/// Writers own disjoint page sets (spread over all shards) and bump each
/// owned page's round counter once per round; readers hammer arbitrary
/// pages concurrently.  Under a pool far smaller than the working set,
/// every increment must survive eviction and write-back.
#[test]
fn concurrent_writers_lose_no_updates_under_eviction() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const PAGES: u64 = 64;
    const ROUNDS: u64 = 25;

    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(16, 8), // 2 frames per shard: constant eviction
    ));
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    // Stamp each page with its owner writer (pages round-robin over
    // writers, and page ids round-robin over shards, so every writer
    // touches every shard).
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |d| d[0] = (i % WRITERS) as u8).unwrap();
    }

    thread::scope(|s| {
        for w in 0..WRITERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                for round in 1..=ROUNDS {
                    for (i, &p) in pages.iter().enumerate() {
                        if i % WRITERS != w {
                            continue;
                        }
                        pool.with_page_mut(p, |d| {
                            assert_eq!(d[0] as usize, w, "page {i} lost its owner stamp");
                            let seen = get_round(d);
                            assert_eq!(
                                seen,
                                round - 1,
                                "page {i}: writer {w} saw round {seen}, expected {} — an update was lost",
                                round - 1
                            );
                            put_round(d, round);
                        })
                        .unwrap();
                    }
                }
            });
        }
        for r in 0..READERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                let mut x = 0x1234_5678_u64 ^ (r as u64) << 32;
                for _ in 0..800 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x % PAGES) as usize;
                    pool.with_page(pages[i], |d| {
                        assert_eq!(d[0] as usize, i % WRITERS, "reader saw torn owner stamp");
                        assert!(get_round(d) <= ROUNDS, "reader saw torn round counter");
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();

    // Every page ends at exactly ROUNDS: nothing was lost to a concurrent
    // eviction/write-back race.
    for (i, &p) in pages.iter().enumerate() {
        let round = pool.with_page(p, get_round).unwrap();
        assert_eq!(round, ROUNDS, "page {i} finished at round {round}");
    }
    let snap = pool.stats().snapshot();
    // Exact aggregate logical accounting: the setup stamps + every
    // writer's increments are logical writes; eviction pressure forces
    // physical write-backs.
    assert_eq!(snap.logical_writes, PAGES + PAGES * ROUNDS);
    assert!(snap.physical_writes > 0, "a 16-frame pool over 64 hot pages must write back");
    // Write-back conservation: everything faulted in was either clean or
    // eventually written; a final flush leaves nothing dirty.
    pool.flush_all().unwrap();
    let after_flush = pool.stats().snapshot();
    pool.flush_all().unwrap();
    assert_eq!(
        pool.stats().snapshot().physical_writes,
        after_flush.physical_writes,
        "second flush found dirty frames that the first should have cleaned"
    );
}

/// With the working set exactly matching pool capacity there are no
/// evictions, so hit/miss counts are exact even under maximal read
/// concurrency: each page faults in exactly once (the shard lock
/// serializes racing faults of the same page), and every other access is
/// a hit.
#[test]
fn aggregate_hit_and_miss_counts_are_exact_under_concurrency() {
    const THREADS: usize = 8;
    const PAGES: u64 = 64;
    const SWEEPS: u64 = 30;

    let pool =
        Arc::new(BufferPool::new(MemDisk::new(512), BufferPoolConfig::sharded(PAGES as usize, 8)));
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    let base = pool.stats().snapshot();

    thread::scope(|s| {
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                for sweep in 0..SWEEPS {
                    // Each thread sweeps all pages, phase-shifted so
                    // threads collide on pages in every possible order.
                    for k in 0..PAGES {
                        let i = ((k + t as u64 * 7 + sweep) % PAGES) as usize;
                        pool.with_page(pages[i], |_| {}).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();

    let delta = pool.stats().snapshot().since(&base);
    assert_eq!(delta.logical_reads, THREADS as u64 * PAGES * SWEEPS, "every access counted");
    assert_eq!(delta.physical_reads, PAGES, "each page faults exactly once, races included");
    assert_eq!(delta.physical_writes, 0, "read-only workload never writes back");
    assert_eq!(delta.logical_writes, 0);
    // Per-shard counters cover the whole story losslessly.
    let per_shard = pool.stats().per_shard();
    assert_eq!(per_shard.len(), 8);
    assert_eq!(
        per_shard.iter().map(|s| s.logical_reads).sum::<u64>(),
        pool.stats().snapshot().logical_reads
    );
    // 64 dense page ids over 8 shards: a uniform 8 faults per shard.
    assert!(per_shard.iter().all(|s| s.physical_reads == PAGES / 8), "{per_shard:?}");
}

/// `flush_all` / `clear_cache` racing concurrent readers, writers, and
/// in-flight misses under the promoted miss protocol: the janitors drain
/// each shard's in-flight table before walking or dropping frames, so no
/// update may be lost, no reader may observe a torn page, and the pool
/// must quiesce cleanly afterwards.
#[test]
fn flush_and_clear_race_readers_writers_and_misses() {
    const WRITERS: usize = 3;
    const READERS: usize = 2;
    const PAGES: u64 = 48;
    const ROUNDS: u64 = 25;

    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(12, 4), // 3 frames/shard over 48 hot pages: misses everywhere
    ));
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |d| d[0] = (i % WRITERS) as u8).unwrap();
    }

    thread::scope(|s| {
        for w in 0..WRITERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                for round in 1..=ROUNDS {
                    for (i, &p) in pages.iter().enumerate() {
                        if i % WRITERS != w {
                            continue;
                        }
                        pool.with_page_mut(p, |d| {
                            assert_eq!(d[0] as usize, w, "page {i} lost its owner stamp");
                            assert_eq!(get_round(d), round - 1, "page {i}: update lost");
                            put_round(d, round);
                        })
                        .unwrap();
                    }
                }
            });
        }
        for r in 0..READERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                let mut x = 0xDEAD_BEEF_u64 ^ (r as u64) << 32;
                let mut floor = vec![0u64; PAGES as usize];
                for _ in 0..600 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x % PAGES) as usize;
                    pool.with_page(pages[i], |d| {
                        assert_eq!(d[0] as usize, i % WRITERS, "reader saw torn owner stamp");
                        let seen = get_round(d);
                        assert!(
                            seen >= floor[i] && seen <= ROUNDS,
                            "page {i}: round went backwards ({} -> {seen}) across flush/clear",
                            floor[i]
                        );
                        floor[i] = seen;
                    })
                    .unwrap();
                }
            });
        }
        // Janitors: constant flushes and full cache clears while the
        // traffic above keeps every shard's miss table busy.
        for j in 0..2 {
            let pool = Arc::clone(&pool);
            s.spawn(move |_| {
                for k in 0..15 {
                    if (j + k) % 2 == 0 {
                        pool.flush_all().unwrap();
                    } else {
                        pool.clear_cache().unwrap();
                    }
                    std::thread::yield_now();
                }
            });
        }
    })
    .unwrap();

    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(pool.with_page(p, get_round).unwrap(), ROUNDS, "page {i} lost an update");
    }
    // Quiesced: a flush after the storm leaves nothing dirty behind.
    pool.flush_all().unwrap();
    let after = pool.stats().snapshot();
    pool.flush_all().unwrap();
    assert_eq!(pool.stats().snapshot().physical_writes, after.physical_writes);
    // Single-flight held throughout: the device never served more reads
    // than the pool recorded as promoted fetches.
    assert_eq!(pool.stats().miss_snapshot().lock_free_reads, after.physical_reads);
}

/// A single hot page incremented by one writer while a janitor loops
/// `clear_cache`: the clear's drop pass must write back frames dirtied
/// *after* its flush pass released the shard lock, or an increment is
/// silently lost.  (Code review of the miss-promotion refactor found a
/// repro for exactly this window; this pins the fix.)
#[test]
fn clear_cache_never_drops_a_freshly_dirtied_frame() {
    use std::sync::atomic::{AtomicBool, Ordering};
    const ROUNDS: u64 = 2_000;
    let pool =
        Arc::new(BufferPool::new(MemDisk::new(DEFAULT_PAGE_SIZE), BufferPoolConfig::sharded(4, 1)));
    let page = pool.allocate_page().unwrap();
    let done = Arc::new(AtomicBool::new(false));
    thread::scope(|s| {
        let pool_j = Arc::clone(&pool);
        let done_j = Arc::clone(&done);
        s.spawn(move |_| {
            while !done_j.load(Ordering::SeqCst) {
                pool_j.clear_cache().unwrap();
            }
        });
        for round in 1..=ROUNDS {
            pool.with_page_mut(page, |d| {
                assert_eq!(get_round(d), round - 1, "clear_cache dropped a dirty frame");
                put_round(d, round);
            })
            .unwrap();
        }
        done.store(true, Ordering::SeqCst);
    })
    .unwrap();
    assert_eq!(pool.with_page(page, get_round).unwrap(), ROUNDS);
}

/// Eviction write-back correctness across shard counts: data written
/// through one shard layout is readable through any other (the disk
/// image, not the shard layout, is the source of truth).
#[test]
fn shard_layout_is_invisible_to_persisted_data() {
    let disk_pool = |shards: usize, seed: &[PageId], pool: &BufferPool| {
        for (i, &p) in seed.iter().enumerate() {
            pool.with_page_mut(p, |d| {
                d[0] = i as u8;
                d[1] = shards as u8;
            })
            .unwrap();
        }
    };
    // Write through a 16-shard pool, then reread through the same pool
    // after clearing: contents must match regardless of which shard's LRU
    // evicted what in between.
    let pool = BufferPool::new(MemDisk::new(256), BufferPoolConfig::sharded(16, 16));
    let pages: Vec<PageId> = (0..96).map(|_| pool.allocate_page().unwrap()).collect();
    disk_pool(16, &pages, &pool);
    pool.clear_cache().unwrap();
    for (i, &p) in pages.iter().enumerate() {
        let (a, b) = pool.with_page(p, |d| (d[0], d[1])).unwrap();
        assert_eq!((a, b), (i as u8, 16));
    }
}
