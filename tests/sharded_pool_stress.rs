//! Multi-threaded stress for the lock-striped buffer pool: concurrent
//! readers and writers spanning every shard, under eviction pressure,
//! must lose no updates, write dirty victims back correctly, and account
//! for every access in the aggregate counters.

use crossbeam::thread;
use ri_tree::pagestore::{BufferPool, BufferPoolConfig, MemDisk, PageId, DEFAULT_PAGE_SIZE};
use std::sync::Arc;

/// Little-endian u64 at a fixed page offset: the per-page round counter.
fn get_round(d: &[u8]) -> u64 {
    u64::from_le_bytes(d[8..16].try_into().unwrap())
}

fn put_round(d: &mut [u8], v: u64) {
    d[8..16].copy_from_slice(&v.to_le_bytes());
}

/// Writers own disjoint page sets (spread over all shards) and bump each
/// owned page's round counter once per round; readers hammer arbitrary
/// pages concurrently.  Under a pool far smaller than the working set,
/// every increment must survive eviction and write-back.
#[test]
fn concurrent_writers_lose_no_updates_under_eviction() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const PAGES: u64 = 64;
    const ROUNDS: u64 = 25;

    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(16, 8), // 2 frames per shard: constant eviction
    ));
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    // Stamp each page with its owner writer (pages round-robin over
    // writers, and page ids round-robin over shards, so every writer
    // touches every shard).
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |d| d[0] = (i % WRITERS) as u8).unwrap();
    }

    thread::scope(|s| {
        for w in 0..WRITERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                for round in 1..=ROUNDS {
                    for (i, &p) in pages.iter().enumerate() {
                        if i % WRITERS != w {
                            continue;
                        }
                        pool.with_page_mut(p, |d| {
                            assert_eq!(d[0] as usize, w, "page {i} lost its owner stamp");
                            let seen = get_round(d);
                            assert_eq!(
                                seen,
                                round - 1,
                                "page {i}: writer {w} saw round {seen}, expected {} — an update was lost",
                                round - 1
                            );
                            put_round(d, round);
                        })
                        .unwrap();
                    }
                }
            });
        }
        for r in 0..READERS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                let mut x = 0x1234_5678_u64 ^ (r as u64) << 32;
                for _ in 0..800 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x % PAGES) as usize;
                    pool.with_page(pages[i], |d| {
                        assert_eq!(d[0] as usize, i % WRITERS, "reader saw torn owner stamp");
                        assert!(get_round(d) <= ROUNDS, "reader saw torn round counter");
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();

    // Every page ends at exactly ROUNDS: nothing was lost to a concurrent
    // eviction/write-back race.
    for (i, &p) in pages.iter().enumerate() {
        let round = pool.with_page(p, get_round).unwrap();
        assert_eq!(round, ROUNDS, "page {i} finished at round {round}");
    }
    let snap = pool.stats().snapshot();
    // Exact aggregate logical accounting: the setup stamps + every
    // writer's increments are logical writes; eviction pressure forces
    // physical write-backs.
    assert_eq!(snap.logical_writes, PAGES + PAGES * ROUNDS);
    assert!(snap.physical_writes > 0, "a 16-frame pool over 64 hot pages must write back");
    // Write-back conservation: everything faulted in was either clean or
    // eventually written; a final flush leaves nothing dirty.
    pool.flush_all().unwrap();
    let after_flush = pool.stats().snapshot();
    pool.flush_all().unwrap();
    assert_eq!(
        pool.stats().snapshot().physical_writes,
        after_flush.physical_writes,
        "second flush found dirty frames that the first should have cleaned"
    );
}

/// With the working set exactly matching pool capacity there are no
/// evictions, so hit/miss counts are exact even under maximal read
/// concurrency: each page faults in exactly once (the shard lock
/// serializes racing faults of the same page), and every other access is
/// a hit.
#[test]
fn aggregate_hit_and_miss_counts_are_exact_under_concurrency() {
    const THREADS: usize = 8;
    const PAGES: u64 = 64;
    const SWEEPS: u64 = 30;

    let pool =
        Arc::new(BufferPool::new(MemDisk::new(512), BufferPoolConfig::sharded(PAGES as usize, 8)));
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
    let base = pool.stats().snapshot();

    thread::scope(|s| {
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            let pages = &pages;
            s.spawn(move |_| {
                for sweep in 0..SWEEPS {
                    // Each thread sweeps all pages, phase-shifted so
                    // threads collide on pages in every possible order.
                    for k in 0..PAGES {
                        let i = ((k + t as u64 * 7 + sweep) % PAGES) as usize;
                        pool.with_page(pages[i], |_| {}).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();

    let delta = pool.stats().snapshot().since(&base);
    assert_eq!(delta.logical_reads, THREADS as u64 * PAGES * SWEEPS, "every access counted");
    assert_eq!(delta.physical_reads, PAGES, "each page faults exactly once, races included");
    assert_eq!(delta.physical_writes, 0, "read-only workload never writes back");
    assert_eq!(delta.logical_writes, 0);
    // Per-shard counters cover the whole story losslessly.
    let per_shard = pool.stats().per_shard();
    assert_eq!(per_shard.len(), 8);
    assert_eq!(
        per_shard.iter().map(|s| s.logical_reads).sum::<u64>(),
        pool.stats().snapshot().logical_reads
    );
    // 64 dense page ids over 8 shards: a uniform 8 faults per shard.
    assert!(per_shard.iter().all(|s| s.physical_reads == PAGES / 8), "{per_shard:?}");
}

/// Eviction write-back correctness across shard counts: data written
/// through one shard layout is readable through any other (the disk
/// image, not the shard layout, is the source of truth).
#[test]
fn shard_layout_is_invisible_to_persisted_data() {
    let disk_pool = |shards: usize, seed: &[PageId], pool: &BufferPool| {
        for (i, &p) in seed.iter().enumerate() {
            pool.with_page_mut(p, |d| {
                d[0] = i as u8;
                d[1] = shards as u8;
            })
            .unwrap();
        }
    };
    // Write through a 16-shard pool, then reread through the same pool
    // after clearing: contents must match regardless of which shard's LRU
    // evicted what in between.
    let pool = BufferPool::new(MemDisk::new(256), BufferPoolConfig::sharded(16, 16));
    let pages: Vec<PageId> = (0..96).map(|_| pool.allocate_page().unwrap()).collect();
    disk_pool(16, &pages, &pool);
    pool.clear_cache().unwrap();
    for (i, &p) in pages.iter().enumerate() {
        let (a, b) = pool.with_page(p, |d| (d[0], d[1])).unwrap();
        assert_eq!((a, b), (i as u8, 16));
    }
}
