//! Linearizability suite for the B-link write path.
//!
//! Three complementary attacks, all over seeded deterministic schedules:
//!
//! 1. **Deterministic interleavings** — a seeded scheduler interleaves
//!    whole operations from several logical sessions on one thread and
//!    checks *every* outcome (insert success, delete boolean, scan
//!    contents, entry count) against a `BTreeMap`-style oracle.  This
//!    pins the functional behavior of every code path (latch-free
//!    descent, move-right, two-phase splits, separator posting, root
//!    grows) under arbitrary operation orders.
//! 2. **Real concurrent schedules** — seeded per-thread op scripts run on
//!    real threads against trees on deliberately tiny, sharded pools
//!    (constant splits and evictions).  Threads own disjoint payload
//!    spaces, so the final state is schedule-independent: after the join
//!    the tree must equal the oracle exactly, pass `check_invariants`,
//!    and report the oracle's cardinality.  A reader thread runs scans
//!    *during* the chaos and checks the linearizability sandwich:
//!    everything committed before the schedule started is visible,
//!    nothing outside the schedule's universe ever appears.
//! 3. **Readers inside in-flight splits** — the B-link-specific window:
//!    between a split's two phases (right sibling published, parent
//!    separator not yet posted) the tree is searchable only through the
//!    split node's right link.  The `BTree::set_smo_probe` hook pauses a
//!    writer deterministically inside that exact window, where scans and
//!    point lookups — from the probe itself and from a parked real
//!    reader thread — must see every committed entry.
//!
//! The suite sizes itself to 1 000+ seeded schedules while staying
//! inside the `cargo test -q` budget.

use ri_tree::btree::{BTree, SmoPhase};
use ri_tree::pagestore::{BufferPool, BufferPoolConfig, MemDisk};
use ri_tree::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn tiny_tree(seed: u64) -> (Arc<BufferPool>, BTree) {
    // 128-byte pages (leaf capacity 4 at arity 2) over 8 frames: every
    // few inserts split, every handful of deletes empties a leaf, and
    // the pool constantly evicts — the hostile regime for the protocol.
    let shards = 1 << (seed % 3); // 1, 2 or 4
    let pool =
        Arc::new(BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(8, shards as usize)));
    let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
    (pool, tree)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(i64, i64, u64),
    /// Delete the session's own `n`-th still-live insert.
    DeleteOwn(usize),
    Scan(i64, i64),
}

/// Seeded per-session op script.  Sessions own disjoint payload spaces
/// (`session * 10_000 + i`), so any interleaving nets the same state.
fn session_script(seed: u64, session: u64, ops: usize) -> Vec<Op> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (session + 1);
    let mut script = Vec::with_capacity(ops);
    let mut net_live = 0usize;
    for i in 0..ops {
        let r = xorshift(&mut x);
        let a = (r % 24) as i64 - 12;
        let b = ((r >> 16) % 24) as i64 - 12;
        match r % 10 {
            0..=5 => {
                script.push(Op::Insert(a, b, session * 10_000 + i as u64));
                net_live += 1;
            }
            6..=7 if net_live > 0 => {
                script.push(Op::DeleteOwn((r >> 32) as usize));
                net_live -= 1;
            }
            _ => script.push(Op::Scan(a.min(b), a.max(b))),
        }
    }
    script
}

/// Runs one session's script against the shared tree, checking every
/// write outcome; returns the session's net surviving entries.
fn run_session(tree: &BTree, script: &[Op], check_scans: bool) -> BTreeSet<(i64, i64, u64)> {
    let mut live: Vec<(i64, i64, u64)> = Vec::new();
    for op in script {
        match *op {
            Op::Insert(a, b, p) => {
                tree.insert(&[a, b], p).unwrap();
                live.push((a, b, p));
            }
            Op::DeleteOwn(n) => {
                let (a, b, p) = live.remove(n % live.len());
                assert!(
                    tree.delete(&[a, b], p).unwrap(),
                    "own live entry ({a},{b},{p}) must be deletable"
                );
            }
            Op::Scan(lo, hi) => {
                if check_scans {
                    // Sandwich check only makes sense when this thread's
                    // own entries are the known-stable subset.
                    let got: BTreeSet<(i64, i64, u64)> = tree
                        .scan_range(&[lo, i64::MIN], &[hi, i64::MAX])
                        .map(|e| e.unwrap())
                        .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                        .collect();
                    for &(a, b, p) in live.iter().filter(|&&(a, _, _)| a >= lo && a <= hi) {
                        assert!(
                            got.contains(&(a, b, p)),
                            "own committed entry ({a},{b},{p}) missing from concurrent scan"
                        );
                    }
                } else {
                    let _ = tree.scan_range(&[lo, i64::MIN], &[hi, i64::MAX]).count();
                }
            }
        }
    }
    live.into_iter().collect()
}

/// Attack 1: 600 seeded single-threaded interleavings of 4 sessions,
/// every outcome checked against the oracle after every operation batch.
#[test]
fn seeded_interleavings_match_oracle_exactly() {
    const SESSIONS: usize = 4;
    for seed in 0..600u64 {
        let (_pool, tree) = tiny_tree(seed);
        let scripts: Vec<Vec<Op>> =
            (0..SESSIONS as u64).map(|s| session_script(seed, s, 14)).collect();
        let mut cursors = [0usize; SESSIONS];
        let mut live: Vec<Vec<(i64, i64, u64)>> = vec![Vec::new(); SESSIONS];
        let mut oracle: BTreeSet<(i64, i64, u64)> = BTreeSet::new();
        let mut x = seed ^ 0xC0FF_EE00;
        loop {
            // Seeded scheduler: pick a session with work left.
            let pending: Vec<usize> =
                (0..SESSIONS).filter(|&s| cursors[s] < scripts[s].len()).collect();
            let Some(&s) = pending.get(xorshift(&mut x) as usize % pending.len().max(1)) else {
                break;
            };
            let op = scripts[s][cursors[s]];
            cursors[s] += 1;
            match op {
                Op::Insert(a, b, p) => {
                    tree.insert(&[a, b], p).unwrap();
                    live[s].push((a, b, p));
                    assert!(oracle.insert((a, b, p)), "payload spaces are disjoint");
                }
                Op::DeleteOwn(n) => {
                    let idx = n % live[s].len();
                    let (a, b, p) = live[s].remove(idx);
                    assert!(tree.delete(&[a, b], p).unwrap(), "schedule {seed}");
                    assert!(oracle.remove(&(a, b, p)));
                    // Deleting a second time must report false.
                    assert!(!tree.delete(&[a, b], p).unwrap(), "schedule {seed}");
                }
                Op::Scan(lo, hi) => {
                    let got: Vec<(i64, i64, u64)> = tree
                        .scan_range(&[lo, i64::MIN], &[hi, i64::MAX])
                        .map(|e| e.unwrap())
                        .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                        .collect();
                    let want: Vec<(i64, i64, u64)> =
                        oracle.iter().copied().filter(|&(a, _, _)| a >= lo && a <= hi).collect();
                    assert_eq!(got, want, "schedule {seed}: scan [{lo},{hi}] diverged");
                }
            }
            assert_eq!(tree.entry_count().unwrap(), oracle.len() as u64, "schedule {seed}");
        }
        tree.check_invariants().unwrap_or_else(|e| panic!("schedule {seed}: {e}"));
        let final_state: Vec<(i64, i64, u64)> = tree
            .scan_all()
            .map(|e| e.unwrap())
            .map(|e| (e.key.col(0), e.key.col(1), e.payload))
            .collect();
        assert_eq!(final_state, oracle.iter().copied().collect::<Vec<_>>(), "schedule {seed}");
    }
}

/// Attack 2: 400 seeded schedules on real threads — 3 writers with
/// disjoint payload spaces plus one scanning reader, on tiny sharded
/// pools.  Final state must equal the oracle exactly.
#[test]
fn seeded_concurrent_schedules_converge_to_oracle() {
    const WRITERS: u64 = 3;
    for seed in 0..400u64 {
        let (_pool, tree) = tiny_tree(seed);
        // Pinned rows committed before the schedule: the reader's
        // known-visible subset (never touched by any writer).
        let pinned: Vec<(i64, i64, u64)> =
            (0..8).map(|i| (i as i64 * 3 - 12, i as i64, 90_000 + i)).collect();
        for &(a, b, p) in &pinned {
            tree.insert(&[a, b], p).unwrap();
        }
        let scripts: Vec<Vec<Op>> = (0..WRITERS).map(|s| session_script(seed, s, 16)).collect();
        let stop = AtomicBool::new(false);
        let mut nets: Vec<BTreeSet<(i64, i64, u64)>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let reader = {
                let tree = &tree;
                let stop = &stop;
                let pinned = &pinned;
                scope.spawn(move |_| {
                    while !stop.load(Ordering::Acquire) {
                        let got: BTreeSet<(i64, i64, u64)> = tree
                            .scan_all()
                            .map(|e| e.unwrap())
                            .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                            .collect();
                        for &(a, b, p) in pinned {
                            assert!(got.contains(&(a, b, p)), "pinned ({a},{b},{p}) vanished");
                        }
                        for &(_, _, p) in &got {
                            assert!(
                                p >= 90_000 || (p / 10_000 < WRITERS && p % 10_000 < 16),
                                "foreign payload {p} appeared"
                            );
                        }
                    }
                })
            };
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| {
                    let tree = &tree;
                    scope.spawn(move |_| run_session(tree, script, true))
                })
                .collect();
            nets = handles.into_iter().map(|h| h.join().unwrap()).collect();
            stop.store(true, Ordering::Release);
            reader.join().unwrap();
        })
        .unwrap();

        let mut oracle: BTreeSet<(i64, i64, u64)> = pinned.iter().copied().collect();
        for net in nets {
            oracle.extend(net);
        }
        tree.check_invariants().unwrap_or_else(|e| panic!("schedule {seed}: {e}"));
        assert_eq!(tree.entry_count().unwrap(), oracle.len() as u64, "schedule {seed}");
        let final_state: Vec<(i64, i64, u64)> = tree
            .scan_all()
            .map(|e| e.unwrap())
            .map(|e| (e.key.col(0), e.key.col(1), e.payload))
            .collect();
        assert_eq!(final_state, oracle.into_iter().collect::<Vec<_>>(), "schedule {seed}");
    }
}

/// Split storm: every writer hammers the same dense key region, so
/// leaves fill and split under maximal contention (concurrent two-phase
/// splits, separator posts racing into shared parents, real right-link
/// chases), then everything is deleted again under the same contention
/// (emptied leaves stay linked and keep routing).
#[test]
fn split_and_merge_storm_under_contention() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(8, 4)));
    let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
    const THREADS: u64 = 6;
    const PER: u64 = 300;
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = &tree;
            s.spawn(move |_| {
                for i in 0..PER {
                    // Same dense key region for all threads.
                    tree.insert(&[(i / 4) as i64, (i % 4) as i64], t * PER + i).unwrap();
                }
            });
        }
    })
    .unwrap();
    tree.check_invariants().unwrap();
    assert_eq!(tree.entry_count().unwrap(), THREADS * PER);
    let latch_stats = pool.latches().stats();
    assert!(latch_stats.splits > 0, "the storm must trigger structure modifications");
    assert_eq!(
        latch_stats.splits, latch_stats.incomplete_smo_completions,
        "every split's separator post (or root grow) must have completed"
    );
    // Tear it all down concurrently: every delete must succeed exactly once.
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = &tree;
            s.spawn(move |_| {
                for i in 0..PER {
                    assert!(tree.delete(&[(i / 4) as i64, (i % 4) as i64], t * PER + i).unwrap());
                }
            });
        }
    })
    .unwrap();
    tree.check_invariants().unwrap();
    assert_eq!(tree.entry_count().unwrap(), 0);
}

/// Attack 3a (deterministic): the SMO probe fires in the window between
/// a split's two phases — right sibling published and linked, parent
/// separator **not yet posted** — with no latches held.  Scans and point
/// lookups executed from inside that window must already see every
/// committed entry: reaching the new sibling requires following the
/// split node's right link, which is exactly the B-link property the
/// refactor exists to provide.  Deterministic: the probe runs on the
/// inserting thread, so no scheduler timing is involved.
#[test]
fn readers_inside_split_windows_see_every_committed_entry() {
    for seed in 0..8u64 {
        let shards = 1 << (seed % 3);
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(128),
            BufferPoolConfig::sharded(8, shards as usize),
        ));
        let tree = Arc::new(BTree::create(Arc::clone(&pool), 2).unwrap());
        let committed: Arc<Mutex<Vec<(i64, i64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let windows = Arc::new(AtomicU64::new(0));
        {
            // The probe captures its own handle to the tree (the cycle is
            // fine in a test) and replays reads inside every window.
            let probe_tree = Arc::clone(&tree);
            let committed = Arc::clone(&committed);
            let windows = Arc::clone(&windows);
            tree.set_smo_probe(Some(Arc::new(move |phase| {
                let tree = &probe_tree;
                windows.fetch_add(1, Ordering::SeqCst);
                let known = committed.lock().unwrap().clone();
                let seen: BTreeSet<(i64, i64, u64)> = tree
                    .scan_all()
                    .map(|e| e.unwrap())
                    .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                    .collect();
                for &(a, b, p) in &known {
                    assert!(
                        seen.contains(&(a, b, p)),
                        "({a},{b},{p}) invisible inside window {phase:?}"
                    );
                    assert!(
                        tree.contains(&[a, b], p).unwrap(),
                        "({a},{b},{p}) not found by contains inside window {phase:?}"
                    );
                }
                if let SmoPhase::LeafSplitLinked { left, right }
                | SmoPhase::InternalSplitLinked { left, right } = phase
                {
                    assert_ne!(left, right);
                }
            })));
        }
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..120u64 {
            let r = xorshift(&mut x);
            let (a, b) = ((r % 16) as i64, ((r >> 16) % 16) as i64);
            tree.insert(&[a, b], i).unwrap();
            committed.lock().unwrap().push((a, b, i));
            if r % 5 == 0 {
                // Deletes inside the schedule too: emptied leaves must
                // keep routing for the in-window readers.
                let victim = {
                    let mut c = committed.lock().unwrap();
                    let idx = (r >> 32) as usize % c.len();
                    c.swap_remove(idx)
                };
                assert!(tree.delete(&[victim.0, victim.1], victim.2).unwrap());
            }
        }
        assert!(
            windows.load(Ordering::SeqCst) > 0,
            "seed {seed}: the schedule never opened a split window"
        );
        tree.set_smo_probe(None);
        tree.check_invariants().unwrap();
    }
}

/// Attack 3b (real threads): a writer is *parked* inside the first few
/// split windows while a genuinely concurrent reader thread scans the
/// half-split tree, then releases it.  The rendezvous makes the
/// interleaving deterministic — the reader provably runs while the
/// separator post is pending — without trusting the scheduler.
#[test]
fn concurrent_reader_parked_inside_split_windows() {
    const PARKED_WINDOWS: u64 = 12;

    #[derive(Default)]
    struct Gate {
        state: Mutex<GateState>,
        cv: Condvar,
    }
    #[derive(Default)]
    struct GateState {
        open: bool,   // a writer is parked inside a window
        served: bool, // the reader finished its in-window pass
        done: bool,   // no more windows will open
    }

    let pool = Arc::new(BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(8, 2)));
    let tree = Arc::new(BTree::create(Arc::clone(&pool), 2).unwrap());
    let committed: Arc<Mutex<BTreeSet<(i64, i64, u64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let gate = Arc::new(Gate::default());
    let windows = Arc::new(AtomicU64::new(0));
    {
        let gate = Arc::clone(&gate);
        let windows = Arc::clone(&windows);
        tree.set_smo_probe(Some(Arc::new(move |_| {
            if windows.fetch_add(1, Ordering::SeqCst) >= PARKED_WINDOWS {
                return;
            }
            let mut st = gate.state.lock().unwrap();
            st.open = true;
            st.served = false;
            gate.cv.notify_all();
            // Park until the reader has scanned (bounded, so a failing
            // reader cannot hang the suite forever).
            let deadline = std::time::Duration::from_secs(10);
            let (guard, _timeout) =
                gate.cv.wait_timeout_while(st, deadline, |st| !st.served).unwrap();
            let mut st = guard;
            st.open = false;
        })));
    }

    crossbeam::thread::scope(|s| {
        let reader = {
            let tree = Arc::clone(&tree);
            let committed = Arc::clone(&committed);
            let gate = Arc::clone(&gate);
            s.spawn(move |_| loop {
                let mut st = gate.state.lock().unwrap();
                while !st.open && !st.done {
                    st = gate.cv.wait(st).unwrap();
                }
                if st.done {
                    return;
                }
                drop(st);
                // The writer is parked mid-split: scan the half-split tree.
                let known = committed.lock().unwrap().clone();
                let seen: BTreeSet<(i64, i64, u64)> = tree
                    .scan_all()
                    .map(|e| e.unwrap())
                    .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                    .collect();
                for &(a, b, p) in &known {
                    assert!(seen.contains(&(a, b, p)), "({a},{b},{p}) lost mid-split");
                }
                let mut st = gate.state.lock().unwrap();
                st.served = true;
                gate.cv.notify_all();
            })
        };
        // The writer: ascending keys split constantly.
        for i in 0..400u64 {
            let (a, b) = ((i / 4) as i64, (i % 4) as i64);
            tree.insert(&[a, b], i).unwrap();
            committed.lock().unwrap().insert((a, b, i));
        }
        let mut st = gate.state.lock().unwrap();
        st.done = true;
        gate.cv.notify_all();
        drop(st);
        reader.join().unwrap();
    })
    .unwrap();

    assert!(windows.load(Ordering::SeqCst) >= PARKED_WINDOWS, "not enough split windows opened");
    tree.set_smo_probe(None);
    tree.check_invariants().unwrap();
    assert_eq!(tree.entry_count().unwrap(), committed.lock().unwrap().len() as u64);
}

/// Attack 3c (deterministic): a top-level *sibling* split racing a
/// pending root grow.  Old root R splits into R→S; the splitter parks
/// between phase 1 (S reachable) and its root grow.  A second writer
/// fills and splits S — its hint stack is exhausted, yet S is not the
/// root and **no parent level exists yet**.  The post must wait for the
/// pending grow and then relocate into the new root; posting at S's own
/// level (or asserting an ancestor exists) would corrupt the tree.
#[test]
fn sibling_split_waits_for_a_pending_root_grow() {
    #[derive(Default)]
    struct Gate {
        state: Mutex<bool>, // true = released
        cv: Condvar,
    }

    // 128-byte pages at arity 1: leaf capacity 5.
    let pool = Arc::new(BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(8, 1)));
    let tree = Arc::new(BTree::create(Arc::clone(&pool), 1).unwrap());
    for i in 0..5i64 {
        tree.insert(&[i], i as u64).unwrap(); // fill the root leaf exactly
    }
    let gate = Arc::new(Gate::default());
    let windows = Arc::new(AtomicU64::new(0));
    {
        let gate = Arc::clone(&gate);
        let windows = Arc::clone(&windows);
        tree.set_smo_probe(Some(Arc::new(move |_| {
            if windows.fetch_add(1, Ordering::SeqCst) == 0 {
                // Park only the FIRST split (the root leaf's): its grow
                // stays pending while the sibling writer proceeds.
                let st = gate.state.lock().unwrap();
                let deadline = std::time::Duration::from_secs(10);
                drop(gate.cv.wait_timeout_while(st, deadline, |released| !*released).unwrap());
            }
        })));
    }

    let b_done = Arc::new(AtomicBool::new(false));
    crossbeam::thread::scope(|s| {
        let grower = {
            let tree = Arc::clone(&tree);
            // Splits the root leaf R into R→S, parks pre-grow.
            s.spawn(move |_| tree.insert(&[5], 5).unwrap())
        };
        while windows.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now(); // until the grower is parked
        }
        let sibling_writer = {
            let tree = Arc::clone(&tree);
            let b_done = Arc::clone(&b_done);
            s.spawn(move |_| {
                // 6 and 7 fill S; 8 splits it — a top-level sibling split
                // whose parent level does not exist yet.
                for i in 6..9i64 {
                    tree.insert(&[i], i as u64).unwrap();
                }
                b_done.store(true, Ordering::SeqCst);
            })
        };
        // Deterministic rendezvous: wait until the sibling writer has
        // provably entered the pending-grow wait path (the counted
        // branch in `grow_or_relocate`).  The writer *cannot* finish
        // while the grow is pending — the level its separator belongs
        // to does not exist — so the negative assertion is a protocol
        // guarantee, not a timing assumption.
        while pool.latches().stats().pending_root_grow_waits == 0 {
            assert!(!b_done.load(Ordering::SeqCst), "separator posted into a nonexistent level");
            std::thread::yield_now();
        }
        assert!(!b_done.load(Ordering::SeqCst), "separator posted into a nonexistent level");
        {
            let mut st = gate.state.lock().unwrap();
            *st = true;
            gate.cv.notify_all();
        }
        grower.join().unwrap();
        sibling_writer.join().unwrap();
    })
    .unwrap();

    assert!(b_done.load(Ordering::SeqCst));
    tree.set_smo_probe(None);
    tree.check_invariants().unwrap();
    let got: Vec<u64> = tree.scan_all().map(|e| e.unwrap().payload).collect();
    assert_eq!(got, (0..9).collect::<Vec<_>>(), "all nine inserts survive the race");
}

/// RI-tree level: concurrent inserts and deletes through the full stack
/// (heap latch, two indexes, parameter latch) with intersections racing
/// them, then exact oracle equality once quiescent.
#[test]
fn ritree_concurrent_sessions_match_naive_oracle() {
    for seed in 0..12u64 {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::sharded(64, 4),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let tree = RiTree::create(Arc::clone(&db), "t").unwrap();
        // Pinned intervals inserted before the writers start.
        let pinned: Vec<(Interval, i64)> =
            (0..20).map(|i| (Interval::new(i * 97, i * 97 + 300).unwrap(), 900_000 + i)).collect();
        for &(iv, id) in &pinned {
            tree.insert(iv, id).unwrap();
        }
        const WRITERS: u64 = 4;
        let scripts: Vec<Vec<(Interval, i64, bool)>> = (0..WRITERS)
            .map(|w| {
                let mut x = seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ w;
                (0..30)
                    .map(|i| {
                        let r = xorshift(&mut x);
                        let l = (r % 4000) as i64;
                        let iv = Interval::new(l, l + ((r >> 40) % 500) as i64).unwrap();
                        // Delete roughly a third of this session's inserts.
                        ((iv), (w * 1_000 + i) as i64, r % 3 == 0)
                    })
                    .collect()
            })
            .collect();
        let stop = AtomicBool::new(false);
        let pinned_ref = &pinned;
        let scripts_ref = &scripts;
        let tree_ref = &tree;
        let stop_ref = &stop;
        crossbeam::thread::scope(|scope| {
            let reader = scope.spawn(move |_| {
                while !stop_ref.load(Ordering::Acquire) {
                    let q = Interval::new(0, 5000).unwrap();
                    let ids: BTreeSet<i64> =
                        tree_ref.intersection(q).unwrap().into_iter().collect();
                    for &(iv, id) in pinned_ref {
                        if iv.intersects(&q) {
                            assert!(ids.contains(&id), "pinned id {id} vanished mid-run");
                        }
                    }
                }
            });
            let writers: Vec<_> = scripts_ref
                .iter()
                .map(|script| {
                    scope.spawn(move |_| {
                        for &(iv, id, delete_again) in script {
                            tree_ref.insert(iv, id).unwrap();
                            if delete_again {
                                assert!(tree_ref.delete(iv, id).unwrap());
                            }
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            reader.join().unwrap();
        })
        .unwrap();

        // Quiescent: every query must equal the naive oracle.
        let mut oracle: Vec<(Interval, i64)> = pinned.clone();
        for script in &scripts {
            for &(iv, id, delete_again) in script {
                if !delete_again {
                    oracle.push((iv, id));
                }
            }
        }
        for q in [(0i64, 5000i64), (100, 400), (1900, 2100), (4400, 4400)] {
            let q = Interval::new(q.0, q.1).unwrap();
            let got = tree.intersection(q).unwrap();
            let mut want: Vec<i64> =
                oracle.iter().filter(|(iv, _)| iv.intersects(&q)).map(|&(_, id)| id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}: query {q} diverged");
        }
    }
}
