//! Kill-anywhere crash recovery: a WAL-backed RI-tree database is killed
//! at *every* device write index of a seeded workload — cleanly and with
//! torn (partial-sector) dying writes — then reopened, and the recovered
//! state is checked op by op against an in-memory oracle.
//!
//! The durability contract under test:
//!
//! * every insert whose `Database::commit` returned before the crash is
//!   present after recovery, bit-exact;
//! * the one in-flight insert is atomic — fully present iff its commit
//!   record reached the log device, fully absent otherwise;
//! * recovery never panics, never reports corruption, and leaves the
//!   database writable.
//!
//! Both devices (data + log) share one [`FaultClock`], so the crash
//! index ranges over the *interleaved* global write sequence — log-page
//! appends, checkpoint write-backs, and the checkpoint anchor rewrite
//! all take their turn dying.  Unsynced buffered writes survive the
//! power cut by a seeded per-write coin, so every crash point also
//! exercises a different surviving subset of the volatile write cache.

use ri_tree::pagestore::{
    BufferPool, BufferPoolConfig, CrashPlan, FaultClock, FaultPlan, FaultyDisk, MemDisk,
};
use ri_tree::prelude::*;
use std::collections::BTreeMap;

/// Small pages: more log pages per commit, more crash points per op.
const PAGE: usize = 1024;
/// Torn-write granularity — four sectors per page.
const SECTOR: usize = 256;
/// Deliberately tiny pool so dirty data pages are written back (through
/// the WAL barrier) mid-workload, not only at checkpoints.
const FRAMES: usize = 16;
/// Committed inserts in the seeded workload.
const OPS: usize = 96;
/// A checkpoint (flush + log truncation) runs after every this many ops,
/// so crash indices also land inside checkpoints and after truncations.
const CHECKPOINT_EVERY: usize = 24;

/// Deterministic workload: op `i` inserts this interval with id `i`.
fn op_interval(i: usize) -> Interval {
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5EED);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    let lo = (x % 50_000) as i64;
    let len = 1 + (x >> 17) as i64 % 400;
    Interval::new(lo, lo + len).unwrap()
}

/// The two shared in-memory devices that survive a "reboot", plus the
/// clock the fault wrappers crash on.
struct Rig {
    data: Arc<MemDisk>,
    wal: Arc<MemDisk>,
    clock: Arc<FaultClock>,
    data_faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
    wal_faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
}

impl Rig {
    fn new() -> Rig {
        let data = Arc::new(MemDisk::new(PAGE));
        let wal = Arc::new(MemDisk::new(PAGE));
        let clock = FaultClock::new();
        let data_faulty = Arc::new(FaultyDisk::with_clock(
            Arc::clone(&data),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        let wal_faulty = Arc::new(FaultyDisk::with_clock(
            Arc::clone(&wal),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        Rig { data, wal, clock, data_faulty, wal_faulty }
    }
}

fn pool_config() -> BufferPoolConfig {
    BufferPoolConfig::with_capacity(FRAMES)
}

/// Runs setup + the seeded workload on the rig's faulty devices.  When
/// `crash` is set, the clock is armed `rel_write` global writes after
/// setup finishes.  Returns `Ok(committed)` if the workload completed,
/// `Err(committed_before_crash)` if the simulated machine died.
fn run_workload(rig: &Rig, crash: Option<(u64, usize, u64)>) -> Result<usize, usize> {
    let pool = Arc::new(
        BufferPool::new_durable(
            Arc::clone(&rig.data_faulty),
            pool_config(),
            Arc::clone(&rig.wal_faulty),
        )
        .expect("durable pool on fresh devices"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    db.commit().expect("setup commit");
    db.checkpoint().expect("setup checkpoint");

    if let Some((rel_write, torn_sectors, persist_seed)) = crash {
        rig.clock.arm_crash(CrashPlan {
            crash_at_write: Some(rig.clock.writes() + rel_write),
            torn_sectors,
            sector_bytes: SECTOR,
            persist_seed,
        });
    }

    let mut committed = 0usize;
    for i in 0..OPS {
        let step = (|| -> ri_tree::core::Result<()> {
            tree.insert(op_interval(i), i as i64)?;
            db.commit()?;
            Ok(())
        })();
        if let Err(err) = step {
            assert!(
                err.to_string().contains("crash"),
                "op {i}: only the simulated crash may fail the workload, got: {err}"
            );
            return Err(committed);
        }
        committed += 1;
        if (i + 1) % CHECKPOINT_EVERY == 0 {
            if let Err(err) = db.checkpoint() {
                assert!(
                    err.to_string().contains("crash"),
                    "checkpoint after op {i}: unexpected error: {err}"
                );
                return Err(committed);
            }
        }
    }
    Ok(committed)
}

/// Reboots: settles the dead devices' write caches, reopens the raw
/// in-memory devices with a fresh durable pool (redo recovery runs in
/// `Database::open`), and checks the recovered tree op by op against the
/// oracle.  Returns the recovered row count.
fn reopen_and_verify(rig: &Rig, committed: usize, ctx: &str) -> usize {
    rig.data_faulty.settle_crash();
    rig.wal_faulty.settle_crash();
    let pool = Arc::new(
        BufferPool::new_durable(Arc::clone(&rig.data), pool_config(), Arc::clone(&rig.wal))
            .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}")),
    );
    let db = Arc::new(Database::open(pool).unwrap_or_else(|e| panic!("{ctx}: open failed: {e}")));
    let tree =
        RiTree::open(Arc::clone(&db), "t").unwrap_or_else(|e| panic!("{ctx}: tree open: {e}"));

    let n = tree.count().unwrap_or_else(|e| panic!("{ctx}: count: {e}")) as usize;
    assert!(
        n == committed || n == committed + 1,
        "{ctx}: recovered {n} ops, but {committed} committed before the crash \
         (at most the one in-flight op may additionally survive)"
    );

    // The oracle: ids and intervals of the first `n` ops, exactly.
    let oracle: BTreeMap<i64, Interval> = (0..n).map(|i| (i as i64, op_interval(i))).collect();
    let mut got = tree
        .intersection(Interval::new(0, 100_000).unwrap())
        .unwrap_or_else(|e| panic!("{ctx}: full-range query: {e}"));
    got.sort_unstable();
    let want: Vec<i64> = oracle.keys().copied().collect();
    assert_eq!(got, want, "{ctx}: recovered id set diverged from the oracle");
    for (&id, iv) in &oracle {
        let hits = tree.stab(iv.lower).unwrap_or_else(|e| panic!("{ctx}: stab: {e}"));
        assert!(hits.contains(&id), "{ctx}: op {id} committed but not recovered at {iv:?}");
    }
    n
}

/// The exhaustive sweep: a dry run counts the workload's global device
/// writes, then the machine is killed at every write index — once
/// cleanly (the dying write leaves no trace) and twice torn (1–3 leading
/// sectors of the dying write persist) — and recovery is verified after
/// each kill.
#[test]
fn kill_at_every_write_index_and_recover() {
    let dry = Rig::new();
    let before = {
        // Setup writes are not crash candidates (the database exists once
        // the workload starts); count the span the workload covers.
        let pool = Arc::new(
            BufferPool::new_durable(
                Arc::clone(&dry.data_faulty),
                pool_config(),
                Arc::clone(&dry.wal_faulty),
            )
            .expect("durable pool"),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
        let _tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
        db.commit().expect("commit");
        db.checkpoint().expect("checkpoint");
        dry.clock.writes()
    };
    // Fresh rig for the actual dry run (the probe above consumed one).
    let dry = Rig::new();
    assert_eq!(run_workload(&dry, None), Ok(OPS));
    let total = dry.clock.writes();
    assert!(total > before, "workload must write");
    let span = total - before;

    let mut crash_points = 0u64;
    let mut in_flight_survived = 0u64;
    for rel in 0..span {
        // Three variants per index: clean kill, and two torn kills with
        // different surviving prefixes and persistence coins.
        for (variant, torn) in
            [(0u64, 0usize), (1, 1 + (rel as usize % 3)), (2, 1 + ((rel as usize + 1) % 3))]
        {
            let rig = Rig::new();
            let seed = rel * 0x9E37 + variant;
            let committed = match run_workload(&rig, Some((rel, torn, seed))) {
                Err(committed) => committed,
                Ok(done) => {
                    // The workload finished before write index `rel` was
                    // reached — only possible for indices at the very end
                    // of the span (the dry run's final checkpoint).
                    assert_eq!(done, OPS);
                    rig.clock.crash_now();
                    done
                }
            };
            let ctx = format!("write {rel}/{span} variant {variant} (torn {torn})");
            let recovered = reopen_and_verify(&rig, committed, &ctx);
            if recovered == committed + 1 {
                in_flight_survived += 1;
            }
            crash_points += 1;
        }
    }
    assert!(crash_points >= 1000, "the sweep must cover >= 1000 crash points, got {crash_points}");
    // Sanity on the sweep's reach: some crashes must land after a durable
    // commit record but before commit() returned (the in-flight op
    // surviving atomically), or the atomicity branch is untested.
    assert!(
        in_flight_survived > 0,
        "no crash point ever made the in-flight op durable — sweep too coarse"
    );
    eprintln!(
        "kill-anywhere: {crash_points} crash points over {span} write indices, \
         in-flight op survived {in_flight_survived} times"
    );
}

/// A power cut with *no* dying write — the machine stops between device
/// operations with an arbitrary unsynced write-cache subset — recovers
/// to exactly the committed prefix.
#[test]
fn power_cut_between_writes_recovers_committed_prefix() {
    for seed in 0..8u64 {
        let rig = Rig::new();
        rig.clock.arm_crash(CrashPlan {
            crash_at_write: None,
            torn_sectors: 0,
            sector_bytes: SECTOR,
            persist_seed: seed,
        });
        let pool = Arc::new(
            BufferPool::new_durable(
                Arc::clone(&rig.data_faulty),
                pool_config(),
                Arc::clone(&rig.wal_faulty),
            )
            .expect("durable pool"),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
        let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
        db.commit().expect("commit");
        let committed = 40 + (seed as usize * 7) % 30;
        for i in 0..committed {
            tree.insert(op_interval(i), i as i64).expect("insert");
            db.commit().expect("commit");
        }
        rig.clock.crash_now();
        drop((tree, db, pool));
        reopen_and_verify(&rig, committed, &format!("power cut, seed {seed}"));
    }
}
