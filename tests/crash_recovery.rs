//! Kill-anywhere crash recovery: a WAL-backed RI-tree database is killed
//! at *every* device write index of a seeded workload — cleanly and with
//! torn (partial-sector) dying writes — then reopened, and the recovered
//! state is checked op by op against an in-memory oracle.
//!
//! The durability contract under test:
//!
//! * every insert whose `Database::commit` returned before the crash is
//!   present after recovery, bit-exact;
//! * the one in-flight insert is atomic — fully present iff its commit
//!   record reached the log device, fully absent otherwise;
//! * recovery never panics, never reports corruption, and leaves the
//!   database writable.
//!
//! Both devices (data + log) share one [`FaultClock`], so the crash
//! index ranges over the *interleaved* global write sequence — log-page
//! appends, checkpoint write-backs, and the checkpoint anchor rewrite
//! all take their turn dying.  Unsynced buffered writes survive the
//! power cut by a seeded per-write coin, so every crash point also
//! exercises a different surviving subset of the volatile write cache.

use ri_tree::pagestore::{
    BufferPool, BufferPoolConfig, CrashPlan, FaultClock, FaultPlan, FaultyDisk, FlushPolicy,
    MemDisk, WalConfig,
};
use ri_tree::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// Small pages: more log pages per commit, more crash points per op.
const PAGE: usize = 1024;
/// Torn-write granularity — four sectors per page.
const SECTOR: usize = 256;
/// Deliberately tiny pool so dirty data pages are written back (through
/// the WAL barrier) mid-workload, not only at checkpoints.
const FRAMES: usize = 16;
/// Committed inserts in the seeded workload.
const OPS: usize = 96;
/// A checkpoint (flush + log truncation) runs after every this many ops,
/// so crash indices also land inside checkpoints and after truncations.
const CHECKPOINT_EVERY: usize = 24;

/// Deterministic workload: op `i` inserts this interval with id `i`.
fn op_interval(i: usize) -> Interval {
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5EED);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    let lo = (x % 50_000) as i64;
    let len = 1 + (x >> 17) as i64 % 400;
    Interval::new(lo, lo + len).unwrap()
}

/// The two shared in-memory devices that survive a "reboot", plus the
/// clock the fault wrappers crash on.
struct Rig {
    data: Arc<MemDisk>,
    wal: Arc<MemDisk>,
    clock: Arc<FaultClock>,
    data_faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
    wal_faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
}

impl Rig {
    fn new() -> Rig {
        let data = Arc::new(MemDisk::new(PAGE));
        let wal = Arc::new(MemDisk::new(PAGE));
        let clock = FaultClock::new();
        let data_faulty = Arc::new(FaultyDisk::with_clock(
            Arc::clone(&data),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        let wal_faulty = Arc::new(FaultyDisk::with_clock(
            Arc::clone(&wal),
            FaultPlan::default(),
            Arc::clone(&clock),
        ));
        Rig { data, wal, clock, data_faulty, wal_faulty }
    }
}

fn pool_config() -> BufferPoolConfig {
    BufferPoolConfig::with_capacity(FRAMES)
}

/// The background-flusher configuration the `flusher_*` sweeps run
/// under: a low watermark keeps the flusher draining concurrently with
/// the workload, so — the shared [`FaultClock`] being thread-blind —
/// crash indices land inside its drains just like anyone else's writes.
fn flusher_config() -> WalConfig {
    WalConfig {
        flush_policy: FlushPolicy::Background { watermark_bytes: 512 },
        ..WalConfig::default()
    }
}

/// Counts the global device writes and sync barriers that setup alone
/// (create + DDL + commit + checkpoint) costs under `wal_config`, so
/// sweeps can skip killing the pre-workload phase.
fn setup_spans(wal_config: WalConfig) -> (u64, u64) {
    let rig = Rig::new();
    {
        let pool = Arc::new(
            BufferPool::new_durable_with(
                Arc::clone(&rig.data_faulty),
                pool_config(),
                Arc::clone(&rig.wal_faulty),
                wal_config,
            )
            .expect("durable pool"),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
        let _tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
        db.commit().expect("commit");
        db.checkpoint().expect("checkpoint");
        // The pool drop joins any flusher thread before we read the clock.
    }
    (rig.clock.writes(), rig.clock.syncs())
}

/// Runs setup + the seeded workload on the rig's faulty devices.  When
/// `crash` is set, the clock is armed `rel_write` global writes after
/// setup finishes.  Returns `Ok(committed)` if the workload completed,
/// `Err(committed_before_crash)` if the simulated machine died.
fn run_workload(
    rig: &Rig,
    wal_config: WalConfig,
    crash: Option<(u64, usize, u64)>,
) -> Result<usize, usize> {
    let pool = Arc::new(
        BufferPool::new_durable_with(
            Arc::clone(&rig.data_faulty),
            pool_config(),
            Arc::clone(&rig.wal_faulty),
            wal_config,
        )
        .expect("durable pool on fresh devices"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    db.commit().expect("setup commit");
    db.checkpoint().expect("setup checkpoint");

    if let Some((rel_write, torn_sectors, persist_seed)) = crash {
        rig.clock.arm_crash(CrashPlan {
            crash_at_write: Some(rig.clock.writes() + rel_write),
            torn_sectors,
            sector_bytes: SECTOR,
            persist_seed,
            ..Default::default()
        });
    }

    let mut committed = 0usize;
    for i in 0..OPS {
        let step = (|| -> ri_tree::core::Result<()> {
            tree.insert(op_interval(i), i as i64)?;
            db.commit()?;
            Ok(())
        })();
        if let Err(err) = step {
            assert!(
                err.to_string().contains("crash"),
                "op {i}: only the simulated crash may fail the workload, got: {err}"
            );
            return Err(committed);
        }
        committed += 1;
        if (i + 1) % CHECKPOINT_EVERY == 0 {
            if let Err(err) = db.checkpoint() {
                assert!(
                    err.to_string().contains("crash"),
                    "checkpoint after op {i}: unexpected error: {err}"
                );
                return Err(committed);
            }
        }
    }
    Ok(committed)
}

/// Reboots: settles the dead devices' write caches, reopens the raw
/// in-memory devices with a fresh durable pool (redo recovery runs in
/// `Database::open`), and checks the recovered tree op by op against the
/// oracle.  `max_in_flight` is the size of the one transaction that may
/// additionally survive **atomically** (its commit record reached the log
/// before the crash): the recovered count must be `committed` or
/// `committed + max_in_flight`, never a partial transaction.  Returns the
/// recovered row count.
fn reopen_and_verify(rig: &Rig, committed: usize, max_in_flight: usize, ctx: &str) -> usize {
    rig.data_faulty.settle_crash();
    rig.wal_faulty.settle_crash();
    let pool = Arc::new(
        BufferPool::new_durable(Arc::clone(&rig.data), pool_config(), Arc::clone(&rig.wal))
            .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}")),
    );
    let db = Arc::new(Database::open(pool).unwrap_or_else(|e| panic!("{ctx}: open failed: {e}")));
    let tree =
        RiTree::open(Arc::clone(&db), "t").unwrap_or_else(|e| panic!("{ctx}: tree open: {e}"));

    let n = tree.count().unwrap_or_else(|e| panic!("{ctx}: count: {e}")) as usize;
    assert!(
        n == committed || n == committed + max_in_flight,
        "{ctx}: recovered {n} ops, but {committed} committed before the crash \
         (only the whole {max_in_flight}-op in-flight transaction may additionally survive)"
    );

    // The oracle: ids and intervals of the first `n` ops, exactly.
    let oracle: BTreeMap<i64, Interval> = (0..n).map(|i| (i as i64, op_interval(i))).collect();
    let mut got = tree
        .intersection(Interval::new(0, 100_000).unwrap())
        .unwrap_or_else(|e| panic!("{ctx}: full-range query: {e}"));
    got.sort_unstable();
    let want: Vec<i64> = oracle.keys().copied().collect();
    assert_eq!(got, want, "{ctx}: recovered id set diverged from the oracle");
    for (&id, iv) in &oracle {
        let hits = tree.stab(iv.lower).unwrap_or_else(|e| panic!("{ctx}: stab: {e}"));
        assert!(hits.contains(&id), "{ctx}: op {id} committed but not recovered at {iv:?}");
    }
    n
}

/// The exhaustive sweep: a dry run counts the workload's global device
/// writes, then the machine is killed at every write index — once
/// cleanly (the dying write leaves no trace) and twice torn (1–3 leading
/// sectors of the dying write persist) — and recovery is verified after
/// each kill.
#[test]
fn kill_at_every_write_index_and_recover() {
    // Setup writes are not crash candidates (the database exists once
    // the workload starts); count the span the workload covers.
    let before = setup_spans(WalConfig::default()).0;
    let dry = Rig::new();
    assert_eq!(run_workload(&dry, WalConfig::default(), None), Ok(OPS));
    let total = dry.clock.writes();
    assert!(total > before, "workload must write");
    let span = total - before;

    let mut crash_points = 0u64;
    let mut in_flight_survived = 0u64;
    for rel in 0..span {
        // Three variants per index: clean kill, and two torn kills with
        // different surviving prefixes and persistence coins.
        for (variant, torn) in
            [(0u64, 0usize), (1, 1 + (rel as usize % 3)), (2, 1 + ((rel as usize + 1) % 3))]
        {
            let rig = Rig::new();
            let seed = rel * 0x9E37 + variant;
            let committed = match run_workload(&rig, WalConfig::default(), Some((rel, torn, seed)))
            {
                Err(committed) => committed,
                Ok(done) => {
                    // The workload finished before write index `rel` was
                    // reached — only possible for indices at the very end
                    // of the span (the dry run's final checkpoint).
                    assert_eq!(done, OPS);
                    rig.clock.crash_now();
                    done
                }
            };
            let ctx = format!("write {rel}/{span} variant {variant} (torn {torn})");
            let recovered = reopen_and_verify(&rig, committed, 1, &ctx);
            if recovered == committed + 1 {
                in_flight_survived += 1;
            }
            crash_points += 1;
        }
    }
    assert!(crash_points >= 1000, "the sweep must cover >= 1000 crash points, got {crash_points}");
    // Sanity on the sweep's reach: some crashes must land after a durable
    // commit record but before commit() returned (the in-flight op
    // surviving atomically), or the atomicity branch is untested.
    assert!(
        in_flight_survived > 0,
        "no crash point ever made the in-flight op durable — sweep too coarse"
    );
    eprintln!(
        "kill-anywhere: {crash_points} crash points over {span} write indices, \
         in-flight op survived {in_flight_survived} times"
    );
}

/// Two-insert transactions in the checkpoint-race workload.
const RACE_TXNS: usize = 24;
/// Every this many transactions, a checkpoint runs **between** the two
/// inserts — i.e. with the transaction open and its first row's records
/// in the truncation candidate range.
const RACE_CHECKPOINT_EVERY: usize = 3;

/// Where to kill the checkpoint-race workload.
enum RaceCrash {
    /// Die at the `rel`-th post-setup device write, tearing `torn`
    /// leading sectors of the dying write.
    Write { rel: u64, torn: usize, seed: u64 },
    /// Die at the `rel`-th post-setup sync barrier (the dying sync
    /// destages nothing — the whole cache settles by seeded coin).
    Sync { rel: u64, seed: u64 },
}

/// Workload where checkpoints race open transactions *by construction*:
/// every transaction inserts two intervals, and every
/// [`RACE_CHECKPOINT_EVERY`]-th transaction issues `Database::checkpoint`
/// between them.  A fuzzy checkpoint must then spare the open
/// transaction's log records; truncating them is exactly the bug the
/// regression test below pins down.  Returns committed op counts (always
/// even — two per transaction).
fn run_checkpoint_race_workload(
    rig: &Rig,
    wal_config: WalConfig,
    crash: Option<RaceCrash>,
) -> Result<usize, usize> {
    let pool = Arc::new(
        BufferPool::new_durable_with(
            Arc::clone(&rig.data_faulty),
            pool_config(),
            Arc::clone(&rig.wal_faulty),
            wal_config,
        )
        .expect("durable pool on fresh devices"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    db.commit().expect("setup commit");
    db.checkpoint().expect("setup checkpoint");

    match crash {
        Some(RaceCrash::Write { rel, torn, seed }) => rig.clock.arm_crash(CrashPlan {
            crash_at_write: Some(rig.clock.writes() + rel),
            torn_sectors: torn,
            sector_bytes: SECTOR,
            persist_seed: seed,
            ..Default::default()
        }),
        Some(RaceCrash::Sync { rel, seed }) => rig.clock.arm_crash(CrashPlan {
            crash_at_sync: Some(rig.clock.syncs() + rel),
            persist_seed: seed,
            ..Default::default()
        }),
        None => {}
    }

    let mut committed = 0usize;
    for t in 0..RACE_TXNS {
        let step = (|| -> ri_tree::core::Result<()> {
            tree.insert(op_interval(2 * t), (2 * t) as i64)?;
            if t % RACE_CHECKPOINT_EVERY == 0 {
                db.checkpoint()?;
            }
            tree.insert(op_interval(2 * t + 1), (2 * t + 1) as i64)?;
            db.commit()?;
            Ok(())
        })();
        if let Err(err) = step {
            assert!(
                err.to_string().contains("crash"),
                "txn {t}: only the simulated crash may fail the workload, got: {err}"
            );
            return Err(committed);
        }
        committed += 2;
    }
    Ok(committed)
}

/// Verifies one checkpoint-race crash point: the recovered count must be
/// a whole number of transactions — an odd count means a checkpoint
/// truncated half of an uncommitted transaction's log tail and recovery
/// resurrected the other half.
fn verify_race_crash_point(rig: &Rig, committed: usize, ctx: &str) -> usize {
    let recovered = reopen_and_verify(rig, committed, 2, ctx);
    assert_eq!(
        recovered % 2,
        0,
        "{ctx}: recovered {recovered} ops — a partial transaction survived"
    );
    recovered
}

/// The kill-anywhere matrix extended with a concurrent-writer-during-
/// checkpoint workload: the machine dies at every post-setup device
/// write index (clean and torn) while checkpoints race open
/// transactions, and recovery must restore a whole number of committed
/// transactions at every single index.
#[test]
fn kill_at_every_write_index_with_checkpoint_racing_dml() {
    race_write_sweep(WalConfig::default(), "ckpt-race");
}

/// Shared body of the write-index race sweeps: measures the workload's
/// post-setup write span under `wal_config`, then kills at every index
/// (clean and torn) and verifies whole-transaction recovery.
fn race_write_sweep(wal_config: WalConfig, tag: &str) {
    let before = setup_spans(wal_config).0;
    let dry = Rig::new();
    assert_eq!(run_checkpoint_race_workload(&dry, wal_config, None), Ok(2 * RACE_TXNS));
    let total = dry.clock.writes();
    assert!(total > before, "workload must write");
    let span = total - before;

    let mut crash_points = 0u64;
    let mut in_flight_survived = 0u64;
    for rel in 0..span {
        for (variant, torn) in
            [(0u64, 0usize), (1, 1 + (rel as usize % 3)), (2, 1 + ((rel as usize + 1) % 3))]
        {
            let rig = Rig::new();
            let seed = rel * 0xC0FFEE + variant;
            let committed = match run_checkpoint_race_workload(
                &rig,
                wal_config,
                Some(RaceCrash::Write { rel, torn, seed }),
            ) {
                Err(committed) => committed,
                Ok(done) => {
                    assert_eq!(done, 2 * RACE_TXNS);
                    rig.clock.crash_now();
                    done
                }
            };
            let ctx = format!("{tag} write {rel}/{span} variant {variant} (torn {torn})");
            if verify_race_crash_point(&rig, committed, &ctx) == committed + 2 {
                in_flight_survived += 1;
            }
            crash_points += 1;
        }
    }
    assert!(crash_points >= 500, "the sweep must cover >= 500 crash points, got {crash_points}");
    // The reach check is only meaningful when the write schedule is
    // deterministic: with the background flusher racing, which write
    // index carries the commit record varies per run, so whether any
    // kill lands in the commit-durable-but-not-returned window is a
    // coin toss the sweep must tolerate either way.
    if wal_config.flush_policy == FlushPolicy::Off {
        assert!(
            in_flight_survived > 0,
            "no crash point ever made the in-flight transaction durable — sweep too coarse"
        );
    }
    eprintln!(
        "{tag} kill-anywhere: {crash_points} crash points over {span} write indices, \
         in-flight transaction survived {in_flight_survived} times"
    );
}

/// Same workload, but the kill lands on every post-setup **sync
/// barrier** instead of every write: the power cut strikes exactly when
/// the mid-transaction checkpoint flushes its log, syncs the data
/// device, or rewrites the anchor — the narrow windows the fuzzy
/// protocol's ordering argument lives on.
#[test]
fn kill_at_every_sync_index_with_checkpoint_racing_dml() {
    race_sync_sweep(WalConfig::default(), "ckpt-race");
}

/// Shared body of the sync-barrier race sweeps (see the write sweep's
/// twin above): the power cut strikes at every post-setup sync barrier.
fn race_sync_sweep(wal_config: WalConfig, tag: &str) {
    let before = setup_spans(wal_config).1;
    let dry = Rig::new();
    assert_eq!(run_checkpoint_race_workload(&dry, wal_config, None), Ok(2 * RACE_TXNS));
    let total = dry.clock.syncs();
    assert!(total > before, "workload must sync");
    let span = total - before;

    let mut crash_points = 0u64;
    for rel in 0..span {
        for seed_salt in 0..4u64 {
            let rig = Rig::new();
            let seed = rel * 0x51C2 + seed_salt;
            let committed = match run_checkpoint_race_workload(
                &rig,
                wal_config,
                Some(RaceCrash::Sync { rel, seed }),
            ) {
                Err(committed) => committed,
                Ok(done) => {
                    assert_eq!(done, 2 * RACE_TXNS);
                    rig.clock.crash_now();
                    done
                }
            };
            let ctx = format!("{tag} sync {rel}/{span} seed {seed}");
            verify_race_crash_point(&rig, committed, &ctx);
            crash_points += 1;
        }
    }
    eprintln!("{tag} sync sweep: {crash_points} crash points over {span} sync barriers");
}

/// Satellite sweep: the write-index race matrix re-run with the
/// background flusher on.  Its drains interleave with commits, group
/// commits, and checkpoints on the shared clock, so a slice of these
/// kills lands mid-flusher-write; recovery must be indistinguishable
/// from the `FlushPolicy::Off` sweep (the flusher never syncs, so it
/// can only move bytes *earlier*, never make an uncommitted record
/// durable-and-replayed).
#[test]
fn flusher_kill_at_every_write_index_with_checkpoint_racing_dml() {
    race_write_sweep(flusher_config(), "flusher-race");
}

/// Sync-barrier twin of the sweep above, flusher on: the flusher adds
/// no barriers of its own, so every kill still lands on a commit,
/// write-back, or checkpoint sync — now with flusher-drained bytes in
/// the cache ahead of it.
#[test]
fn flusher_kill_at_every_sync_index_with_checkpoint_racing_dml() {
    race_sync_sweep(flusher_config(), "flusher-race");
}

/// Satellite sweep: segment rollovers straddling open transactions.
/// Four-page segments leave 3 KB of payload per segment at this page
/// size, so nearly every two-insert transaction spills across a
/// rollover (header + anchor rewrite mid-transaction), and checkpoints
/// keep retiring and recycling the slots behind it — all with the
/// flusher racing.  Every post-setup write index is killed clean and
/// torn, and recovery must restore whole transactions only.
#[test]
fn flusher_kill_across_segment_rollovers_with_open_transactions() {
    let config = WalConfig { segment_pages: 4, ..flusher_config() };
    // Prove the geometry does what the sweep needs: a handful of
    // two-insert transactions must already span several segments.
    {
        let rig = Rig::new();
        let pool = Arc::new(
            BufferPool::new_durable_with(
                Arc::clone(&rig.data_faulty),
                pool_config(),
                Arc::clone(&rig.wal_faulty),
                config,
            )
            .expect("durable pool"),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
        let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
        for t in 0..4usize {
            tree.insert(op_interval(2 * t), (2 * t) as i64).expect("insert");
            tree.insert(op_interval(2 * t + 1), (2 * t + 1) as i64).expect("insert");
            db.commit().expect("commit");
        }
        let s = pool.wal().unwrap().stats();
        assert!(
            s.segments_created >= 3,
            "3 KB segments must roll over within a few transactions: {s:?}"
        );
    }
    race_write_sweep(config, "rollover");
}

/// Regression (the fuzzy-checkpoint bug): a writer parked **mid-
/// transaction** while `Database::checkpoint` runs must still roll back
/// cleanly after a crash.
///
/// The rendezvous is deterministic: the writer inserts its first
/// uncommitted row, then the main thread starts a checkpoint whose
/// data-device sync parks on a sync hook; while parked, the writer is
/// released to insert its *second* uncommitted row (DML truly interleaves
/// inside the checkpoint window), finishes, and the checkpoint resumes.
/// The machine then dies with the transaction still open.
///
/// Before the fix, the checkpoint flushed the writer's first-row page
/// images to the data device and truncated their before-images out of the
/// log, so recovery resurrected half a transaction that was never
/// committed.  With fuzzy checkpoints the truncation horizon stops below
/// the open transaction's first record and recovery rolls both rows back.
#[test]
fn checkpoint_racing_open_transaction_rolls_back_cleanly() {
    const SETUP_OPS: usize = 3;
    let rig = Rig::new();
    let pool = Arc::new(
        BufferPool::new_durable(
            Arc::clone(&rig.data_faulty),
            // Roomy pool: no evictions, so the only data-device sync after
            // setup is the checkpoint's own flush — the hook below parks
            // exactly the checkpoint window.
            BufferPoolConfig::with_capacity(64),
            Arc::clone(&rig.wal_faulty),
        )
        .expect("durable pool"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    for i in 0..SETUP_OPS {
        tree.insert(op_interval(i), i as i64).expect("setup insert");
    }
    db.commit().expect("setup commit");
    db.checkpoint().expect("setup checkpoint");
    rig.clock.arm_crash(CrashPlan { crash_at_write: None, ..Default::default() });

    let first_insert_done = Arc::new(AtomicBool::new(false));
    let writer_may_continue = Arc::new(AtomicBool::new(false));
    let writer_done = Arc::new(AtomicBool::new(false));
    {
        // Park the first post-setup data-device sync (the checkpoint's
        // flush) until the writer has squeezed its second uncommitted
        // insert into the window.
        let armed = Arc::new(AtomicBool::new(true));
        let writer_may_continue = Arc::clone(&writer_may_continue);
        let writer_done = Arc::clone(&writer_done);
        rig.data_faulty.set_sync_hook(Some(Arc::new(move |_idx| {
            if armed.swap(false, Ordering::SeqCst) {
                writer_may_continue.store(true, Ordering::SeqCst);
                while !writer_done.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
            }
        })));
    }

    thread::scope(|s| {
        let writer = {
            let tree = &tree;
            let first_insert_done = Arc::clone(&first_insert_done);
            let writer_may_continue = Arc::clone(&writer_may_continue);
            let writer_done = Arc::clone(&writer_done);
            s.spawn(move || {
                // First uncommitted row, before the checkpoint starts.
                tree.insert(op_interval(100), 100).expect("in-flight insert 1");
                first_insert_done.store(true, Ordering::SeqCst);
                while !writer_may_continue.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
                // Second uncommitted row, inside the checkpoint window.
                tree.insert(op_interval(101), 101).expect("in-flight insert 2");
                writer_done.store(true, Ordering::SeqCst);
                // The transaction never commits: the crash below must roll
                // back both rows.
            })
        };
        // The writer owns the only open transaction; checkpoint once its
        // first insert is logged.
        while !first_insert_done.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        db.checkpoint().expect("checkpoint racing the open transaction");
        writer.join().expect("writer thread");
    });
    rig.data_faulty.set_sync_hook(None);
    rig.clock.crash_now();
    drop((tree, db, pool));

    let n = reopen_and_verify(&rig, SETUP_OPS, 0, "checkpoint vs open transaction");
    assert_eq!(
        n, SETUP_OPS,
        "the open transaction never committed; no part of it may survive the crash"
    );
}

/// A power cut with *no* dying write — the machine stops between device
/// operations with an arbitrary unsynced write-cache subset — recovers
/// to exactly the committed prefix.
#[test]
fn power_cut_between_writes_recovers_committed_prefix() {
    for seed in 0..8u64 {
        let rig = Rig::new();
        rig.clock.arm_crash(CrashPlan {
            crash_at_write: None,
            torn_sectors: 0,
            sector_bytes: SECTOR,
            persist_seed: seed,
            ..Default::default()
        });
        let pool = Arc::new(
            BufferPool::new_durable(
                Arc::clone(&rig.data_faulty),
                pool_config(),
                Arc::clone(&rig.wal_faulty),
            )
            .expect("durable pool"),
        );
        let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
        let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
        db.commit().expect("commit");
        let committed = 40 + (seed as usize * 7) % 30;
        for i in 0..committed {
            tree.insert(op_interval(i), i as i64).expect("insert");
            db.commit().expect("commit");
        }
        rig.clock.crash_now();
        drop((tree, db, pool));
        reopen_and_verify(&rig, committed, 0, &format!("power cut, seed {seed}"));
    }
}
