//! Group commit with real writer threads: concurrent `Database::commit`
//! calls share log fsyncs (leader/follower), the WAL's accounting
//! identities hold exactly even while fuzzy checkpoints race the
//! committers, and no committed work is lost when the machine dies right
//! after the last commit returns.

use ri_tree::pagestore::{
    BufferPool, BufferPoolConfig, FaultClock, FaultPlan, FaultyDisk, FlushPolicy, MemDisk,
    WalConfig,
};
use ri_tree::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

const PAGE: usize = 2048;
const THREADS: usize = 4;
/// Commits per thread in the ungated free-running phase.
const FREE_COMMITS: usize = 24;

/// Deterministic interval for row `id`.
fn iv(id: i64) -> Interval {
    let lo = (id * 131) % 60_000;
    Interval::new(lo, lo + 200 + id % 97).unwrap()
}

#[test]
fn concurrent_commits_share_fsyncs_and_lose_nothing() {
    // Both devices share a clock so a final crash_now() freezes the pair.
    let data = Arc::new(MemDisk::new(PAGE));
    let wal_mem = Arc::new(MemDisk::new(PAGE));
    let clock = FaultClock::new();
    let data_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&data),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let wal_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&wal_mem),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let pool = Arc::new(
        BufferPool::new_durable(
            Arc::clone(&data_faulty),
            // Roomy: no evictions, so no forced write-back syncs muddy
            // the commit accounting under test.
            BufferPoolConfig::with_capacity(200),
            Arc::clone(&wal_faulty),
        )
        .expect("durable pool"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    db.commit().expect("setup commit");

    let wal = pool.wal().expect("durable pool has a WAL");
    let base = wal.stats();

    // Gate: the first log-device fsync after arming parks until all
    // gated commit records have been appended, so the waiting committers
    // demonstrably ride a later (or the same) sync — on any scheduler,
    // including a single-CPU runner where threads would otherwise
    // serialize into one fsync each.
    let armed = Arc::new(AtomicBool::new(true));
    let release = Arc::new(AtomicBool::new(false));
    {
        let armed = Arc::clone(&armed);
        let release = Arc::clone(&release);
        wal_faulty.set_sync_hook(Some(Arc::new(move |_sync_idx| {
            if armed.swap(false, Ordering::SeqCst) {
                while !release.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
            }
        })));
    }

    // Gated round: one insert+commit per thread.
    let gate_target = base.commits + THREADS as u64;
    thread::scope(|s| {
        for t in 0..THREADS as i64 {
            let tree = &tree;
            let db = &db;
            s.spawn(move || {
                let id = t * 1000;
                tree.insert(iv(id), id).expect("insert");
                db.commit().expect("commit");
            });
        }
        // Referee: release the parked fsync once every gated commit
        // record is in the log's append buffer.
        let wal = pool.wal().unwrap();
        let release = Arc::clone(&release);
        s.spawn(move || {
            while wal.stats().commits < gate_target {
                thread::sleep(Duration::from_millis(1));
            }
            release.store(true, Ordering::SeqCst);
        });
    });
    let gated = wal.stats();
    let gated_commits = gated.commits - base.commits;
    let gated_syncs = gated.syncs - base.syncs;
    assert_eq!(gated_commits, THREADS as u64);
    assert!(
        gated_syncs <= 2,
        "{THREADS} gated commits must share at most 2 fsyncs (parked leader + \
         one group flush), saw {gated_syncs}"
    );
    assert!(
        gated.group_commits - base.group_commits >= 2,
        "at least two commits must ride another thread's fsync"
    );

    // Free-running phase: real contention, no gate — and a checkpointer
    // thread issuing fuzzy checkpoints into the middle of it, so log
    // truncation, group fsyncs, and open commit windows interleave.
    let writers_done = AtomicBool::new(false);
    let checkpoints_taken = thread::scope(|s| {
        let mut writers = Vec::with_capacity(THREADS);
        for t in 0..THREADS as i64 {
            let tree = &tree;
            let db = &db;
            writers.push(s.spawn(move || {
                for k in 1..=FREE_COMMITS as i64 {
                    let id = t * 1000 + k;
                    tree.insert(iv(id), id).expect("insert");
                    db.commit().expect("commit");
                }
            }));
        }
        let db = &db;
        let writers_done = &writers_done;
        let checkpointer = s.spawn(move || {
            let mut taken = 0u64;
            loop {
                db.checkpoint().expect("checkpoint racing group commit");
                taken += 1;
                if writers_done.load(Ordering::SeqCst) && taken >= 3 {
                    return taken;
                }
                thread::sleep(Duration::from_millis(1));
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        writers_done.store(true, Ordering::SeqCst);
        checkpointer.join().unwrap()
    });

    let end = wal.stats();
    let commits = end.commits - base.commits;
    let leaders = end.commit_syncs - base.commit_syncs;
    let followers = end.group_commits - base.group_commits;
    let forced = end.forced_syncs - base.forced_syncs;
    let checkpoints = end.checkpoints - base.checkpoints;
    let total_rows = THREADS as u64 * (1 + FREE_COMMITS as u64);
    assert_eq!(commits, total_rows, "every submitted commit must be counted");
    assert_eq!(
        leaders + followers,
        commits,
        "exact accounting: every commit is a leader or a follower, never both or neither"
    );
    assert_eq!(checkpoints, checkpoints_taken, "every checkpoint must be counted");
    assert!(checkpoints >= 3, "the checkpointer must actually race the free phase");
    assert_eq!(
        end.checkpoint_syncs - base.checkpoint_syncs,
        2 * checkpoints,
        "each checkpoint issues exactly two syncs: record flush + anchor rewrite"
    );
    // The full sync ledger balances absolutely, not just as deltas: every
    // log-device sync ever issued has exactly one attributed cause, even
    // when a checkpoint's flush races the commit leader election.
    assert_eq!(
        end.syncs,
        end.commit_syncs + end.forced_syncs + end.checkpoint_syncs,
        "sync accounting identity broken: {end:?}"
    );
    // Grouping must save fsyncs on the commit path (the gated round
    // guarantees at least two followers on any scheduler).  Raw `syncs`
    // is no yardstick here: checkpoint and write-back-barrier syncs are
    // legitimate non-commit traffic, counted above, not against grouping.
    assert!(
        leaders < commits,
        "grouping must save commit fsyncs: {leaders} commit-led syncs (+{forced} forced) \
         for {commits} commits"
    );
    assert_eq!(wal.durable_lsn(), wal.end_lsn(), "commit returns only once durable");

    // Power cut: every commit that returned must survive recovery — the
    // checkpoints flushed some pages and truncated their log records, the
    // WAL tail replays the rest.
    clock.crash_now();
    drop((tree, db, pool));
    data_faulty.settle_crash();
    wal_faulty.settle_crash();

    let pool = Arc::new(
        BufferPool::new_durable(data, BufferPoolConfig::with_capacity(200), wal_mem)
            .expect("reopen"),
    );
    let db = Arc::new(Database::open(pool).expect("recovery"));
    let tree = RiTree::open(Arc::clone(&db), "t").expect("tree open");
    assert_eq!(tree.count().expect("count"), total_rows, "no committed insert may be lost");
    let mut want: Vec<i64> = (0..THREADS as i64)
        .flat_map(|t| (0..=FREE_COMMITS as i64).map(move |k| t * 1000 + k))
        .collect();
    want.sort_unstable();
    let mut got = tree.intersection(Interval::new(0, 100_000).unwrap()).expect("query");
    got.sort_unstable();
    assert_eq!(got, want, "recovered rows diverge from the committed set");
    for &id in &want {
        assert!(tree.stab(iv(id).lower).expect("stab").contains(&id));
    }
}

/// The background flusher racing group commit: with
/// `FlushPolicy::Background` the flusher demonstrably drains a large
/// transaction's backlog ahead of its commit, the absolute sync ledger
/// (`syncs == commit_syncs + forced_syncs + checkpoint_syncs`) still
/// balances exactly — the flusher writes but never syncs — and a power
/// cut right after the last commit loses nothing.
#[test]
fn flusher_races_group_commit_without_breaking_the_sync_ledger() {
    const BIG_TXN_ROWS: i64 = 200;
    let data = Arc::new(MemDisk::new(PAGE));
    let wal_mem = Arc::new(MemDisk::new(PAGE));
    let clock = FaultClock::new();
    let data_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&data),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let wal_faulty = Arc::new(FaultyDisk::with_clock(
        Arc::clone(&wal_mem),
        FaultPlan::default(),
        Arc::clone(&clock),
    ));
    let pool = Arc::new(
        BufferPool::new_durable_with(
            Arc::clone(&data_faulty),
            BufferPoolConfig::with_capacity(200),
            Arc::clone(&wal_faulty),
            WalConfig {
                flush_policy: FlushPolicy::Background { watermark_bytes: 1024 },
                ..WalConfig::default()
            },
        )
        .expect("durable pool with flusher"),
    );
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("create"));
    let tree = RiTree::create(Arc::clone(&db), "t").expect("ddl");
    db.commit().expect("setup commit");
    let wal = pool.wal().expect("durable pool has a WAL");

    // One large open transaction: every insert crosses the 1 KB
    // watermark, so the flusher must drain the backlog while the commit
    // is still far away.
    for id in 0..BIG_TXN_ROWS {
        tree.insert(iv(id), id).expect("insert");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while wal.stats().flusher_writes == 0 {
        assert!(std::time::Instant::now() < deadline, "flusher never drained the backlog");
        thread::yield_now();
    }
    assert!(wal.stats().flusher_bytes > 0, "the drain must cover actual stream bytes");

    // Concurrent committers + a racing checkpointer on top of the
    // still-running flusher, then the ledger must balance absolutely.
    thread::scope(|s| {
        for t in 1..=THREADS as i64 {
            let tree = &tree;
            let db = &db;
            s.spawn(move || {
                for k in 0..FREE_COMMITS as i64 {
                    let id = t * 1000 + k;
                    tree.insert(iv(id), id).expect("insert");
                    db.commit().expect("commit");
                }
            });
        }
        let db = &db;
        s.spawn(move || {
            for _ in 0..3 {
                db.checkpoint().expect("checkpoint racing flusher and committers");
                thread::sleep(Duration::from_millis(1));
            }
        });
    });
    db.commit().expect("commit of the big transaction");

    let end = wal.stats();
    assert_eq!(
        end.commit_syncs + end.group_commits,
        end.commits,
        "every commit is exactly a leader or a follower: {end:?}"
    );
    assert_eq!(
        end.syncs,
        end.commit_syncs + end.forced_syncs + end.checkpoint_syncs,
        "sync accounting identity broken with the flusher racing commits: {end:?}"
    );
    assert_eq!(wal.durable_lsn(), wal.end_lsn(), "commit returns only once durable");

    // Power cut: the flusher thread dies with the machine; every commit
    // that returned must survive recovery.
    clock.crash_now();
    drop((tree, db, pool));
    data_faulty.settle_crash();
    wal_faulty.settle_crash();

    let pool = Arc::new(
        BufferPool::new_durable(data, BufferPoolConfig::with_capacity(200), wal_mem)
            .expect("reopen"),
    );
    let db = Arc::new(Database::open(pool).expect("recovery"));
    let tree = RiTree::open(Arc::clone(&db), "t").expect("tree open");
    let total_rows = BIG_TXN_ROWS as u64 + THREADS as u64 * FREE_COMMITS as u64;
    assert_eq!(tree.count().expect("count"), total_rows, "no committed insert may be lost");
    for id in (0..BIG_TXN_ROWS).step_by(13) {
        assert!(tree.stab(iv(id).lower).expect("stab").contains(&id), "big-txn row {id} lost");
    }
}
