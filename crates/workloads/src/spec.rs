//! Workload specifications and interval generation.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper end of the paper's data domain: "The bounding points of all
/// intervals lie in the domain of [0, 2^20 − 1]" (Section 6.1).
pub const DOMAIN_MAX: i64 = (1 << 20) - 1;

/// Starting-point distribution (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StartDist {
    /// Uniform over the domain.
    Uniform,
    /// Arrival times of a Poisson process spanning the domain: exponential
    /// inter-arrival times with mean `domain / n`, sorted by construction.
    Poisson,
}

/// Duration distribution (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DurationDist {
    /// Uniform in `[lo, hi]`; Table 1 uses `[0, 2d]` (mean `d`), and the
    /// Figure 15 experiment restricts the range symmetrically.
    Uniform {
        /// Minimum duration.
        lo: i64,
        /// Maximum duration.
        hi: i64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean duration.
        mean: f64,
    },
}

/// A fully parameterized interval workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Distribution family name for reports (e.g. `"D4"`).
    pub name: &'static str,
    /// Number of intervals.
    pub n: usize,
    /// Starting-point distribution.
    pub start: StartDist,
    /// Duration distribution.
    pub duration: DurationDist,
}

/// `D1(n, d)`: uniform starts, uniform durations in `[0, 2d]`.
pub fn d1(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D1",
        n,
        start: StartDist::Uniform,
        duration: DurationDist::Uniform { lo: 0, hi: 2 * d },
    }
}

/// `D2(n, d)`: uniform starts, exponential durations with mean `d`.
pub fn d2(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D2",
        n,
        start: StartDist::Uniform,
        duration: DurationDist::Exponential { mean: d as f64 },
    }
}

/// `D3(n, d)`: Poisson-process starts, uniform durations in `[0, 2d]`.
pub fn d3(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D3",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Uniform { lo: 0, hi: 2 * d },
    }
}

/// `D4(n, d)`: Poisson-process starts, exponential durations with mean `d`.
pub fn d4(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D4",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Exponential { mean: d as f64 },
    }
}

/// The Figure 15 variant: `D3(n, 2k)` with the duration domain restricted
/// from `[0, 4k]` to `[min_len, 4k − min_len]`.
pub fn restricted_d3(n: usize, min_len: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D3r",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Uniform { lo: min_len, hi: 4000 - min_len },
    }
}

impl WorkloadSpec {
    /// Mean interval duration of this specification.
    pub fn mean_duration(&self) -> f64 {
        match self.duration {
            DurationDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            DurationDist::Exponential { mean } => mean,
        }
    }

    /// Generates the `(lower, upper)` pairs, deterministically from `seed`.
    ///
    /// Upper bounds are clamped to the domain so that all bounding points
    /// lie in `[0, 2^20 − 1]`.
    pub fn generate(&self, seed: u64) -> Vec<(i64, i64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let starts = self.generate_starts(&mut rng);
        starts
            .into_iter()
            .map(|s| {
                let len = sample_duration(&self.duration, &mut rng);
                (s, (s + len).min(DOMAIN_MAX))
            })
            .collect()
    }

    fn generate_starts(&self, rng: &mut StdRng) -> Vec<i64> {
        match self.start {
            StartDist::Uniform => (0..self.n).map(|_| rng.gen_range(0..=DOMAIN_MAX)).collect(),
            StartDist::Poisson => {
                // Exponential inter-arrival times with mean chosen so the
                // expected n-th arrival lands at DOMAIN_MAX.
                let mean_gap = (DOMAIN_MAX as f64) / (self.n as f64);
                let exp = rand_distr_exp(mean_gap);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(self.n);
                for _ in 0..self.n {
                    t += exp.sample(rng);
                    out.push((t as i64).min(DOMAIN_MAX));
                }
                out
            }
        }
    }

    /// A starting point drawn from this workload's start distribution —
    /// used to make query workloads "compatible" with the data.
    pub fn sample_start(&self, rng: &mut StdRng) -> i64 {
        // For query generation both Uniform and Poisson starts are
        // effectively uniform over the domain (a Poisson process has
        // uniform arrival positions conditioned on the count).
        rng.gen_range(0..=DOMAIN_MAX)
    }
}

pub(crate) fn sample_duration(d: &DurationDist, rng: &mut StdRng) -> i64 {
    match *d {
        DurationDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        DurationDist::Exponential { mean } => {
            if mean <= 0.0 {
                0
            } else {
                rand_distr_exp(mean).sample(rng) as i64
            }
        }
    }
}

/// Exponential distribution with the given mean, via inverse transform.
/// (Avoids pulling in `rand_distr`; two lines suffice.)
pub(crate) struct ExpDist {
    mean: f64,
}

pub(crate) fn rand_distr_exp(mean: f64) -> ExpDist {
    ExpDist { mean }
}

impl Distribution<f64> for ExpDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = d1(1000, 2000);
        assert_eq!(spec.generate(42), spec.generate(42));
        assert_ne!(spec.generate(42), spec.generate(43));
    }

    #[test]
    fn bounds_stay_in_domain() {
        for spec in [d1(5000, 2000), d2(5000, 2000), d3(5000, 2000), d4(5000, 2000)] {
            for (l, u) in spec.generate(7) {
                assert!(l >= 0 && u <= DOMAIN_MAX && l <= u, "{}: ({l}, {u})", spec.name);
            }
        }
    }

    #[test]
    fn uniform_duration_mean_is_d() {
        let spec = d1(20_000, 2000);
        let data = spec.generate(1);
        let mean: f64 = data.iter().map(|(l, u)| (u - l) as f64).sum::<f64>() / data.len() as f64;
        assert!((mean - 2000.0).abs() < 100.0, "mean duration {mean} != ~2000");
    }

    #[test]
    fn exponential_duration_mean_is_d() {
        let spec = d2(40_000, 2000);
        let data = spec.generate(2);
        let mean: f64 = data.iter().map(|(l, u)| (u - l) as f64).sum::<f64>() / data.len() as f64;
        // Clamping at the domain edge biases slightly low.
        assert!((mean - 2000.0).abs() < 150.0, "mean duration {mean} != ~2000");
    }

    #[test]
    fn poisson_starts_are_sorted_and_span_domain() {
        let spec = d3(10_000, 2000);
        let data = spec.generate(3);
        let starts: Vec<i64> = data.iter().map(|&(l, _)| l).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "arrival order");
        assert!(*starts.last().unwrap() > DOMAIN_MAX / 2, "process spans the domain");
    }

    #[test]
    fn restricted_d3_respects_min_length() {
        for min_len in [0, 500, 1000, 1500] {
            let spec = restricted_d3(2000, min_len);
            let data = spec.generate(4);
            for (l, u) in &data {
                let len = u - l;
                // Clamping at the domain edge may shorten a handful.
                if *u < DOMAIN_MAX {
                    assert!(len >= min_len && len <= 4000 - min_len, "len {len}");
                }
            }
            assert!((spec.mean_duration() - 2000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn points_occur_with_zero_min_duration() {
        // "each data distribution of Table 1 contains intervals with
        // length 0 (i.e. points)" — Section 6.1. P(len = 0) = 1/4001
        // per interval, so a 20,000-interval draw misses points with
        // probability ~e^-5 ≈ 0.7%; across 4 independent seeds the
        // chance all miss is ~(e^-5)^4 ≈ 2·10^-9.
        let points = (0..4).flat_map(|seed| d1(20_000, 2000).generate(seed)).any(|(l, u)| l == u);
        assert!(points, "no points generated across 4 seeds");
    }
}
