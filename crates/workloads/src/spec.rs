//! Workload specifications and interval generation.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper end of the paper's data domain: "The bounding points of all
/// intervals lie in the domain of [0, 2^20 − 1]" (Section 6.1).
pub const DOMAIN_MAX: i64 = (1 << 20) - 1;

/// Starting-point distribution (Table 1, plus the skewed extension).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StartDist {
    /// Uniform over the domain.
    Uniform,
    /// Arrival times of a Poisson process spanning the domain: exponential
    /// inter-arrival times with mean `domain / n`, sorted by construction.
    Poisson,
    /// Zipf-skewed over `cells` equal domain slices (see [`ZipfCells`]):
    /// slice popularity follows rank^(-s), positions within a slice stay
    /// uniform.  Not part of the paper's Table 1 — added for the hot-tier
    /// experiment (`fig23_hot_tier`), where skew is the whole point.
    Zipf {
        /// Skew exponent; `0.0` degenerates to uniform-over-cells,
        /// `1.0` is classic Zipf.
        s: f64,
        /// Number of equal-width domain slices popularity is assigned
        /// to; must be a power of two.
        cells: u32,
    },
}

/// Duration distribution (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DurationDist {
    /// Uniform in `[lo, hi]`; Table 1 uses `[0, 2d]` (mean `d`), and the
    /// Figure 15 experiment restricts the range symmetrically.
    Uniform {
        /// Minimum duration.
        lo: i64,
        /// Maximum duration.
        hi: i64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean duration.
        mean: f64,
    },
}

/// A fully parameterized interval workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Distribution family name for reports (e.g. `"D4"`).
    pub name: &'static str,
    /// Number of intervals.
    pub n: usize,
    /// Starting-point distribution.
    pub start: StartDist,
    /// Duration distribution.
    pub duration: DurationDist,
}

/// `D1(n, d)`: uniform starts, uniform durations in `[0, 2d]`.
pub fn d1(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D1",
        n,
        start: StartDist::Uniform,
        duration: DurationDist::Uniform { lo: 0, hi: 2 * d },
    }
}

/// `D2(n, d)`: uniform starts, exponential durations with mean `d`.
pub fn d2(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D2",
        n,
        start: StartDist::Uniform,
        duration: DurationDist::Exponential { mean: d as f64 },
    }
}

/// `D3(n, d)`: Poisson-process starts, uniform durations in `[0, 2d]`.
pub fn d3(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D3",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Uniform { lo: 0, hi: 2 * d },
    }
}

/// `D4(n, d)`: Poisson-process starts, exponential durations with mean `d`.
pub fn d4(n: usize, d: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D4",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Exponential { mean: d as f64 },
    }
}

/// `Zipf(n, d, s)`: Zipf-skewed starts over 64 domain slices with
/// exponent `s`, uniform durations in `[0, 2d]` (the D1 durations).
///
/// 64 slices over the `2^20` domain gives 16384-wide hot spots — the
/// same granularity the hot tier's default blocks use, so a skewed
/// query stream exercises block-level locality rather than smearing
/// every slice across many cache blocks.
pub fn zipf(n: usize, d: i64, s: f64) -> WorkloadSpec {
    WorkloadSpec {
        name: "Zipf",
        n,
        start: StartDist::Zipf { s, cells: 64 },
        duration: DurationDist::Uniform { lo: 0, hi: 2 * d },
    }
}

/// The Figure 15 variant: `D3(n, 2k)` with the duration domain restricted
/// from `[0, 4k]` to `[min_len, 4k − min_len]`.
pub fn restricted_d3(n: usize, min_len: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "D3r",
        n,
        start: StartDist::Poisson,
        duration: DurationDist::Uniform { lo: min_len, hi: 4000 - min_len },
    }
}

impl WorkloadSpec {
    /// Mean interval duration of this specification.
    pub fn mean_duration(&self) -> f64 {
        match self.duration {
            DurationDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            DurationDist::Exponential { mean } => mean,
        }
    }

    /// Generates the `(lower, upper)` pairs, deterministically from `seed`.
    ///
    /// Upper bounds are clamped to the domain so that all bounding points
    /// lie in `[0, 2^20 − 1]`.
    pub fn generate(&self, seed: u64) -> Vec<(i64, i64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let starts = self.generate_starts(&mut rng);
        starts
            .into_iter()
            .map(|s| {
                let len = sample_duration(&self.duration, &mut rng);
                (s, (s + len).min(DOMAIN_MAX))
            })
            .collect()
    }

    fn generate_starts(&self, rng: &mut StdRng) -> Vec<i64> {
        match self.start {
            StartDist::Uniform => (0..self.n).map(|_| rng.gen_range(0..=DOMAIN_MAX)).collect(),
            StartDist::Zipf { s, cells } => {
                let z = ZipfCells::new(s, cells);
                (0..self.n).map(|_| z.sample(rng)).collect()
            }
            StartDist::Poisson => {
                // Exponential inter-arrival times with mean chosen so the
                // expected n-th arrival lands at DOMAIN_MAX.
                let mean_gap = (DOMAIN_MAX as f64) / (self.n as f64);
                let exp = rand_distr_exp(mean_gap);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(self.n);
                for _ in 0..self.n {
                    t += exp.sample(rng);
                    out.push((t as i64).min(DOMAIN_MAX));
                }
                out
            }
        }
    }

    /// A starting point drawn from this workload's start distribution —
    /// used to make query workloads "compatible" with the data.
    ///
    /// For repeated sampling prefer [`WorkloadSpec::start_sampler`],
    /// which builds the Zipf popularity table once.
    pub fn sample_start(&self, rng: &mut StdRng) -> i64 {
        self.start_sampler().sample(rng)
    }

    /// A reusable sampler for this workload's start distribution.
    pub fn start_sampler(&self) -> StartSampler {
        match self.start {
            // For query generation both Uniform and Poisson starts are
            // effectively uniform over the domain (a Poisson process has
            // uniform arrival positions conditioned on the count).
            StartDist::Uniform | StartDist::Poisson => StartSampler::Uniform,
            StartDist::Zipf { s, cells } => StartSampler::Zipf(ZipfCells::new(s, cells)),
        }
    }
}

/// Reusable start-position sampler (see [`WorkloadSpec::start_sampler`]).
#[derive(Clone, Debug)]
pub enum StartSampler {
    /// Uniform over the domain.
    Uniform,
    /// Zipf-over-cells with a prebuilt popularity table.
    Zipf(ZipfCells),
}

impl StartSampler {
    /// Draws one start position in `[0, DOMAIN_MAX]`.
    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        match self {
            StartSampler::Uniform => rng.gen_range(0..=DOMAIN_MAX),
            StartSampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Zipf-over-cells position sampler.
///
/// The domain splits into `cells` equal slices.  Popularity rank `r`
/// (0-based) carries weight `(r + 1)^(-s)`; ranks map to slice positions
/// through a fixed odd-multiplier bijection so the popular slices are
/// scattered across the domain instead of piling up at its low end
/// (spatial locality inside a slice, none between slices).  Within a
/// slice, positions are uniform.  Sampling is inverse-CDF over the
/// `cells`-entry table: O(cells) to build, O(log cells) per draw, fully
/// deterministic for a seeded `StdRng`.
#[derive(Clone, Debug)]
pub struct ZipfCells {
    /// Cumulative normalized weights by rank, last entry 1.0.
    cdf: Vec<f64>,
    cell_width: i64,
    mask: u64,
}

impl ZipfCells {
    /// Builds the popularity table for `cells` slices with exponent `s`.
    ///
    /// # Panics
    /// Panics unless `cells` is a power of two in `[2, 65536]` and
    /// `s >= 0`.
    pub fn new(s: f64, cells: u32) -> ZipfCells {
        assert!(
            cells.is_power_of_two() && (2..=65536).contains(&cells),
            "cells {cells} must be a power of two in [2, 65536]"
        );
        assert!(s >= 0.0, "negative skew exponent {s}");
        let weights: Vec<f64> = (0..cells).map(|r| (f64::from(r) + 1.0).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        *cdf.last_mut().unwrap() = 1.0; // absorb rounding
        ZipfCells {
            cdf,
            cell_width: (DOMAIN_MAX + 1) / i64::from(cells),
            mask: u64::from(cells) - 1,
        }
    }

    /// Draws one position in `[0, DOMAIN_MAX]`.
    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        // Fixed odd multiplier: a bijection on the power-of-two cell
        // index space, scattering popular ranks across the domain.
        let cell = ((rank as u64).wrapping_mul(0x9E37_79B1) & self.mask) as i64;
        cell * self.cell_width + rng.gen_range(0..self.cell_width)
    }

    /// The domain slice (cell index) a rank maps to — exposed so tests
    /// and figures can locate the hot cells.
    pub fn cell_of_rank(&self, rank: u32) -> u32 {
        (u64::from(rank).wrapping_mul(0x9E37_79B1) & self.mask) as u32
    }
}

pub(crate) fn sample_duration(d: &DurationDist, rng: &mut StdRng) -> i64 {
    match *d {
        DurationDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        DurationDist::Exponential { mean } => {
            if mean <= 0.0 {
                0
            } else {
                rand_distr_exp(mean).sample(rng) as i64
            }
        }
    }
}

/// Exponential distribution with the given mean, via inverse transform.
/// (Avoids pulling in `rand_distr`; two lines suffice.)
pub(crate) struct ExpDist {
    mean: f64,
}

pub(crate) fn rand_distr_exp(mean: f64) -> ExpDist {
    ExpDist { mean }
}

impl Distribution<f64> for ExpDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = d1(1000, 2000);
        assert_eq!(spec.generate(42), spec.generate(42));
        assert_ne!(spec.generate(42), spec.generate(43));
    }

    #[test]
    fn bounds_stay_in_domain() {
        for spec in [d1(5000, 2000), d2(5000, 2000), d3(5000, 2000), d4(5000, 2000)] {
            for (l, u) in spec.generate(7) {
                assert!(l >= 0 && u <= DOMAIN_MAX && l <= u, "{}: ({l}, {u})", spec.name);
            }
        }
    }

    #[test]
    fn uniform_duration_mean_is_d() {
        let spec = d1(20_000, 2000);
        let data = spec.generate(1);
        let mean: f64 = data.iter().map(|(l, u)| (u - l) as f64).sum::<f64>() / data.len() as f64;
        assert!((mean - 2000.0).abs() < 100.0, "mean duration {mean} != ~2000");
    }

    #[test]
    fn exponential_duration_mean_is_d() {
        let spec = d2(40_000, 2000);
        let data = spec.generate(2);
        let mean: f64 = data.iter().map(|(l, u)| (u - l) as f64).sum::<f64>() / data.len() as f64;
        // Clamping at the domain edge biases slightly low.
        assert!((mean - 2000.0).abs() < 150.0, "mean duration {mean} != ~2000");
    }

    #[test]
    fn poisson_starts_are_sorted_and_span_domain() {
        let spec = d3(10_000, 2000);
        let data = spec.generate(3);
        let starts: Vec<i64> = data.iter().map(|&(l, _)| l).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "arrival order");
        assert!(*starts.last().unwrap() > DOMAIN_MAX / 2, "process spans the domain");
    }

    #[test]
    fn restricted_d3_respects_min_length() {
        for min_len in [0, 500, 1000, 1500] {
            let spec = restricted_d3(2000, min_len);
            let data = spec.generate(4);
            for (l, u) in &data {
                let len = u - l;
                // Clamping at the domain edge may shorten a handful.
                if *u < DOMAIN_MAX {
                    assert!(len >= min_len && len <= 4000 - min_len, "len {len}");
                }
            }
            assert!((spec.mean_duration() - 2000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_generation_is_deterministic_and_in_domain() {
        let spec = zipf(5000, 2000, 1.0);
        assert_eq!(spec.generate(42), spec.generate(42));
        assert_ne!(spec.generate(42), spec.generate(43));
        for (l, u) in spec.generate(7) {
            assert!(l >= 0 && u <= DOMAIN_MAX && l <= u, "({l}, {u})");
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        // Count draws per cell at increasing skew: the top cell's share
        // must grow monotonically, and s=0 must look uniform.
        let shares: Vec<f64> = [0.0, 0.5, 1.0, 1.5]
            .map(|s| {
                let z = ZipfCells::new(s, 64);
                let mut rng = StdRng::seed_from_u64(9);
                let mut counts = [0u32; 64];
                for _ in 0..20_000 {
                    counts[(z.sample(&mut rng) / z.cell_width) as usize] += 1;
                }
                f64::from(*counts.iter().max().unwrap()) / 20_000.0
            })
            .to_vec();
        assert!(shares.windows(2).all(|w| w[0] < w[1]), "shares {shares:?} must increase");
        assert!(shares[0] < 0.03, "s=0 top-cell share {} should be ~1/64", shares[0]);
        assert!(shares[2] > 0.15, "s=1 top-cell share {} should dominate", shares[2]);
    }

    #[test]
    fn zipf_hot_cell_matches_rank_mapping() {
        let z = ZipfCells::new(1.5, 64);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 64];
        for _ in 0..20_000 {
            counts[(z.sample(&mut rng) / z.cell_width) as usize] += 1;
        }
        let hottest =
            counts.iter().enumerate().max_by_key(|&(_, c)| c).map(|(i, _)| i as u32).unwrap();
        assert_eq!(hottest, z.cell_of_rank(0), "rank 0 must land in the hottest cell");
    }

    #[test]
    fn points_occur_with_zero_min_duration() {
        // "each data distribution of Table 1 contains intervals with
        // length 0 (i.e. points)" — Section 6.1. P(len = 0) = 1/4001
        // per interval, so a 20,000-interval draw misses points with
        // probability ~e^-5 ≈ 0.7%; across 4 independent seeds the
        // chance all miss is ~(e^-5)^4 ≈ 2·10^-9.
        let points = (0..4).flat_map(|seed| d1(20_000, 2000).generate(seed)).any(|(l, u)| l == u);
        assert!(points, "no points generated across 4 seeds");
    }
}
