//! Selectivity-calibrated query workloads.

use crate::spec::{WorkloadSpec, DOMAIN_MAX};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Query length that yields an expected selectivity `sel` against `spec`.
///
/// A query `[q, q + L]` intersects an interval of length `len` starting
/// uniformly in the domain with probability `(L + len + 1) / domain`;
/// solving `E[hits] = sel · n` for `L` gives
/// `L = sel · domain − mean_duration − 1`, floored at 0 (at that point the
/// selectivity is dominated by the data's own durations and only point
/// queries are possible).
pub fn query_length_for_selectivity(spec: &WorkloadSpec, sel: f64) -> i64 {
    let domain = (DOMAIN_MAX + 1) as f64;
    ((sel * domain - spec.mean_duration() - 1.0).round() as i64).max(0)
}

/// Generates `count` query intervals with expected selectivity `sel`,
/// start-compatible with `spec` (Section 6.3's methodology).  A Zipf
/// spec yields Zipf-skewed queries — the hot-tier experiment's stream.
pub fn queries_for_selectivity(
    spec: &WorkloadSpec,
    sel: f64,
    count: usize,
    seed: u64,
) -> Vec<(i64, i64)> {
    let len = query_length_for_selectivity(spec, sel);
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = spec.start_sampler();
    (0..count)
        .map(|_| {
            let start = sampler.sample(&mut rng).min(DOMAIN_MAX - len);
            (start.max(0), (start.max(0) + len).min(DOMAIN_MAX))
        })
        .collect()
}

/// The Figure 17 "sweeping point query": point queries at increasing
/// distance from the upper bound of the data space.
pub fn sweep_points(count: usize, max_distance: i64) -> Vec<i64> {
    let step = max_distance / count.max(1) as i64;
    (0..count as i64).map(|i| DOMAIN_MAX - i * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{d1, d4, zipf};

    #[test]
    fn length_scales_with_selectivity() {
        let spec = d1(100_000, 2000);
        let l1 = query_length_for_selectivity(&spec, 0.005);
        let l2 = query_length_for_selectivity(&spec, 0.03);
        assert!(l1 > 0 && l2 > l1);
        // 3% of 2^20 is ~31k; minus the mean duration of 2000.
        assert!((l2 - (0.03 * 1_048_576.0 - 2001.0) as i64).abs() <= 1);
    }

    #[test]
    fn achieved_selectivity_is_close_to_target() {
        let spec = d4(30_000, 2000);
        let data = spec.generate(11);
        let queries = queries_for_selectivity(&spec, 0.01, 50, 12);
        let mut total_hits = 0usize;
        for &(ql, qu) in &queries {
            total_hits += data.iter().filter(|&&(l, u)| l <= qu && ql <= u).count();
        }
        let achieved = total_hits as f64 / (queries.len() * data.len()) as f64;
        assert!(
            (achieved - 0.01).abs() < 0.004,
            "achieved selectivity {achieved:.4} too far from 1%"
        );
    }

    #[test]
    fn queries_stay_in_domain() {
        let spec = d1(1000, 2000);
        for (l, u) in queries_for_selectivity(&spec, 0.03, 200, 5) {
            assert!(l >= 0 && u <= DOMAIN_MAX && l <= u);
        }
    }

    #[test]
    fn sweep_descends_from_domain_top() {
        let pts = sweep_points(5, 200_000);
        assert_eq!(pts[0], DOMAIN_MAX);
        assert!(pts.windows(2).all(|w| w[0] > w[1]));
        assert!(*pts.last().unwrap() >= DOMAIN_MAX - 200_000);
    }

    #[test]
    fn zipf_spec_yields_skewed_queries() {
        let spec = zipf(100_000, 2000, 1.0);
        let queries = queries_for_selectivity(&spec, 0.005, 2000, 8);
        let width = (DOMAIN_MAX + 1) / 64;
        let mut counts = [0u32; 64];
        for &(l, _) in &queries {
            counts[(l / width) as usize] += 1;
        }
        let top = f64::from(*counts.iter().max().unwrap()) / queries.len() as f64;
        assert!(top > 0.15, "top-cell query share {top} not skewed");
    }

    #[test]
    fn zero_selectivity_gives_point_queries() {
        let spec = d1(1000, 2000);
        assert_eq!(query_length_for_selectivity(&spec, 0.0), 0);
        let qs = queries_for_selectivity(&spec, 0.0, 10, 3);
        assert!(qs.iter().all(|(l, u)| l == u));
    }
}
