//! Table 1 workloads: the paper's interval data distributions D1–D4.
//!
//! | Name | Starting point | Duration |
//! |------|----------------|----------|
//! | D1(n,d) | uniform in [0, 2^20 − 1] | uniform in [0, 2d] |
//! | D2(n,d) | uniform in [0, 2^20 − 1] | exponential, mean d |
//! | D3(n,d) | Poisson process over [0, 2^20 − 1] | uniform in [0, 2d] |
//! | D4(n,d) | Poisson process over [0, 2^20 − 1] | exponential, mean d |
//!
//! "For the distributions D3 and D4, we assume transaction time or valid
//! time intervals where the arrival of temporal tuples follows a Poisson
//! process.  Thus the inter-arrival time is distributed exponentially."
//! (Section 6.1.)  All bounding points are clamped into `[0, 2^20 − 1]`.
//!
//! Queries are generated "following a distribution which is compatible to
//! the respective interval database" (Section 6.3): query starting points
//! use the dataset's start distribution and query durations are sized for a
//! target *selectivity* — the fraction of the database a query intersects.
//!
//! Beyond Table 1, [`zipf`] adds a Zipf-skewed start distribution
//! ([`spec::ZipfCells`]) for the hot-tier experiments: the paper's
//! workloads are uniform, but a read-through cache is only interesting
//! under skew.

pub mod query;
pub mod spec;
pub mod stream;

pub use query::{queries_for_selectivity, query_length_for_selectivity, sweep_points};
pub use spec::{DurationDist, StartDist, StartSampler, WorkloadSpec, ZipfCells, DOMAIN_MAX};
pub use stream::IntervalStream;

pub use spec::{d1, d2, d3, d4, restricted_d3, zipf};
