//! Streaming interval generation: seeded workloads one interval at a
//! time, for datasets too large to materialize.
//!
//! [`WorkloadSpec::generate`] returns a `Vec` — fine at the paper's
//! scale (a few hundred thousand intervals), wasteful beyond it.
//! [`WorkloadSpec::stream`] yields the same distribution families
//! (Table 1's D1–D4 and the Figure 15 variant) as a seeded iterator in
//! `O(1)` memory, so a ten-million-interval build feeds the bulk
//! loader without ever holding the dataset.
//!
//! Determinism: a stream is fully determined by `(spec, seed)` — two
//! streams with the same parameters yield identical sequences, and a
//! [`Clone`] of a partially consumed stream replays its remainder.
//! Note that `stream(seed)` and `generate(seed)` draw from the shared
//! generator in different orders (the streaming form interleaves each
//! interval's start and duration draw, the materializing form draws
//! all starts first), so the two sequences differ for the same seed
//! even though both follow the spec's distributions.

use crate::spec::{
    rand_distr_exp, sample_duration, StartDist, WorkloadSpec, ZipfCells, DOMAIN_MAX,
};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, exact-size iterator of `(lower, upper)` interval bounds
/// following a [`WorkloadSpec`]'s distributions — see the module docs.
///
/// Created by [`WorkloadSpec::stream`].
#[derive(Clone, Debug)]
pub struct IntervalStream {
    rng: StdRng,
    remaining: usize,
    start: StartDist,
    duration: crate::spec::DurationDist,
    /// Poisson arrival clock: the last start emitted (the process is
    /// sorted by construction, which suits the bulk loader).
    arrival: f64,
    /// Mean inter-arrival gap of the Poisson process.
    mean_gap: f64,
    /// Prebuilt popularity table for Zipf starts — the one `O(cells)`
    /// piece of state a skewed stream carries.
    zipf: Option<ZipfCells>,
}

impl WorkloadSpec {
    /// Streams the workload's `(lower, upper)` pairs deterministically
    /// from `seed` without materializing them; all bounding points lie
    /// in `[0, 2^20 − 1]` exactly as with [`WorkloadSpec::generate`].
    ///
    /// ```
    /// use ri_workloads::{d4, DOMAIN_MAX};
    ///
    /// // A million Poisson-arrival intervals in O(1) memory.
    /// let spec = d4(1_000_000, 2000);
    /// let mut count = 0u64;
    /// let mut prev_lower = 0;
    /// for (lower, upper) in spec.stream(42) {
    ///     assert!(prev_lower <= lower, "Poisson starts arrive in order");
    ///     assert!(lower <= upper && upper <= DOMAIN_MAX);
    ///     prev_lower = lower;
    ///     count += 1;
    /// }
    /// assert_eq!(count, 1_000_000);
    /// // Same (spec, seed) ⇒ same stream.
    /// assert_eq!(spec.stream(42).take(3).collect::<Vec<_>>(),
    ///            spec.stream(42).take(3).collect::<Vec<_>>());
    /// ```
    pub fn stream(&self, seed: u64) -> IntervalStream {
        IntervalStream {
            rng: StdRng::seed_from_u64(seed),
            remaining: self.n,
            start: self.start,
            duration: self.duration,
            arrival: 0.0,
            mean_gap: (DOMAIN_MAX as f64) / (self.n.max(1) as f64),
            zipf: match self.start {
                StartDist::Zipf { s, cells } => Some(ZipfCells::new(s, cells)),
                _ => None,
            },
        }
    }
}

impl Iterator for IntervalStream {
    type Item = (i64, i64);

    fn next(&mut self) -> Option<(i64, i64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let s = match self.start {
            StartDist::Uniform => self.rng.gen_range(0..=DOMAIN_MAX),
            StartDist::Zipf { .. } => {
                self.zipf.as_ref().expect("built with the spec").sample(&mut self.rng)
            }
            StartDist::Poisson => {
                self.arrival += rand_distr_exp(self.mean_gap).sample(&mut self.rng);
                (self.arrival as i64).min(DOMAIN_MAX)
            }
        };
        let len = sample_duration(&self.duration, &mut self.rng);
        Some((s, (s + len).min(DOMAIN_MAX)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IntervalStream {}

#[cfg(test)]
mod tests {
    use crate::spec::{d1, d2, d3, d4, zipf, DOMAIN_MAX};

    #[test]
    fn streams_are_deterministic_and_exactly_sized() {
        let spec = d2(10_000, 2000);
        let a: Vec<_> = spec.stream(9).collect();
        let b: Vec<_> = spec.stream(9).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10_000);
        assert_ne!(a, spec.stream(10).collect::<Vec<_>>());
        let mut s = spec.stream(9);
        assert_eq!(s.len(), 10_000);
        s.next();
        assert_eq!(s.len(), 9_999);
    }

    #[test]
    fn a_cloned_stream_replays_the_remainder() {
        let mut s = d4(5_000, 2000).stream(3);
        for _ in 0..2_000 {
            s.next();
        }
        let replay = s.clone();
        assert_eq!(s.collect::<Vec<_>>(), replay.collect::<Vec<_>>());
    }

    #[test]
    fn zipf_streams_are_deterministic_and_skewed() {
        let spec = zipf(20_000, 2000, 1.0);
        let a: Vec<_> = spec.stream(4).collect();
        assert_eq!(a, spec.stream(4).collect::<Vec<_>>());
        assert_eq!(a.len(), 20_000);
        // The hottest 1/64th slice must hold far more than 1/64 ≈ 1.6%.
        let width = (DOMAIN_MAX + 1) / 64;
        let mut counts = [0u32; 64];
        for &(l, _) in &a {
            counts[(l / width) as usize] += 1;
        }
        let top = f64::from(*counts.iter().max().unwrap()) / a.len() as f64;
        assert!(top > 0.15, "top-cell share {top} not skewed");
    }

    #[test]
    fn stream_bounds_stay_in_domain() {
        for spec in
            [d1(5000, 2000), d2(5000, 2000), d3(5000, 2000), d4(5000, 2000), zipf(5000, 2000, 1.0)]
        {
            for (l, u) in spec.stream(7) {
                assert!(l >= 0 && u <= DOMAIN_MAX && l <= u, "{}: ({l}, {u})", spec.name);
            }
        }
    }

    #[test]
    fn stream_matches_the_materializing_generator_statistically() {
        // Not item-for-item (the draw order differs; module docs) but
        // the distributions must agree: compare mean durations and the
        // Poisson process's span.
        let spec = d3(20_000, 2000);
        let streamed: Vec<_> = spec.stream(5).collect();
        let mean: f64 =
            streamed.iter().map(|(l, u)| (u - l) as f64).sum::<f64>() / streamed.len() as f64;
        assert!((mean - 2000.0).abs() < 100.0, "mean duration {mean} != ~2000");
        let starts: Vec<i64> = streamed.iter().map(|&(l, _)| l).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "arrival order");
        assert!(*starts.last().unwrap() > DOMAIN_MAX / 2, "process spans the domain");
    }
}
