//! HINT: a hierarchical main-memory interval index (Christodoulou,
//! Bouros & Mamoulis; see PAPERS.md).
//!
//! The domain `[offset, offset + 2^m)` is partitioned hierarchically:
//! level `l` (`0 <= l <= m`) divides it into `2^l` equal partitions.
//! Every stored interval is decomposed into its *canonical prefix
//! blocks* — the at-most-two maximal partitions per level that tile it
//! exactly (the iterative segment-tree cover).  Within a partition the
//! intervals split into **originals** (the one block of the tiling that
//! contains the interval's lower bound) and **replicas** (every other
//! block), the paper's `O`/`R` split.
//!
//! The split buys *comparison-free* queries on this discrete domain:
//!
//! * **Stabbing** `p`: walk the one partition per level whose range
//!   contains `p` and report everything in it.  Every interval stored
//!   there covers its whole partition, hence `p` — no endpoint is ever
//!   compared, and the tiling's disjointness means no duplicates.
//! * **Intersection** `[ql, qu]`: per level, report the *first*
//!   relevant partition (the one containing `ql`) in full and only the
//!   originals of the partitions strictly after it up to the one
//!   containing `qu`.  Each result surfaces exactly once (originals are
//!   unique, and at most one tiling block can contain `ql`), again
//!   without a single endpoint comparison.
//!
//! Partitions live in per-level `BTreeMap`s keyed by partition index,
//! so only non-empty partitions cost memory and the per-level range
//! scan visits exactly the relevant non-empty ones.  Updates are O(log)
//! — an insert or delete touches just the interval's own blocks — which
//! is what lets the hot tier in `ritree-core` keep a HINT coherent
//! under concurrent DML.
//!
//! Space: an interval of length `L` owns at most two blocks on each of
//! the bottom `log2(L) + 2` levels, so replication is `O(log L)` per
//! interval (cf. [`HintIndex::replica_count`]), not `O(log domain)`.

use crate::index::QueryCost;
use std::collections::BTreeMap;

/// One partition's interval lists (the paper's `O`/`R` split).
#[derive(Debug, Default)]
struct Partition {
    /// Intervals whose tiling *starts* here (block contains `lower`).
    originals: Vec<(i64, i64, i64)>,
    /// Intervals tiled through here from an earlier block.
    replicas: Vec<(i64, i64, i64)>,
}

impl Partition {
    fn is_empty(&self) -> bool {
        self.originals.is_empty() && self.replicas.is_empty()
    }
}

/// Hierarchical interval index over a fixed discrete domain.
///
/// Stores `(lower, upper, id)` triples of `i64` with closed-interval
/// semantics, like every structure in this crate.  Unlike its static
/// siblings the HINT is dynamic — [`HintIndex::insert`] and
/// [`HintIndex::delete`] are native `O(log)` operations — but the
/// domain is fixed at construction: endpoints must lie inside it.
#[derive(Debug)]
pub struct HintIndex {
    /// Lowest domain value.
    offset: i64,
    /// Bottom level: the domain spans `2^m` values, level `l` has `2^l`
    /// partitions of width `2^(m-l)`.
    m: u32,
    /// `levels[l]`: partition index → partition, non-empty only.
    levels: Vec<BTreeMap<u64, Partition>>,
    len: usize,
    replicas: usize,
}

impl HintIndex {
    /// An empty index over the domain `[offset, offset + 2^bits)`.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or exceeds 40 (the hierarchy is dense in
    /// levels, not partitions, so 2^40 values cost nothing — but the
    /// guard keeps `offset + 2^bits` comfortably inside `i64`).
    pub fn new(offset: i64, bits: u32) -> HintIndex {
        assert!((1..=40).contains(&bits), "domain bits {bits} out of range 1..=40");
        assert!(
            offset.checked_add(1i64 << bits).is_some(),
            "domain [{offset}, {offset} + 2^{bits}) overflows i64"
        );
        HintIndex {
            offset,
            m: bits,
            levels: (0..=bits).map(|_| BTreeMap::new()).collect(),
            len: 0,
            replicas: 0,
        }
    }

    /// Builds an index from `(lower, upper, id)` triples, sizing the
    /// domain to the data's extent (empty input gets `[0, 2)`).
    ///
    /// # Panics
    /// Panics if any triple has `lower > upper`.
    pub fn build(items: &[(i64, i64, i64)]) -> HintIndex {
        let Some(min) = items.iter().map(|&(l, _, _)| l).min() else {
            return HintIndex::new(0, 1);
        };
        let max = items.iter().map(|&(_, u, _)| u).max().unwrap();
        let span = (max - min + 1) as u64;
        let bits = (64 - span.leading_zeros()).clamp(1, 40);
        let mut index = HintIndex::new(min, bits);
        for &(l, u, id) in items {
            index.insert(l, u, id);
        }
        index
    }

    /// The inclusive domain `[lower, upper]` this index covers.
    pub fn domain(&self) -> (i64, i64) {
        (self.offset, self.offset + (1i64 << self.m) - 1)
    }

    /// Number of hierarchy levels (`m + 1`).
    pub fn level_count(&self) -> usize {
        self.m as usize + 1
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total replica registrations — the space the prefix decomposition
    /// pays over one entry per interval (`O(log length)` each).
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// Inserts `(lower, upper, id)`.
    ///
    /// # Panics
    /// Panics if `lower > upper` or the interval leaves the domain.
    pub fn insert(&mut self, lower: i64, upper: i64, id: i64) {
        let (a, b) = self.to_domain(lower, upper);
        let mut blocks = 0usize;
        for_each_block(self.m, a, b, |level, idx, original| {
            let p = self.levels[level as usize].entry(idx).or_default();
            if original {
                p.originals.push((lower, upper, id));
            } else {
                p.replicas.push((lower, upper, id));
            }
            blocks += 1;
        });
        self.len += 1;
        self.replicas += blocks - 1;
    }

    /// Removes one exact `(lower, upper, id)` occurrence from every
    /// block of its decomposition; `false` if the triple is not stored.
    ///
    /// # Panics
    /// Panics if `lower > upper` or the interval leaves the domain.
    pub fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool {
        let (a, b) = self.to_domain(lower, upper);
        let t = (lower, upper, id);
        // Presence check on the original block alone: every stored copy
        // registers its original exactly once.
        let mut present = false;
        for_each_block(self.m, a, b, |level, idx, original| {
            if original {
                present =
                    self.levels[level as usize].get(&idx).is_some_and(|p| p.originals.contains(&t));
            }
        });
        if !present {
            return false;
        }
        let mut blocks = 0usize;
        for_each_block(self.m, a, b, |level, idx, original| {
            let map = &mut self.levels[level as usize];
            let p = map.get_mut(&idx).expect("present triple registers every block");
            let list = if original { &mut p.originals } else { &mut p.replicas };
            let pos = list.iter().position(|&x| x == t).expect("registered copy");
            list.swap_remove(pos);
            if p.is_empty() {
                map.remove(&idx);
            }
            blocks += 1;
        });
        self.len -= 1;
        self.replicas -= blocks - 1;
        true
    }

    /// Sorted ids of intervals containing `p` — the comparison-free
    /// fast path: one partition per level, reported verbatim.
    pub fn stab(&self, p: i64) -> Vec<i64> {
        let (lo, hi) = self.domain();
        if p < lo || p > hi || self.len == 0 {
            return Vec::new();
        }
        let pa = (p - self.offset) as u64;
        let mut out = Vec::new();
        for (l, map) in self.levels.iter().enumerate() {
            if let Some(part) = map.get(&(pa >> (self.m - l as u32))) {
                out.extend(part.originals.iter().map(|&(_, _, id)| id));
                out.extend(part.replicas.iter().map(|&(_, _, id)| id));
            }
        }
        out.sort_unstable();
        out
    }

    /// Sorted ids of intervals intersecting `[ql, qu]` (closed).
    pub fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        self.intersection_with_cost(ql, qu).0
    }

    /// [`HintIndex::intersection`] plus its work counters.  The
    /// `comparisons` counter is always zero — the structural claim the
    /// `fig23_hot_tier` experiment prices against the interval tree.
    pub fn intersection_with_cost(&self, ql: i64, qu: i64) -> (Vec<i64>, QueryCost) {
        let mut cost = QueryCost::default();
        let mut out = Vec::new();
        self.scan(ql, qu, &mut cost, |&(_, _, id)| out.push(id));
        out.sort_unstable();
        (out, cost)
    }

    /// The stored `(lower, upper, id)` triples intersecting `[ql, qu]`,
    /// in traversal order — each exactly once.  The hot tier's eviction
    /// path uses this to find a block's cached entries.
    pub fn intersecting_triples(&self, ql: i64, qu: i64) -> Vec<(i64, i64, i64)> {
        let mut cost = QueryCost::default();
        let mut out = Vec::new();
        self.scan(ql, qu, &mut cost, |&t| out.push(t));
        out
    }

    /// The exactly-once relevant-partition walk shared by the query
    /// paths: per level, the whole first relevant partition plus the
    /// originals of the rest.
    fn scan(&self, ql: i64, qu: i64, cost: &mut QueryCost, mut emit: impl FnMut(&(i64, i64, i64))) {
        assert!(ql <= qu, "invalid query [{ql}, {qu}]");
        let (lo, hi) = self.domain();
        let (ql, qu) = (ql.max(lo), qu.min(hi));
        if ql > qu || self.len == 0 {
            return; // entirely outside the domain, hence the data
        }
        let qa = (ql - self.offset) as u64;
        let qb = (qu - self.offset) as u64;
        for (l, map) in self.levels.iter().enumerate() {
            if map.is_empty() {
                continue;
            }
            let shift = self.m - l as u32;
            let first = qa >> shift;
            let last = qb >> shift;
            if let Some(p) = map.get(&first) {
                cost.nodes += 1;
                cost.entries += (p.originals.len() + p.replicas.len()) as u64;
                p.originals.iter().for_each(&mut emit);
                p.replicas.iter().for_each(&mut emit);
            }
            if last > first {
                for (_, p) in map.range(first + 1..=last) {
                    cost.nodes += 1;
                    cost.entries += p.originals.len() as u64;
                    p.originals.iter().for_each(&mut emit);
                }
            }
        }
    }

    /// Maps a closed interval into domain units, validating bounds.
    fn to_domain(&self, lower: i64, upper: i64) -> (u64, u64) {
        assert!(lower <= upper, "invalid interval [{lower}, {upper}]");
        let (lo, hi) = self.domain();
        assert!(
            lower >= lo && upper <= hi,
            "interval [{lower}, {upper}] outside the domain [{lo}, {hi}]"
        );
        ((lower - self.offset) as u64, (upper - self.offset) as u64)
    }
}

/// Canonical prefix decomposition of `[lo, hi]` (inclusive, in domain
/// units) over an `m`-level hierarchy: calls `f(level, index, original)`
/// for each maximal block, at most two per level, tiling the interval
/// exactly.  `original` marks the one block containing `lo`.
fn for_each_block(m: u32, lo: u64, hi: u64, mut f: impl FnMut(u32, u64, bool)) {
    let mut a = lo;
    let mut b = hi + 1; // half-open
    let mut level = m;
    while a < b {
        if a & 1 == 1 {
            f(level, a, lo >> (m - level) == a);
            a += 1;
        }
        if b & 1 == 1 {
            b -= 1;
            f(level, b, lo >> (m - level) == b);
        }
        a >>= 1;
        b >>= 1;
        if level == 0 {
            break;
        }
        level -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIntervalSet;

    fn pseudo_items(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 4000) as i64;
                let len = ((x >> 32) % 400) as i64;
                (l, (l + len).min(4095), i as i64)
            })
            .collect()
    }

    #[test]
    fn empty_index() {
        let h = HintIndex::build(&[]);
        assert!(h.is_empty());
        assert_eq!(h.stab(0), Vec::<i64>::new());
        assert_eq!(h.intersection(-100, 100), Vec::<i64>::new());
    }

    #[test]
    fn decomposition_tiles_exactly() {
        // Every decomposition must tile the interval: disjoint blocks,
        // exact cover, exactly one original (the block containing lo).
        for (lo, hi) in [(0, 0), (0, 31), (3, 17), (5, 5), (1, 30), (16, 16), (0, 30), (7, 24)] {
            let mut covered = [false; 32];
            let mut originals = 0;
            for_each_block(5, lo, hi, |level, idx, original| {
                let width = 1u64 << (5 - level);
                for v in idx * width..(idx + 1) * width {
                    assert!(!covered[v as usize], "block overlap at {v} for [{lo}, {hi}]");
                    covered[v as usize] = true;
                }
                if original {
                    assert!((idx * width..(idx + 1) * width).contains(&lo));
                    originals += 1;
                }
            });
            for v in 0..32u64 {
                assert_eq!(covered[v as usize], (lo..=hi).contains(&v), "cover at {v}");
            }
            assert_eq!(originals, 1, "[{lo}, {hi}] must have exactly one original block");
        }
    }

    #[test]
    fn matches_naive_on_random_data() {
        let items = pseudo_items(1200, 0x51AB);
        let h = HintIndex::build(&items);
        let naive = NaiveIntervalSet::from_triples(items.iter().copied());
        for (ql, qu) in [(0, 4095), (100, 180), (2000, 2000), (-50, 60), (4000, 9000), (1, 4094)] {
            assert_eq!(h.intersection(ql, qu), naive.intersection(ql, qu), "[{ql}, {qu}]");
        }
        for p in (-5..4200).step_by(31) {
            assert_eq!(h.stab(p), naive.stab(p), "stab {p}");
        }
    }

    #[test]
    fn queries_are_comparison_free() {
        let items = pseudo_items(800, 0xC0);
        let h = HintIndex::build(&items);
        for (ql, qu) in [(0, 4095), (700, 900), (1234, 1234)] {
            let (ids, cost) = h.intersection_with_cost(ql, qu);
            assert_eq!(cost.comparisons, 0, "HINT never compares endpoints");
            assert_eq!(cost.entries, ids.len() as u64, "every touched entry is a result");
        }
    }

    #[test]
    fn dynamic_updates_match_naive() {
        let mut h = HintIndex::new(0, 12);
        let mut naive = NaiveIntervalSet::new();
        let items = pseudo_items(600, 0xDE13);
        for &(l, u, id) in &items {
            h.insert(l, u, id);
            naive.insert(l, u, id);
        }
        for (i, &(l, u, id)) in items.iter().enumerate() {
            if i % 3 == 0 {
                assert!(h.delete(l, u, id));
                assert!(naive.delete(l, u, id));
            }
        }
        assert_eq!(h.len(), naive.len());
        for p in (0..4200).step_by(53) {
            assert_eq!(h.stab(p), naive.stab(p), "stab {p}");
        }
        assert_eq!(h.intersection(0, 4095), naive.intersection(0, 4095));
        assert!(!h.delete(0, 1, -99), "absent triple");
    }

    #[test]
    fn delete_everything_empties_every_partition() {
        let items = pseudo_items(300, 7);
        let mut h = HintIndex::build(&items);
        for &(l, u, id) in &items {
            assert!(h.delete(l, u, id));
        }
        assert!(h.is_empty());
        assert_eq!(h.replica_count(), 0);
        assert!(h.levels.iter().all(BTreeMap::is_empty), "no partition may linger");
    }

    #[test]
    fn duplicates_are_a_multiset() {
        let mut h = HintIndex::new(0, 8);
        h.insert(3, 9, 7);
        h.insert(3, 9, 7);
        assert_eq!(h.stab(5), vec![7, 7]);
        assert!(h.delete(3, 9, 7));
        assert_eq!(h.stab(5), vec![7]);
    }

    #[test]
    fn boundary_touching_and_full_domain() {
        let mut h = HintIndex::new(0, 10);
        h.insert(0, 1023, 1); // full domain
        h.insert(0, 0, 2);
        h.insert(1023, 1023, 3);
        h.insert(100, 200, 4);
        assert_eq!(h.intersection(0, 0), vec![1, 2]);
        assert_eq!(h.intersection(1023, 1023), vec![1, 3]);
        assert_eq!(h.intersection(200, 200), vec![1, 4], "closed upper endpoint");
        assert_eq!(h.intersection(201, 1022), vec![1]);
        assert_eq!(h.intersection(0, 1023), vec![1, 2, 3, 4]);
    }

    #[test]
    fn replication_is_logarithmic_in_length() {
        let items = pseudo_items(2000, 0xACE);
        let h = HintIndex::build(&items);
        let per_interval = h.replica_count() as f64 / items.len() as f64;
        // lengths < 400 ⇒ at most ~2·log2(400) blocks each.
        assert!(per_interval < 2.0 * 9.0, "replicas per interval {per_interval}");
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn rejects_out_of_domain() {
        HintIndex::new(0, 8).insert(-1, 5, 0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_reversed_bounds() {
        HintIndex::new(0, 8).insert(5, 1, 0);
    }

    #[test]
    fn negative_offset_domain() {
        let items = vec![(-100, -50, 1), (-60, 20, 2), (10, 30, 3)];
        let h = HintIndex::build(&items);
        let naive = NaiveIntervalSet::from_triples(items);
        for (ql, qu) in [(-55, -52), (0, 9), (15, 100), (25, 100), (-200, 200)] {
            assert_eq!(h.intersection(ql, qu), naive.intersection(ql, qu), "[{ql}, {qu}]");
        }
    }
}
