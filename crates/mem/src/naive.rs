//! Brute-force interval multiset: the correctness oracle.

/// A brute-force interval collection with linear-time queries.
///
/// Every query method is a straightforward filter over a `Vec`, making this
/// the ground truth the property tests compare all indexed access methods
/// against.
#[derive(Clone, Debug, Default)]
pub struct NaiveIntervalSet {
    items: Vec<(i64, i64, i64)>,
}

impl NaiveIntervalSet {
    /// An empty set.
    pub fn new() -> NaiveIntervalSet {
        NaiveIntervalSet::default()
    }

    /// Builds from `(lower, upper, id)` triples.
    pub fn from_triples(items: impl IntoIterator<Item = (i64, i64, i64)>) -> NaiveIntervalSet {
        NaiveIntervalSet { items: items.into_iter().collect() }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `(lower, upper, id)`.
    ///
    /// # Panics
    /// Panics if `lower > upper`.
    pub fn insert(&mut self, lower: i64, upper: i64, id: i64) {
        assert!(lower <= upper, "invalid interval [{lower}, {upper}]");
        self.items.push((lower, upper, id));
    }

    /// Removes the first exact `(lower, upper, id)` occurrence.
    pub fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool {
        if let Some(pos) = self.items.iter().position(|&t| t == (lower, upper, id)) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Sorted ids of intervals intersecting `[ql, qu]` (closed semantics).
    pub fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        let mut ids: Vec<i64> = self
            .items
            .iter()
            .filter(|&&(l, u, _)| l <= qu && ql <= u)
            .map(|&(_, _, id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// [`NaiveIntervalSet::intersection`] plus its work counters: one
    /// endpoint comparison for the `l <= qu` test on every item and a
    /// second for `ql <= u` whenever the first passes — the cost model
    /// the `fig23_hot_tier` experiment prices the scan baseline with.
    pub fn intersection_with_cost(&self, ql: i64, qu: i64) -> (Vec<i64>, crate::QueryCost) {
        let mut cost = crate::QueryCost { entries: self.items.len() as u64, ..Default::default() };
        let mut ids = Vec::new();
        for &(l, u, id) in &self.items {
            cost.comparisons += 1;
            if l <= qu {
                cost.comparisons += 1;
                if ql <= u {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        (ids, cost)
    }

    /// Sorted ids of intervals containing the point `p`.
    pub fn stab(&self, p: i64) -> Vec<i64> {
        self.intersection(p, p)
    }

    /// Sorted ids of intervals satisfying an arbitrary predicate on
    /// `(lower, upper)` — used to cross-check the Allen relations.
    pub fn filter(&self, mut pred: impl FnMut(i64, i64) -> bool) -> Vec<i64> {
        let mut ids: Vec<i64> =
            self.items.iter().filter(|&&(l, u, _)| pred(l, u)).map(|&(_, _, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// All stored triples (unordered).
    pub fn triples(&self) -> &[(i64, i64, i64)] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lifecycle() {
        let mut s = NaiveIntervalSet::new();
        assert!(s.is_empty());
        s.insert(1, 5, 10);
        s.insert(3, 8, 11);
        assert_eq!(s.len(), 2);
        assert_eq!(s.intersection(5, 6), vec![10, 11]);
        assert_eq!(s.intersection(6, 9), vec![11]);
        assert_eq!(s.stab(1), vec![10]);
        assert!(s.delete(1, 5, 10));
        assert!(!s.delete(1, 5, 10));
        assert_eq!(s.intersection(0, 100), vec![11]);
    }

    #[test]
    fn duplicates_are_a_multiset() {
        let mut s = NaiveIntervalSet::new();
        s.insert(0, 1, 7);
        s.insert(0, 1, 7);
        assert_eq!(s.stab(0), vec![7, 7]);
        assert!(s.delete(0, 1, 7));
        assert_eq!(s.stab(0), vec![7]);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_reversed_bounds() {
        NaiveIntervalSet::new().insert(2, 1, 0);
    }
}
