//! Interval Skip List (Hanson & Johnson [HJ 96]), static variant.
//!
//! The paper's Section 2.1 lists the IS-list among the "more recent
//! developments" in main-memory interval structures.  A skip list is built
//! over all interval endpoints; each interval marks the *maximal* forward
//! edges its span covers (the skip-list analogue of a segment tree's
//! canonical cover) plus the nodes where its marked edges meet.  A stabbing
//! query walks the ordinary skip-list search path and collects the markers
//! of the one edge per level that spans the query point, giving
//! O(log n + r) expected time.
//!
//! This implementation is *static* (built once from a snapshot): it keeps
//! Hanson's marker-placement discipline but sidesteps the intricate marker
//! repair that dynamic endpoint insertion requires — the part of the
//! structure that motivated the authors' IBS-tree follow-up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_LEVEL: usize = 24;

/// Static interval skip list over `(lower, upper, id)` triples.
#[derive(Debug)]
pub struct IntervalSkipList {
    /// Sorted distinct endpoint values.
    values: Vec<i64>,
    /// Height (number of levels) of each node.
    heights: Vec<usize>,
    /// `forward[level][node] = next node index at that level` (or usize::MAX).
    forward: Vec<Vec<usize>>,
    /// Markers per `(level, node)` edge: interval ids covering the edge span.
    edge_markers: std::collections::HashMap<(usize, usize), Vec<i64>>,
    /// Markers per node: ids of intervals whose marked tiling touches it.
    node_markers: Vec<Vec<i64>>,
    /// `(lower, id)` sorted — for the range part of intersection queries.
    starts: Vec<(i64, i64)>,
    /// The raw input, kept so [`crate::IntervalIndex`] updates can
    /// rebuild (this structure is static; see the trait docs).
    items: Vec<(i64, i64, i64)>,
    len: usize,
}

impl IntervalSkipList {
    /// Builds the list from `(lower, upper, id)` triples.
    ///
    /// # Panics
    /// Panics if any triple has `lower > upper`.
    pub fn build(items: &[(i64, i64, i64)]) -> IntervalSkipList {
        Self::build_seeded(items, 0x15_1157)
    }

    /// [`IntervalSkipList::build`] with an explicit level-coin seed.
    pub fn build_seeded(items: &[(i64, i64, i64)], seed: u64) -> IntervalSkipList {
        let mut values: Vec<i64> = items.iter().flat_map(|&(l, u, _)| [l, u]).collect();
        values.sort_unstable();
        values.dedup();
        let n = values.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let heights: Vec<usize> = (0..n)
            .map(|_| {
                let mut h = 1;
                while h < MAX_LEVEL && rng.gen_bool(0.5) {
                    h += 1;
                }
                h
            })
            .collect();
        let top = heights.iter().copied().max().unwrap_or(1);
        // forward[lvl][i]: next node at level lvl after node i.
        let mut forward = vec![vec![usize::MAX; n]; top];
        for (lvl, fwd) in forward.iter_mut().enumerate() {
            let mut prev: Option<usize> = None;
            for (i, &h) in heights.iter().enumerate() {
                if h > lvl {
                    if let Some(p) = prev {
                        fwd[p] = i;
                    }
                    prev = Some(i);
                }
            }
        }
        let mut list = IntervalSkipList {
            values,
            heights,
            forward,
            edge_markers: Default::default(),
            node_markers: vec![Vec::new(); n],
            starts: items.iter().map(|&(l, _, id)| (l, id)).collect(),
            items: items.to_vec(),
            len: items.len(),
        };
        list.starts.sort_unstable();
        for &(l, u, id) in items {
            assert!(l <= u, "invalid interval [{l}, {u}]");
            list.place(l, u, id);
        }
        list
    }

    /// Hanson's placement: tile `[l, u]` with maximal edges (always taking
    /// the highest forward edge that stays within the interval), marking
    /// each edge and every node the tiling touches.
    fn place(&mut self, l: i64, u: i64, id: i64) {
        let mut x = self.values.binary_search(&l).expect("endpoints are nodes");
        self.node_markers[x].push(id);
        while self.values[x] < u {
            // Highest level whose forward edge from x lands within [l, u].
            let mut lvl = 0;
            for cand in (0..self.heights[x]).rev() {
                let f = self.forward[cand][x];
                if f != usize::MAX && self.values[f] <= u {
                    lvl = cand;
                    break;
                }
            }
            let f = self.forward[lvl][x];
            debug_assert!(f != usize::MAX && self.values[f] <= u, "u is a node");
            self.edge_markers.entry((lvl, x)).or_default().push(id);
            self.node_markers[f].push(id);
            x = f;
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All stored triples (unordered).
    pub fn triples(&self) -> &[(i64, i64, i64)] {
        &self.items
    }

    /// Total markers placed — O(n log n) expected, the structure's space
    /// overhead over the redundancy-free interval tree.
    pub fn marker_count(&self) -> usize {
        self.edge_markers.values().map(Vec::len).sum::<usize>()
            + self.node_markers.iter().map(Vec::len).sum::<usize>()
    }

    /// Sorted ids of intervals containing `p`.
    ///
    /// Walks the ordinary skip-list search path from the (virtual) header.
    /// At each level exactly one edge either *spans* `p` (collect its edge
    /// markers — every marked interval covers the span, hence `p`) or lands
    /// exactly on the node with value `p` (collect its node markers — the
    /// tilings passing through it — and stop: lower levels route through
    /// the node itself, so no further edge can span `p`).
    pub fn stab(&self, p: i64) -> Vec<i64> {
        if self.values.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let top = self.forward.len();
        let mut x: Option<usize> = None; // None = header, before all nodes
        'levels: for lvl in (0..top).rev() {
            loop {
                let next = match x {
                    None => self.first_at_level(lvl),
                    Some(i) => normalize(self.forward[lvl][i]),
                };
                let Some(nx) = next else { break }; // p beyond this level's chain
                if self.values[nx] < p {
                    x = Some(nx);
                    continue;
                }
                if self.values[nx] == p {
                    out.extend(self.node_markers[nx].iter().copied());
                    break 'levels;
                }
                // x < p < nx: the level's spanning edge.
                if let Some(xi) = x {
                    if let Some(marks) = self.edge_markers.get(&(lvl, xi)) {
                        out.extend(marks.iter().copied());
                    }
                }
                break;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn first_at_level(&self, lvl: usize) -> Option<usize> {
        self.heights.iter().position(|&h| h > lvl)
    }

    /// Sorted ids of intervals intersecting `[ql, qu]`: a stab at `ql` plus
    /// every interval starting inside `(ql, qu]`.
    pub fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        assert!(ql <= qu);
        let mut out = self.stab(ql);
        let from = self.starts.partition_point(|&(l, _)| l <= ql);
        let to = self.starts.partition_point(|&(l, _)| l <= qu);
        out.extend(self.starts[from..to].iter().map(|&(_, id)| id));
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[inline]
fn normalize(i: usize) -> Option<usize> {
    if i == usize::MAX {
        None
    } else {
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIntervalSet;

    fn pseudo_items(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 3000) as i64;
                let len = ((x >> 33) % 250) as i64;
                (l, l + len, i as i64)
            })
            .collect()
    }

    #[test]
    fn empty_list() {
        let sl = IntervalSkipList::build(&[]);
        assert!(sl.is_empty());
        assert_eq!(sl.stab(0), Vec::<i64>::new());
        assert_eq!(sl.intersection(-5, 5), Vec::<i64>::new());
    }

    #[test]
    fn stab_matches_naive_exhaustively() {
        let items = pseudo_items(600, 0xF00D);
        let sl = IntervalSkipList::build(&items);
        let naive = NaiveIntervalSet::from_triples(items);
        for p in -10..3300 {
            assert_eq!(sl.stab(p), naive.stab(p), "stab {p}");
        }
    }

    #[test]
    fn intersection_matches_naive() {
        let items = pseudo_items(800, 0xCAFE);
        let sl = IntervalSkipList::build(&items);
        let naive = NaiveIntervalSet::from_triples(items);
        for (ql, qu) in [(0, 3300), (100, 150), (1500, 1500), (2900, 5000), (-100, -1)] {
            assert_eq!(sl.intersection(ql, qu), naive.intersection(ql, qu), "[{ql}, {qu}]");
        }
    }

    #[test]
    fn different_coin_seeds_agree() {
        let items = pseudo_items(400, 0xBEE);
        let naive = NaiveIntervalSet::from_triples(items.clone());
        for seed in [1, 2, 3, 4, 5] {
            let sl = IntervalSkipList::build_seeded(&items, seed);
            for p in (0..3300).step_by(37) {
                assert_eq!(sl.stab(p), naive.stab(p), "seed {seed}, stab {p}");
            }
        }
    }

    #[test]
    fn point_intervals() {
        let sl = IntervalSkipList::build(&[(5, 5, 1), (5, 5, 2), (7, 9, 3)]);
        assert_eq!(sl.stab(5), vec![1, 2]);
        assert_eq!(sl.stab(6), Vec::<i64>::new());
        assert_eq!(sl.stab(8), vec![3]);
    }

    #[test]
    fn marker_count_is_quasilinear() {
        let items = pseudo_items(2000, 0xD1CE);
        let sl = IntervalSkipList::build(&items);
        let per_interval = sl.marker_count() as f64 / items.len() as f64;
        assert!(per_interval < 32.0, "markers per interval {per_interval} should be O(log n)");
    }
}
