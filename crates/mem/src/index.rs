//! The shared [`IntervalIndex`] trait over every main-memory structure.
//!
//! The figure suite used to match on each structure's inherent query
//! methods by hand; the trait gives the naive set, interval tree,
//! segment tree, interval skip list, and HINT one insert / delete /
//! stab / intersection surface, so experiments and tests can iterate a
//! `&mut dyn IntervalIndex` slice instead.
//!
//! **Update semantics.**  [`NaiveIntervalSet`] and [`HintIndex`] are
//! natively dynamic.  The other three are *static* structures (built
//! once from a snapshot — see their module docs); their trait updates
//! are implemented as a full rebuild from the retained input, which is
//! correct but `O(n)` per operation.  The trait exists for uniform
//! *querying*; don't drive a write-heavy workload through a rebuild-
//! based implementation.
//!
//! **Result semantics.**  `stab`/`intersection` return sorted ids.
//! All structures treat duplicate `(lower, upper, id)` triples as a
//! multiset except [`IntervalSkipList`], whose marker discipline
//! deduplicates ids per query — equivalence tests across all five
//! implementations should use distinct ids.

use crate::hint::HintIndex;
use crate::interval_tree::IntervalTree;
use crate::naive::NaiveIntervalSet;
use crate::segment_tree::SegmentTree;
use crate::skiplist::IntervalSkipList;

/// Work counters reported by the `*_with_cost` query variants.
///
/// The counters *simulate* cost in machine-independent units so the
/// `fig23_hot_tier` experiment is byte-stable: no wall clock, just how
/// much work each structure's query algorithm did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Interval-endpoint comparisons against stored entries — the
    /// metric HINT's comparison-free design drives to zero.
    pub comparisons: u64,
    /// Stored entries touched (scanned or reported).
    pub entries: u64,
    /// Secondary-structure nodes / partitions visited.
    pub nodes: u64,
}

/// A main-memory index over closed `(lower, upper, id)` intervals.
pub trait IntervalIndex {
    /// Short stable name for reports and figures.
    fn index_name(&self) -> &'static str;

    /// Number of stored intervals.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `(lower, upper, id)`.
    ///
    /// # Panics
    /// Panics if `lower > upper`; [`HintIndex`] additionally panics if
    /// the interval leaves its fixed domain.
    fn insert(&mut self, lower: i64, upper: i64, id: i64);

    /// Removes one exact `(lower, upper, id)` occurrence; `false` if
    /// the triple is not stored.
    fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool;

    /// Sorted ids of intervals containing `p`.
    fn stab(&self, p: i64) -> Vec<i64>;

    /// Sorted ids of intervals intersecting `[ql, qu]` (closed).
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64>;
}

impl IntervalIndex for NaiveIntervalSet {
    fn index_name(&self) -> &'static str {
        "naive"
    }
    fn len(&self) -> usize {
        NaiveIntervalSet::len(self)
    }
    fn insert(&mut self, lower: i64, upper: i64, id: i64) {
        NaiveIntervalSet::insert(self, lower, upper, id);
    }
    fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool {
        NaiveIntervalSet::delete(self, lower, upper, id)
    }
    fn stab(&self, p: i64) -> Vec<i64> {
        NaiveIntervalSet::stab(self, p)
    }
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        NaiveIntervalSet::intersection(self, ql, qu)
    }
}

impl IntervalIndex for HintIndex {
    fn index_name(&self) -> &'static str {
        "hint"
    }
    fn len(&self) -> usize {
        HintIndex::len(self)
    }
    fn insert(&mut self, lower: i64, upper: i64, id: i64) {
        HintIndex::insert(self, lower, upper, id);
    }
    fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool {
        HintIndex::delete(self, lower, upper, id)
    }
    fn stab(&self, p: i64) -> Vec<i64> {
        HintIndex::stab(self, p)
    }
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        HintIndex::intersection(self, ql, qu)
    }
}

/// Rebuild-based updates shared by the three static structures.
macro_rules! rebuild_updates {
    ($build:path) => {
        fn insert(&mut self, lower: i64, upper: i64, id: i64) {
            assert!(lower <= upper, "invalid interval [{lower}, {upper}]");
            let mut items = self.triples().to_vec();
            items.push((lower, upper, id));
            *self = $build(&items);
        }
        fn delete(&mut self, lower: i64, upper: i64, id: i64) -> bool {
            let mut items = self.triples().to_vec();
            let Some(pos) = items.iter().position(|&t| t == (lower, upper, id)) else {
                return false;
            };
            items.swap_remove(pos);
            *self = $build(&items);
            true
        }
    };
}

impl IntervalIndex for IntervalTree {
    fn index_name(&self) -> &'static str {
        "interval_tree"
    }
    fn len(&self) -> usize {
        IntervalTree::len(self)
    }
    rebuild_updates!(IntervalTree::build);
    fn stab(&self, p: i64) -> Vec<i64> {
        IntervalTree::stab(self, p)
    }
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        IntervalTree::intersection(self, ql, qu)
    }
}

impl IntervalIndex for SegmentTree {
    fn index_name(&self) -> &'static str {
        "segment_tree"
    }
    fn len(&self) -> usize {
        SegmentTree::len(self)
    }
    rebuild_updates!(SegmentTree::build);
    fn stab(&self, p: i64) -> Vec<i64> {
        SegmentTree::stab(self, p)
    }
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        SegmentTree::intersection(self, ql, qu)
    }
}

impl IntervalIndex for IntervalSkipList {
    fn index_name(&self) -> &'static str {
        "skiplist"
    }
    fn len(&self) -> usize {
        IntervalSkipList::len(self)
    }
    rebuild_updates!(IntervalSkipList::build);
    fn stab(&self, p: i64) -> Vec<i64> {
        IntervalSkipList::stab(self, p)
    }
    fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        IntervalSkipList::intersection(self, ql, qu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_items(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 1500) as i64;
                let len = ((x >> 32) % 200) as i64;
                (l, (l + len).min(2047), i as i64)
            })
            .collect()
    }

    fn all_indexes() -> Vec<Box<dyn IntervalIndex>> {
        vec![
            Box::new(NaiveIntervalSet::new()),
            Box::new(IntervalTree::build(&[])),
            Box::new(SegmentTree::build(&[])),
            Box::new(IntervalSkipList::build(&[])),
            Box::new(HintIndex::new(0, 11)), // domain [0, 2048)
        ]
    }

    #[test]
    fn all_implementations_agree_through_the_trait() {
        let items = pseudo_items(400, 0x1DE8);
        let mut indexes = all_indexes();
        for index in &mut indexes {
            for &(l, u, id) in &items {
                index.insert(l, u, id);
            }
            // Delete a third through the trait (rebuild path for the
            // static structures), including a miss.
            for &(l, u, id) in items.iter().step_by(3) {
                assert!(index.delete(l, u, id), "{}", index.index_name());
            }
            assert!(!index.delete(0, 0, -1), "{}", index.index_name());
        }
        let oracle = &indexes[0];
        for other in &indexes[1..] {
            assert_eq!(oracle.len(), other.len(), "{}", other.index_name());
            for (ql, qu) in [(0, 2047), (300, 360), (1000, 1000), (-90, 4), (1700, 5000)] {
                assert_eq!(
                    oracle.intersection(ql, qu),
                    other.intersection(ql, qu),
                    "{} [{ql}, {qu}]",
                    other.index_name()
                );
            }
            for p in (0..2048).step_by(41) {
                assert_eq!(oracle.stab(p), other.stab(p), "{} stab {p}", other.index_name());
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_indexes().iter().map(|i| i.index_name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
