//! Edelsbrunner's interval tree (static, main-memory).
//!
//! This is the "original interval tree structure" of the paper's
//! Section 3.1: a balanced binary backbone over the bounding points, with
//! each inner node `w` carrying the lists `L(w)` (sorted lower bounds) and
//! `U(w)` (sorted upper bounds) of the intervals *registered* at `w` — the
//! highest node that the interval overlaps.  Intersection queries follow
//! the three-phase descent of Section 4.1.
//!
//! The RI-tree stores exactly this structure relationally; keeping the
//! pointer-based original around both documents the translation and serves
//! as a fast in-memory baseline.

/// Static main-memory interval tree.
#[derive(Debug)]
pub struct IntervalTree {
    /// Flat binary backbone over value space `[1, 2^h - 1]`, navigated
    /// arithmetically like the RI-tree's virtual backbone.
    root: i64,
    /// Offset subtracted from raw values to map them into `[1, 2^h - 1]`.
    offset: i64,
    /// Node id -> secondary structure, only for non-empty nodes
    /// (the paper's tertiary structure links exactly these).
    nodes: std::collections::HashMap<i64, NodeLists>,
    /// The raw input, kept so [`crate::IntervalIndex`] updates can
    /// rebuild (this structure is static; see the trait docs).
    items: Vec<(i64, i64, i64)>,
    len: usize,
}

#[derive(Debug, Default)]
struct NodeLists {
    /// `(lower, id)` sorted ascending by lower.
    lower: Vec<(i64, i64)>,
    /// `(upper, id)` sorted descending by upper.
    upper: Vec<(i64, i64)>,
}

impl IntervalTree {
    /// Builds a tree from `(lower, upper, id)` triples.
    ///
    /// # Panics
    /// Panics if any triple has `lower > upper`.
    pub fn build(items: &[(i64, i64, i64)]) -> IntervalTree {
        if items.is_empty() {
            return IntervalTree {
                root: 0,
                offset: 0,
                nodes: Default::default(),
                items: Vec::new(),
                len: 0,
            };
        }
        let min = items.iter().map(|&(l, _, _)| l).min().unwrap();
        let max = items.iter().map(|&(_, u, _)| u).max().unwrap();
        let offset = min - 1; // value space starts at 1
        let span = (max - offset) as u64;
        let h = 64 - span.leading_zeros(); // smallest h with span < 2^h
        let root = 1i64 << (h.max(1) - 1);
        let mut nodes: std::collections::HashMap<i64, NodeLists> = Default::default();
        for &(l, u, id) in items {
            assert!(l <= u, "invalid interval [{l}, {u}]");
            let fork = fork_node(root, l - offset, u - offset);
            let entry = nodes.entry(fork).or_default();
            entry.lower.push((l, id));
            entry.upper.push((u, id));
        }
        for lists in nodes.values_mut() {
            lists.lower.sort_unstable();
            lists.upper.sort_unstable_by(|a, b| b.cmp(a));
        }
        IntervalTree { root, offset, nodes, items: items.to_vec(), len: items.len() }
    }

    /// All stored triples (unordered).
    pub fn triples(&self) -> &[(i64, i64, i64)] {
        &self.items
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty backbone nodes (size of the tertiary structure).
    pub fn nonempty_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sorted ids of intervals intersecting `[ql, qu]`.
    ///
    /// Implements the three query phases of Section 4.1: scanning `U(w)`
    /// for path nodes left of the query, `L(w)` for path nodes right of it,
    /// and reporting whole nodes covered by the query.
    pub fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        self.intersection_impl(ql, qu, &mut crate::QueryCost::default())
    }

    /// [`IntervalTree::intersection`] plus its work counters.
    ///
    /// Cost model for `fig23_hot_tier`: one endpoint comparison per
    /// `U(w)`/`L(w)` entry examined (including the one that stops each
    /// scan); covered nodes report their lists wholesale, and the
    /// directory pass that finds them stands in for the tertiary
    /// structure's range links (a range scan in the relational
    /// version), so it is charged as visited nodes, not comparisons.
    pub fn intersection_with_cost(&self, ql: i64, qu: i64) -> (Vec<i64>, crate::QueryCost) {
        let mut cost = crate::QueryCost::default();
        let ids = self.intersection_impl(ql, qu, &mut cost);
        (ids, cost)
    }

    fn intersection_impl(&self, ql: i64, qu: i64, cost: &mut crate::QueryCost) -> Vec<i64> {
        assert!(ql <= qu);
        if self.len == 0 {
            return Vec::new();
        }
        let (l, u) = (ql - self.offset, qu - self.offset);
        let mut out = Vec::new();
        // Visit the union of the root→l and root→u search paths; covered
        // nodes (l <= w <= u) contribute all their intervals, which in this
        // in-memory version we enumerate from the node directory.
        let mut visit = |w: i64| {
            let Some(lists) = self.nodes.get(&w) else { return };
            cost.nodes += 1;
            if w < l {
                // scan U(w) descending while upper >= ql
                for &(up, id) in &lists.upper {
                    cost.comparisons += 1;
                    cost.entries += 1;
                    if up < ql {
                        break;
                    }
                    out.push(id);
                }
            } else if w > u {
                // scan L(w) ascending while lower <= qu
                for &(lo, id) in &lists.lower {
                    cost.comparisons += 1;
                    cost.entries += 1;
                    if lo > qu {
                        break;
                    }
                    out.push(id);
                }
            } else {
                cost.entries += lists.lower.len() as u64;
                out.extend(lists.lower.iter().map(|&(_, id)| id));
            }
        };
        let mut on_path = std::collections::HashSet::new();
        for target in [l, u] {
            let mut node = self.root;
            let mut step = self.root / 2;
            loop {
                if on_path.insert(node) {
                    visit(node);
                }
                if node == target || step < 1 {
                    break;
                }
                if target < node {
                    node -= step;
                } else {
                    node += step;
                }
                step /= 2;
            }
        }
        // Covered nodes *off* the two paths: every non-empty node strictly
        // inside (l, u) that the paths did not touch.  (The relational
        // version gets these for free from the BETWEEN range scan; here we
        // consult the node directory, standing in for the tertiary
        // structure's range links.)
        for (&w, lists) in &self.nodes {
            if w >= l && w <= u && !on_path.contains(&w) {
                cost.nodes += 1;
                cost.entries += lists.lower.len() as u64;
                out.extend(lists.lower.iter().map(|&(_, id)| id));
            }
        }
        out.sort_unstable();
        out
    }

    /// Sorted ids of intervals containing `p`.
    pub fn stab(&self, p: i64) -> Vec<i64> {
        self.intersection(p, p)
    }
}

/// Fork node search in the static backbone (the paper's Figure 4).
fn fork_node(root: i64, l: i64, u: i64) -> i64 {
    let mut node = root;
    let mut step = root / 2;
    while step >= 1 {
        if u < node {
            node -= step;
        } else if node < l {
            node += step;
        } else {
            break;
        }
        step /= 2;
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIntervalSet;

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut x = seed;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 5000) as i64;
                let len = ((x >> 32) % 300) as i64;
                (l, l + len, i as i64)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.intersection(0, 100), Vec::<i64>::new());
    }

    #[test]
    fn matches_naive_on_random_data() {
        let items = pseudo_random_items(1500, 0xABCDEF);
        let tree = IntervalTree::build(&items);
        let naive = NaiveIntervalSet::from_triples(items.iter().copied());
        let queries = [(0, 5500), (100, 150), (2500, 2500), (-50, 10), (5200, 9000), (4999, 5001)];
        for (ql, qu) in queries {
            assert_eq!(tree.intersection(ql, qu), naive.intersection(ql, qu), "[{ql}, {qu}]");
        }
        for p in (0..5500).step_by(97) {
            assert_eq!(tree.stab(p), naive.stab(p), "stab {p}");
        }
    }

    #[test]
    fn no_redundancy_one_registration_per_interval() {
        let items = pseudo_random_items(500, 42);
        let tree = IntervalTree::build(&items);
        let total: usize = tree.nodes.values().map(|l| l.lower.len()).sum();
        assert_eq!(total, items.len(), "each interval registers at exactly one node");
    }

    #[test]
    fn negative_coordinates() {
        let items = vec![(-100, -50, 1), (-60, 20, 2), (10, 30, 3)];
        let tree = IntervalTree::build(&items);
        assert_eq!(tree.intersection(-55, -52), vec![1, 2]);
        assert_eq!(tree.intersection(0, 9), vec![2]);
        assert_eq!(tree.intersection(15, 100), vec![2, 3]);
        assert_eq!(tree.intersection(25, 100), vec![3], "interval 2 ends at 20");
    }
}
