//! Bentley's segment tree (static, main-memory).
//!
//! Included from the paper's Section 2.1 survey as the classic structure
//! that — unlike the interval tree — *decomposes* intervals into canonical
//! segments and therefore pays O(n log n) space.  The contrast motivates
//! the paper's choice of Edelsbrunner's tree ("the registered intervals
//! are not decomposed as in the segment tree, no redundancy is produced").

/// Static segment tree over the elementary intervals of its input.
#[derive(Debug)]
pub struct SegmentTree {
    /// Sorted distinct endpoints defining the elementary intervals.
    coords: Vec<i64>,
    /// Binary tree over elementary intervals, 1-based heap layout; each
    /// node lists the ids whose canonical cover includes it.
    node_ids: Vec<Vec<i64>>,
    leaves: usize,
    /// `(lower, id)` sorted ascending — lets intersection reduce to a
    /// stab plus a start-range report (see [`SegmentTree::intersection`]).
    starts: Vec<(i64, i64)>,
    /// The raw input, kept so [`crate::IntervalIndex`] updates can
    /// rebuild (this structure is static; see the trait docs).
    items: Vec<(i64, i64, i64)>,
    len: usize,
    /// Total id registrations — the redundancy the paper avoids.
    registrations: usize,
}

impl SegmentTree {
    /// Builds from `(lower, upper, id)` triples (closed intervals).
    pub fn build(items: &[(i64, i64, i64)]) -> SegmentTree {
        let mut coords: Vec<i64> = items.iter().flat_map(|&(l, u, _)| [l, u + 1]).collect();
        coords.sort_unstable();
        coords.dedup();
        let leaves = coords.len().next_power_of_two().max(1);
        let mut starts: Vec<(i64, i64)> = items.iter().map(|&(l, _, id)| (l, id)).collect();
        starts.sort_unstable();
        let mut tree = SegmentTree {
            coords,
            node_ids: vec![Vec::new(); 2 * leaves],
            leaves,
            starts,
            items: items.to_vec(),
            len: items.len(),
            registrations: 0,
        };
        for &(l, u, id) in items {
            assert!(l <= u, "invalid interval [{l}, {u}]");
            let lo = tree.coords.binary_search(&l).expect("endpoint present");
            let hi = tree.coords.binary_search(&(u + 1)).expect("endpoint present");
            tree.insert_canonical(1, 0, tree.leaves, lo, hi, id);
        }
        tree
    }

    /// Standard canonical-cover insertion: O(log n) nodes per interval.
    fn insert_canonical(
        &mut self,
        node: usize,
        nl: usize,
        nr: usize,
        lo: usize,
        hi: usize,
        id: i64,
    ) {
        if hi <= nl || nr <= lo {
            return;
        }
        if lo <= nl && nr <= hi {
            self.node_ids[node].push(id);
            self.registrations += 1;
            return;
        }
        let mid = (nl + nr) / 2;
        self.insert_canonical(2 * node, nl, mid, lo, hi, id);
        self.insert_canonical(2 * node + 1, mid, nr, lo, hi, id);
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total node registrations; `registrations / len` is the redundancy
    /// factor (Θ(log n) worst case).
    pub fn registrations(&self) -> usize {
        self.registrations
    }

    /// All stored triples (unordered).
    pub fn triples(&self) -> &[(i64, i64, i64)] {
        &self.items
    }

    /// Sorted ids of intervals intersecting `[ql, qu]`.
    ///
    /// The segment tree's native query is stabbing; intersection is the
    /// textbook reduction: intervals containing `ql` (a stab) plus
    /// intervals *starting* inside `(ql, qu]` (a range report over the
    /// sorted start list).  The two sets are disjoint — a start in
    /// `(ql, qu]` means the interval cannot contain `ql`.
    pub fn intersection(&self, ql: i64, qu: i64) -> Vec<i64> {
        assert!(ql <= qu, "invalid query [{ql}, {qu}]");
        let mut out = self.stab(ql);
        let from = self.starts.partition_point(|&(l, _)| l <= ql);
        let to = self.starts.partition_point(|&(l, _)| l <= qu);
        out.extend(self.starts[from..to].iter().map(|&(_, id)| id));
        out.sort_unstable();
        out
    }

    /// Sorted ids of intervals containing `p` (the segment tree's native
    /// query).
    pub fn stab(&self, p: i64) -> Vec<i64> {
        if self.len == 0 {
            return Vec::new();
        }
        // Elementary interval index containing p: last coord <= p.
        let slot = match self.coords.binary_search(&p) {
            Ok(i) => i,
            Err(0) => return Vec::new(), // before all intervals
            Err(i) => i - 1,
        };
        let mut out = Vec::new();
        let mut node = self.leaves + slot;
        while node >= 1 {
            out.extend(self.node_ids[node].iter().copied());
            if node == 1 {
                break;
            }
            node /= 2;
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIntervalSet;

    #[test]
    fn empty() {
        let t = SegmentTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.stab(5), Vec::<i64>::new());
    }

    #[test]
    fn stab_matches_naive() {
        let mut x = 77u64;
        let items: Vec<(i64, i64, i64)> = (0..800)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 2000) as i64;
                let len = ((x >> 30) % 100) as i64;
                (l, l + len, i)
            })
            .collect();
        let tree = SegmentTree::build(&items);
        let naive = NaiveIntervalSet::from_triples(items);
        for p in (-10..2150).step_by(13) {
            assert_eq!(tree.stab(p), naive.stab(p), "stab {p}");
        }
    }

    #[test]
    fn intersection_matches_naive() {
        let mut x = 91u64;
        let items: Vec<(i64, i64, i64)> = (0..600)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 2000) as i64;
                let len = ((x >> 30) % 100) as i64;
                (l, l + len, i)
            })
            .collect();
        let tree = SegmentTree::build(&items);
        let naive = NaiveIntervalSet::from_triples(items);
        for (ql, qu) in [(0, 2100), (500, 520), (1999, 1999), (-40, 5), (2090, 4000)] {
            assert_eq!(tree.intersection(ql, qu), naive.intersection(ql, qu), "[{ql}, {qu}]");
        }
    }

    #[test]
    fn closed_endpoints_included() {
        let t = SegmentTree::build(&[(5, 10, 1)]);
        assert_eq!(t.stab(5), vec![1]);
        assert_eq!(t.stab(10), vec![1]);
        assert_eq!(t.stab(11), Vec::<i64>::new());
        assert_eq!(t.stab(4), Vec::<i64>::new());
    }

    #[test]
    fn decomposition_produces_redundancy() {
        // Many long overlapping intervals: registrations must exceed n,
        // demonstrating the segment tree's space blow-up the paper avoids.
        let items: Vec<(i64, i64, i64)> = (0..100).map(|i| (i, 200 - i, i)).collect();
        let t = SegmentTree::build(&items);
        assert!(t.registrations() > t.len(), "expected decomposition redundancy");
    }
}
