//! Main-memory interval structures (paper Section 2.1).
//!
//! The paper's related-work survey starts from the classical main-memory
//! structures: the *Interval Tree* of Edelsbrunner, the *Segment Tree* of
//! Bentley, and brute force.  This crate implements them for two purposes:
//!
//! 1. **Correctness oracles** — every relational access method in this
//!    repository (RI-tree, Tile Index, IST, MAP21, Window-List) is checked
//!    against [`NaiveIntervalSet`] on randomized workloads;
//! 2. **Reference semantics** — [`IntervalTree`] is the very structure the
//!    RI-tree virtualizes, so its three-phase query algorithm documents
//!    what Sections 3–4 of the paper translate into SQL.
//! 3. **A hot-tier engine** — [`HintIndex`] brings the survey up to date
//!    with HINT (Christodoulou, Bouros & Mamoulis; see PAPERS.md), the
//!    hierarchical comparison-free index that `ritree-core`'s read-through
//!    `HotTier` runs in front of the paged RI-tree.
//!
//! All five structures share the [`IntervalIndex`] trait and store
//! `(lower, upper, id)` triples of `i64` with closed interval semantics
//! (`lower <= upper`, intersection includes shared endpoints), matching
//! the `Interval` type in `ritree-core`.

pub mod hint;
pub mod index;
pub mod interval_tree;
pub mod naive;
pub mod segment_tree;
pub mod skiplist;

pub use hint::HintIndex;
pub use index::{IntervalIndex, QueryCost};
pub use interval_tree::IntervalTree;
pub use naive::NaiveIntervalSet;
pub use segment_tree::SegmentTree;
pub use skiplist::IntervalSkipList;
