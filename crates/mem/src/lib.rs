//! Main-memory interval structures (paper Section 2.1).
//!
//! The paper's related-work survey starts from the classical main-memory
//! structures: the *Interval Tree* of Edelsbrunner, the *Segment Tree* of
//! Bentley, and brute force.  This crate implements them for two purposes:
//!
//! 1. **Correctness oracles** — every relational access method in this
//!    repository (RI-tree, Tile Index, IST, MAP21, Window-List) is checked
//!    against [`NaiveIntervalSet`] on randomized workloads;
//! 2. **Reference semantics** — [`IntervalTree`] is the very structure the
//!    RI-tree virtualizes, so its three-phase query algorithm documents
//!    what Sections 3–4 of the paper translate into SQL.
//!
//! All structures store `(lower, upper, id)` triples of `i64` with closed
//! interval semantics (`lower <= upper`, intersection includes shared
//! endpoints), matching `ritree_core::Interval`.

pub mod interval_tree;
pub mod naive;
pub mod segment_tree;
pub mod skiplist;

pub use interval_tree::IntervalTree;
pub use naive::NaiveIntervalSet;
pub use segment_tree::SegmentTree;
pub use skiplist::IntervalSkipList;
