//! Property tests: HINT must answer exactly like the naive oracle under
//! arbitrary data, arbitrary queries, boundary-touching queries,
//! duplicate endpoints, point intervals, stabbing, and interleaved
//! deletes — and must do it without a single endpoint comparison.

use proptest::prelude::*;
use ri_mem::{HintIndex, NaiveIntervalSet};

/// Domain used by every test: `HintIndex::new(-1024, 12)` covers
/// `[-1024, 3071]`, and the strategies below stay well inside it.
fn hint() -> HintIndex {
    HintIndex::new(-1024, 12)
}

fn interval_strategy() -> impl Strategy<Value = (i64, i64)> {
    (-1000i64..1000, 0i64..400).prop_map(|(l, len)| (l, l + len))
}

fn data_strategy(max_n: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec(interval_strategy(), 1..max_n)
}

/// Builds both structures over the same `(lower, upper, index-as-id)`
/// triples.
fn build_both(data: &[(i64, i64)]) -> (HintIndex, NaiveIntervalSet) {
    let mut h = hint();
    let mut n = NaiveIntervalSet::new();
    for (id, &(l, u)) in data.iter().enumerate() {
        h.insert(l, u, id as i64);
        n.insert(l, u, id as i64);
    }
    (h, n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary data, arbitrary range queries: identical sorted ids.
    #[test]
    fn intersection_matches_naive(
        data in data_strategy(120),
        query in interval_strategy(),
    ) {
        let (h, n) = build_both(&data);
        let (ql, qu) = query;
        prop_assert_eq!(h.intersection(ql, qu), n.intersection(ql, qu));
    }

    /// Queries whose endpoints coincide exactly with stored endpoints —
    /// the closed-interval boundary cases (`q.upper == lower`,
    /// `q.lower == upper`) where an off-by-one in the prefix
    /// decomposition would show first.
    #[test]
    fn boundary_touching_queries_match_naive(
        data in data_strategy(60),
        i in 0usize..1000,
        j in 0usize..1000,
    ) {
        let (h, n) = build_both(&data);
        let a = data[i % data.len()];
        let b = data[j % data.len()];
        for &(ql, qu) in &[
            (a.1.min(b.0), a.1.max(b.0)), // an upper meets a lower
            (a.0, b.0.max(a.0)),          // both ends on stored lowers
            (b.1.min(a.1), a.1.max(b.1)), // both ends on stored uppers
        ] {
            prop_assert_eq!(h.intersection(ql, qu), n.intersection(ql, qu));
        }
    }

    /// Endpoints drawn from a tiny pool, so many intervals share exact
    /// lowers and uppers (and many are duplicates up to id).
    #[test]
    fn duplicate_endpoints_match_naive(
        pairs in prop::collection::vec((0i64..8, 0i64..8), 1..80),
        query in (0i64..8, 0i64..8),
    ) {
        let mut h = hint();
        let mut n = NaiveIntervalSet::new();
        for (id, &(a, b)) in pairs.iter().enumerate() {
            let (l, u) = (a.min(b), a.max(b));
            h.insert(l, u, id as i64);
            n.insert(l, u, id as i64);
        }
        let (ql, qu) = (query.0.min(query.1), query.0.max(query.1));
        prop_assert_eq!(h.intersection(ql, qu), n.intersection(ql, qu));
    }

    /// Interleaved deletes: delete outcomes agree with the oracle (both
    /// for stored and never-stored triples), and queries agree after
    /// every delete.
    #[test]
    fn deletes_match_naive(
        data in data_strategy(60),
        victims in prop::collection::vec(0usize..1000, 1..30),
        query in interval_strategy(),
    ) {
        let (mut h, mut n) = build_both(&data);
        let (ql, qu) = query;
        for &v in &victims {
            let id = (v % data.len()) as i64;
            let (l, u) = data[id as usize];
            prop_assert_eq!(h.delete(l, u, id), n.delete(l, u, id));
            // A triple that was never inserted (wrong id) is refused.
            prop_assert!(!h.delete(l, u, -1));
            prop_assert_eq!(h.intersection(ql, qu), n.intersection(ql, qu));
            prop_assert_eq!(h.len(), n.len());
        }
    }

    /// Degenerate point intervals (`lower == upper`) against point and
    /// range queries.
    #[test]
    fn point_intervals_match_naive(
        points in prop::collection::vec(-1000i64..1000, 1..100),
        query in interval_strategy(),
        stab_at in -1000i64..1000,
    ) {
        let mut h = hint();
        let mut n = NaiveIntervalSet::new();
        for (id, &p) in points.iter().enumerate() {
            h.insert(p, p, id as i64);
            n.insert(p, p, id as i64);
        }
        let (ql, qu) = query;
        prop_assert_eq!(h.intersection(ql, qu), n.intersection(ql, qu));
        prop_assert_eq!(h.stab(stab_at), n.stab(stab_at));
    }

    /// Stabbing queries (the one-partition-per-level fast path),
    /// including points just outside the domain.
    #[test]
    fn stab_matches_naive(
        data in data_strategy(120),
        p in -1500i64..1500,
    ) {
        let (h, n) = build_both(&data);
        prop_assert_eq!(h.stab(p), n.stab(p));
        prop_assert!(h.stab(-2000).is_empty(), "outside the domain");
    }

    /// `intersecting_triples` (the hot tier's admission fetch) returns
    /// exactly the intersecting triples, each once.
    #[test]
    fn intersecting_triples_match_naive(
        data in data_strategy(120),
        query in interval_strategy(),
    ) {
        let (h, n) = build_both(&data);
        let (ql, qu) = query;
        let mut got = h.intersecting_triples(ql, qu);
        got.sort_unstable();
        let mut want: Vec<(i64, i64, i64)> = n
            .triples()
            .iter()
            .copied()
            .filter(|&(l, u, _)| l <= qu && ql <= u)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The comparison-free property itself: HINT's query cost reports
    /// zero endpoint comparisons and touches exactly one entry per
    /// result, while the oracle pays ~2 comparisons per stored interval.
    #[test]
    fn hint_queries_are_comparison_free(
        data in data_strategy(120),
        query in interval_strategy(),
    ) {
        let (h, n) = build_both(&data);
        let (ql, qu) = query;
        let (ids, cost) = h.intersection_with_cost(ql, qu);
        prop_assert_eq!(cost.comparisons, 0);
        prop_assert_eq!(cost.entries, ids.len() as u64);
        let (nids, ncost) = n.intersection_with_cost(ql, qu);
        prop_assert_eq!(ids, nids);
        prop_assert!(ncost.comparisons >= data.len() as u64);
    }
}
