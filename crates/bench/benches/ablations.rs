//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! 1. **Two-fold vs three-fold query** (Section 4.3): the paper merges the
//!    BETWEEN subquery into `leftNodes` to save one index probe per query.
//! 2. **minstep pruning** (Section 3.4): without it, descents always reach
//!    the leaf level and the transient node lists are longer.
//! 3. **Composite-index attribute order** (Section 2.3): the RI-tree's
//!    `(node, bound)` indexes vs the IST's plain bound index.

use criterion::{criterion_group, criterion_main, Criterion};
use ri_bench::{build_ist, build_ritree, fresh_env};
use ri_workloads::{d3, queries_for_selectivity};
use ritree_core::Interval;
use std::hint::black_box;

fn bench_twofold_vs_threefold(c: &mut Criterion) {
    let env = fresh_env();
    let spec = d3(50_000, 2000);
    let data = spec.generate(7);
    let tree = build_ritree(&env, &data);
    let queries = queries_for_selectivity(&spec, 0.005, 32, 8);

    // Correctness first: both plans return identical ids.
    for &(ql, qu) in queries.iter().take(8) {
        let q = Interval::new(ql, qu).unwrap();
        let two = tree.intersection(q).unwrap();
        let plan8 = tree.intersection_plan_fig8(q, i64::MAX - 2).unwrap();
        let (three, _) = tree.execute_id_plan(&plan8).unwrap();
        assert_eq!(two, three, "Fig 8 and Fig 9 plans must agree");
    }

    let mut group = c.benchmark_group("ablation/query_plan");
    group.bench_function("two_fold_fig9", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            let q = Interval::new(ql, qu).unwrap();
            black_box(tree.intersection(q).unwrap())
        })
    });
    group.bench_function("three_fold_fig8", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            let q = Interval::new(ql, qu).unwrap();
            let plan = tree.intersection_plan_fig8(q, i64::MAX - 2).unwrap();
            black_box(tree.execute_id_plan(&plan).unwrap())
        })
    });
    group.finish();
}

fn bench_minstep_pruning(c: &mut Criterion) {
    let env = fresh_env();
    // Long intervals only: minstep stays high, pruning has bite.
    let spec = ri_workloads::restricted_d3(50_000, 1500);
    let data = spec.generate(9);
    let tree = build_ritree(&env, &data);
    let queries = queries_for_selectivity(&spec, 0.002, 32, 10);

    for &(ql, qu) in queries.iter().take(8) {
        let q = Interval::new(ql, qu).unwrap();
        let pruned = tree.intersection(q).unwrap();
        let plan = tree.intersection_plan_unpruned(q, i64::MAX - 2).unwrap();
        let (unpruned, _) = tree.execute_id_plan(&plan).unwrap();
        assert_eq!(pruned, unpruned, "minstep pruning must not change results");
    }

    let mut group = c.benchmark_group("ablation/minstep");
    group.bench_function("pruned", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            black_box(tree.intersection(Interval::new(ql, qu).unwrap()).unwrap())
        })
    });
    group.bench_function("unpruned", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            let plan = tree
                .intersection_plan_unpruned(Interval::new(ql, qu).unwrap(), i64::MAX - 2)
                .unwrap();
            black_box(tree.execute_id_plan(&plan).unwrap())
        })
    });
    group.finish();
}

fn bench_index_attribute_order(c: &mut Criterion) {
    // RI-tree's (node, bound) composite indexes vs the IST's plain
    // bound-ordered index, on identical data and queries.
    let spec = d3(50_000, 2000);
    let data = spec.generate(11);
    let queries = queries_for_selectivity(&spec, 0.005, 32, 12);

    let env_ri = fresh_env();
    let ri = build_ritree(&env_ri, &data);
    let env_ist = fresh_env();
    let ist = build_ist(&env_ist, &data);

    let mut group = c.benchmark_group("ablation/index_order");
    group.bench_function("ri_node_bound_indexes", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            black_box(ri.intersection(Interval::new(ql, qu).unwrap()).unwrap())
        })
    });
    group.bench_function("ist_bound_only_index", |b| {
        use ri_relstore::IntervalAccessMethod;
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            black_box(ist.am_intersection(ql, qu).unwrap())
        })
    });
    group.finish();
}

fn bench_skeleton_extension(c: &mut Criterion) {
    // Clustered data in a huge space: most descent nodes are empty, the
    // situation the Section 7 Skeleton Index extension targets.
    let mut data: Vec<(Interval, i64)> = vec![(Interval::new(1 << 30, (1 << 30) + 10).unwrap(), 0)];
    let mut x = 0xA5A5u64;
    for id in 1..20_000i64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let l = 500_000 + (x % 50_000) as i64;
        data.push((Interval::new(l, l + (x >> 44) as i64 % 500).unwrap(), id));
    }
    use ritree_core::{RiOptions, RiTree};
    let env_plain = fresh_env();
    let plain = RiTree::bulk_load(
        std::sync::Arc::clone(&env_plain.db),
        "plain",
        RiOptions::default(),
        data.clone(),
    )
    .unwrap();
    let env_skel = fresh_env();
    let skel = RiTree::bulk_load(
        std::sync::Arc::clone(&env_skel.db),
        "skel",
        RiOptions { skeleton: true },
        data,
    )
    .unwrap();
    // Queries far from the cluster: descents full of empty nodes.
    let queries: Vec<Interval> =
        (0..16).map(|i| Interval::new(i * 60_000_000, i * 60_000_000 + 2000).unwrap()).collect();
    for &q in queries.iter().take(4) {
        assert_eq!(plain.intersection(q).unwrap(), skel.intersection(q).unwrap());
    }
    let mut group = c.benchmark_group("ablation/skeleton");
    group.bench_function("plain", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(plain.intersection(queries[i % queries.len()]).unwrap())
        })
    });
    group.bench_function("skeleton", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(skel.intersection(queries[i % queries.len()]).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_twofold_vs_threefold, bench_minstep_pruning,
              bench_index_attribute_order, bench_skeleton_extension
}
criterion_main!(ablations);
