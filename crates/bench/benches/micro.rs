//! Micro-benchmarks of the RI-tree's primitive operations.
//!
//! These complement the figure binaries (which measure I/O): here we
//! measure CPU cost of the virtual backbone arithmetic, insertion, and
//! query execution at a fixed scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ri_bench::{build_ritree, fresh_env};
use ri_workloads::{d1, queries_for_selectivity};
use ritree_core::{BackboneParams, Interval};
use std::hint::black_box;

fn bench_fork_node(c: &mut Criterion) {
    let mut p = BackboneParams::new();
    p.prepare_insert(0, 0);
    p.prepare_insert((1 << 20) - 1, (1 << 20) - 1);
    c.bench_function("vtree/fork_of", |b| {
        let mut x = 7u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let l = (x % (1 << 20)) as i64;
            let u = (l + 2000).min((1 << 20) - 1);
            black_box(p.fork_of(black_box(l), black_box(u)))
        })
    });
}

fn bench_query_traversal(c: &mut Criterion) {
    let mut p = BackboneParams::new();
    p.prepare_insert(0, 0);
    p.prepare_insert((1 << 20) - 1, (1 << 20) - 1);
    p.prepare_insert(12_345, 12_345); // minstep 1: full-depth descents
    c.bench_function("vtree/query_nodes", |b| {
        b.iter(|| black_box(p.query_nodes(black_box(100_000), black_box(131_000))))
    });
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("ritree/insert_into_10k", |b| {
        let env = fresh_env();
        let data = d1(10_000, 2000).generate(1);
        let tree = build_ritree(&env, &data);
        let mut id = 1_000_000i64;
        b.iter(|| {
            id += 1;
            let l = (id * 7919) % (1 << 20);
            tree.insert(Interval::new(l, l + 500).unwrap(), id).unwrap();
        })
    });
}

fn bench_intersection_query(c: &mut Criterion) {
    let env = fresh_env();
    let spec = d1(100_000, 2000);
    let data = spec.generate(2);
    let tree = build_ritree(&env, &data);
    let queries = queries_for_selectivity(&spec, 0.005, 64, 3);
    c.bench_function("ritree/intersection_100k_sel0.5%", |b| {
        let mut i = 0;
        b.iter(|| {
            let (ql, qu) = queries[i % queries.len()];
            i += 1;
            black_box(tree.intersection(Interval::new(ql, qu).unwrap()).unwrap())
        })
    });
}

fn bench_delete(c: &mut Criterion) {
    c.bench_function("ritree/insert_delete_pair", |b| {
        let env = fresh_env();
        let data = d1(10_000, 2000).generate(4);
        let tree = build_ritree(&env, &data);
        let mut id = 5_000_000i64;
        b.iter_batched(
            || {
                id += 1;
                let l = (id * 104_729) % (1 << 20);
                let iv = Interval::new(l, l + 300).unwrap();
                tree.insert(iv, id).unwrap();
                (iv, id)
            },
            |(iv, id)| {
                assert!(tree.delete(black_box(iv), black_box(id)).unwrap());
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_fork_node, bench_query_traversal, bench_insert,
              bench_intersection_query, bench_delete
}
criterion_main!(micro);
