//! The commit-latency experiment (ours, not the paper's): mean commit
//! latency versus committing writer threads, inline first-flush against
//! the background WAL flusher — the price of paying the log backlog
//! write inside the commit critical path.
//!
//! # Methodology
//!
//! Like `fig20`, the experiment prices concurrency *deterministically*.
//! Two real single-writer durable runs execute first, both under
//! `FlushPolicy::Off` (so their WAL counters are exactly reproducible):
//! a **small-transaction** workload (1 insert per commit) and a
//! **large-transaction** workload ([`LARGE_TXN_INSERTS`] inserts per
//! commit).  The traced facts — stream bytes appended per commit, hence
//! full log pages per commit — feed a discrete-event simulation in
//! **integer nanoseconds** that prices two flush policies over `T`
//! writers doing the identical per-commit work:
//!
//! * **inline** — today's `FlushPolicy::Off`: the group-commit leader
//!   writes every unflushed log page of the covered commits (the whole
//!   backlog since the last flush), then the tail page, then fsyncs.
//!   Large transactions stall their leader on megabytes of backlog.
//! * **flusher-ahead** — `FlushPolicy::Background`: a flusher thread
//!   spends device idle time writing buffered pages FIFO as they are
//!   appended, so at commit time the leader usually finds the backlog
//!   already on the device and writes only the tail page before the
//!   fsync.  The modelled flusher yields to an arriving commit (it
//!   never starts a page write that would delay a pending sync) — the
//!   optimistic variant, deterministic by construction.
//!
//! Both policies share the group-commit rule of `fig20` (a starting
//! fsync covers every request issued at or before its start, lowest
//! writer index first), so the snapshot (`BENCH_commit_latency.json`)
//! is byte-stable across runs and machines.  Device costs are the
//! paper-era disk: [`T_SYNC_NS`] per fsync, [`T_PAGE_WRITE_NS`] per
//! 2 KB log page (~10 MB/s sequential).
//!
//! Alongside the model, the experiment *actually runs* a
//! `FlushPolicy::Background` database and reports its flusher counters
//! plus the WAL's absolute sync-accounting identity.  Those counters
//! depend on thread scheduling, so they are printed as `#` comments and
//! excluded from the JSON.

use crate::harness::{f, section};
use ri_pagestore::{BufferPool, BufferPoolConfig, FlushPolicy, MemDisk, WalConfig, WalSnapshot};
use ri_relstore::{Database, TableDef};
use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::Arc;

/// Committing writer thread counts evaluated.
pub const THREAD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Simulated fsync latency (~10 ms seek + rotation + settle).
pub const T_SYNC_NS: u64 = 10_000_000;

/// Sequential write of one 2 KB log page on the paper-era disk
/// (~10 MB/s): the unit of backlog the inline leader pays per page.
pub const T_PAGE_WRITE_NS: u64 = 200_000;

/// Fixed per-commit CPU floor before the append-derived cost is added.
pub const T_OP_BASE_NS: u64 = 100_000;

/// Per-byte cost of encoding + appending WAL records (think time).
pub const T_OP_PER_BYTE_NS: u64 = 40;

/// Log page size of the traced configuration.
pub const PAGE_BYTES: u64 = 2048;

/// Inserts per commit in the large-transaction workload.
pub const LARGE_TXN_INSERTS: u64 = 256;

/// The deterministic facts read off one traced single-writer run.
#[derive(Clone, Copy, Debug)]
pub struct Trace {
    /// Committed transactions in the traced run.
    pub commits: u64,
    /// Inserts per transaction.
    pub inserts_per_commit: u64,
    /// Stream bytes the run appended (records + commits).
    pub wal_record_bytes: u64,
}

impl Trace {
    /// Integer stream bytes per commit (rounded up), the model's input.
    pub fn bytes_per_commit(&self) -> u64 {
        self.wal_record_bytes.div_ceil(self.commits.max(1))
    }

    /// Whole log pages a commit's records fill — the backlog the
    /// flusher can write ahead.  The partial tail page is always paid
    /// at commit (it only fills when the commit record lands).
    pub fn full_pages_per_commit(&self) -> u64 {
        self.bytes_per_commit() / PAGE_BYTES
    }

    /// Simulated nanoseconds a writer computes between commits.
    pub fn t_think_ns(&self) -> u64 {
        T_OP_BASE_NS + self.bytes_per_commit() * T_OP_PER_BYTE_NS
    }
}

/// One simulated policy outcome.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Total commits performed (always `threads x commits_per_writer`).
    pub commits: u64,
    /// Log fsyncs issued.
    pub fsyncs: u64,
    /// Sum over commits of (durable instant - commit request instant).
    pub total_latency_ns: u64,
    /// End-to-end simulated nanoseconds.
    pub makespan_ns: u64,
    /// Largest group a single fsync covered.
    pub max_group: u64,
}

impl SimResult {
    /// Mean commit latency — the figure's y-axis.
    pub fn mean_latency_ns(&self) -> u64 {
        self.total_latency_ns / self.commits.max(1)
    }
}

/// Discrete-event simulation of `threads` writers each committing
/// `commits_per_writer` transactions of `full_pages` whole log pages
/// (+ a partial tail page), thinking `t_think` ns per transaction.
///
/// The device serializes everything.  With `flusher` off, the
/// group-commit leader writes all covered backlog pages plus one tail
/// page, then fsyncs; with it on, a background drain writes buffered
/// pages FIFO during device idle gaps (page-granular; it yields rather
/// than delay a pending commit), and the leader pays only the
/// still-unwritten residual plus the tail page and the fsync.  Ties
/// break on lowest writer index.
pub fn simulate(
    threads: usize,
    commits_per_writer: u64,
    full_pages: u64,
    t_think: u64,
    flusher: bool,
) -> SimResult {
    // Commit-request instant of each writer's current transaction.
    let mut ready: Vec<u64> = vec![t_think; threads];
    let mut remaining: Vec<u64> = vec![commits_per_writer; threads];
    // Whole pages of the current transaction not yet on the device.
    let mut unflushed: Vec<u64> = vec![full_pages; threads];
    // Writers with unflushed pages, FIFO by transaction start (the
    // append order the flusher drains in).  Entries whose pages were
    // consumed by a leader are dropped lazily.
    let mut queue: VecDeque<(u64, usize)> =
        if flusher { (0..threads).map(|i| (0u64, i)).collect() } else { VecDeque::new() };
    let mut device_free = 0u64;
    let mut fsyncs = 0u64;
    let mut commits = 0u64;
    let mut total_latency = 0u64;
    let mut makespan = 0u64;
    let mut max_group = 0u64;
    while let Some((req, _)) =
        (0..threads).filter(|&i| remaining[i] > 0).map(|i| (ready[i], i)).min()
    {
        let start = device_free.max(req);
        if flusher {
            // Background drain: spend the idle gap [device_free, start)
            // writing available pages, never past the sync start.
            while let Some(&(avail, w)) = queue.front() {
                if unflushed[w] == 0 {
                    queue.pop_front();
                    continue;
                }
                let page_start = device_free.max(avail);
                if page_start + T_PAGE_WRITE_NS > start {
                    break;
                }
                device_free = page_start + T_PAGE_WRITE_NS;
                unflushed[w] -= 1;
            }
        }
        let covered: Vec<usize> =
            (0..threads).filter(|&i| remaining[i] > 0 && ready[i] <= start).collect();
        let residual: u64 = covered.iter().map(|&i| unflushed[i]).sum();
        let service = (residual + 1) * T_PAGE_WRITE_NS + T_SYNC_NS;
        let done = start + service;
        fsyncs += 1;
        max_group = max_group.max(covered.len() as u64);
        for &i in &covered {
            unflushed[i] = 0;
            commits += 1;
            total_latency += done - ready[i];
            remaining[i] -= 1;
            if remaining[i] > 0 {
                // The next transaction starts immediately: its appends
                // become flushable at `done`, its commit after `t_think`.
                unflushed[i] = full_pages;
                ready[i] = done + t_think;
                if flusher && full_pages > 0 {
                    queue.push_back((done, i));
                }
            }
        }
        device_free = done;
        makespan = done;
    }
    SimResult { commits, fsyncs, total_latency_ns: total_latency, makespan_ns: makespan, max_group }
}

/// One figure row: both flush policies at one thread count.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Committing writer threads.
    pub threads: usize,
    /// Today's inline first-flush (`FlushPolicy::Off`).
    pub inline: SimResult,
    /// The background flusher (`FlushPolicy::Background`).
    pub ahead: SimResult,
}

impl Row {
    /// Inline mean latency over flusher-ahead mean latency (>1 = win).
    pub fn latency_ratio(&self) -> f64 {
        self.inline.mean_latency_ns() as f64 / self.ahead.mean_latency_ns().max(1) as f64
    }
}

/// One workload's traced facts plus its simulated figure rows.
pub struct Workload {
    /// `"small"` or `"large"`.
    pub label: &'static str,
    /// The traced single-writer facts.
    pub trace: Trace,
    /// One entry per thread count.
    pub rows: Vec<Row>,
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct Report {
    /// Commits each simulated writer performs.
    pub commits_per_writer: u64,
    /// The small- and large-transaction workloads.
    pub workloads: Vec<Workload>,
}

/// A fresh WAL-backed database on in-memory devices, paper-sized pool.
fn durable_db(wal_config: WalConfig) -> Database {
    let pool = Arc::new(
        BufferPool::new_durable_with(
            MemDisk::new(PAGE_BYTES as usize),
            BufferPoolConfig::with_capacity(200),
            MemDisk::new(PAGE_BYTES as usize),
            wal_config,
        )
        .expect("durable pool"),
    );
    let db = Database::create(pool).expect("create");
    db.create_table(TableDef { name: "T".into(), columns: vec!["a".into(), "b".into()] })
        .expect("ddl");
    db
}

fn wal_stats(db: &Database) -> WalSnapshot {
    db.pool().wal().expect("durable pool").stats()
}

/// Runs the real single-writer `FlushPolicy::Off` workload and reads
/// the WAL's counters: `commits` transactions of `inserts_per_commit`
/// inserts each, one fsync per commit (nobody to follow).
fn trace_txn(inserts_per_commit: u64, commits: u64) -> Trace {
    let db = durable_db(WalConfig::default());
    let t = db.table("T").expect("table");
    for c in 0..commits as i64 {
        for k in 0..inserts_per_commit as i64 {
            let id = c * inserts_per_commit as i64 + k;
            t.insert(&[id, (id * 37) % 1000]).expect("insert");
        }
        db.commit().expect("commit");
    }
    let stats = wal_stats(&db);
    assert_eq!(stats.commits, commits, "one commit per transaction");
    assert_eq!(stats.commit_syncs, commits, "single-threaded: every commit leads");
    assert_eq!(stats.flusher_writes, 0, "FlushPolicy::Off never flushes in the background");
    Trace { commits, inserts_per_commit, wal_record_bytes: stats.record_bytes }
}

/// Really runs a `FlushPolicy::Background` database and reports its
/// (scheduling-dependent) flusher counters; asserts the absolute sync
/// identity, which must hold on any schedule.
fn report_real_flusher_run(inserts_per_commit: u64, commits: u64) {
    let db = durable_db(WalConfig {
        flush_policy: FlushPolicy::Background { watermark_bytes: 2 * PAGE_BYTES as usize },
        ..WalConfig::default()
    });
    let t = db.table("T").expect("table");
    for c in 0..commits as i64 {
        for k in 0..inserts_per_commit as i64 {
            let id = c * inserts_per_commit as i64 + k;
            t.insert(&[id, id % 7]).expect("insert");
        }
        db.commit().expect("commit");
    }
    let s = wal_stats(&db);
    assert_eq!(
        s.syncs,
        s.commit_syncs + s.forced_syncs + s.checkpoint_syncs,
        "sync accounting identity must hold with the flusher racing commits: {s:?}"
    );
    println!(
        "# real: background flusher, {} commits x {} inserts: {} flusher writes \
         ({} bytes ahead), {} segments created, {} syncs ({} commit-led)",
        commits,
        inserts_per_commit,
        s.flusher_writes,
        s.flusher_bytes,
        s.segments_created,
        s.syncs,
        s.commit_syncs
    );
    db.close().expect("close");
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> Report {
    section("Figure 22: mean commit latency, inline first-flush vs background flusher");
    let commits_per_writer: u64 = if quick { 50 } else { 200 };
    let small_commits: u64 = if quick { 400 } else { 2_000 };
    let large_commits: u64 = if quick { 8 } else { 40 };
    let mut workloads = Vec::new();
    for (label, ipc, traced) in
        [("small", 1, small_commits), ("large", LARGE_TXN_INSERTS, large_commits)]
    {
        let trace = trace_txn(ipc, traced);
        let full_pages = trace.full_pages_per_commit();
        let t_think = trace.t_think_ns();
        println!(
            "# trace[{label}]: {} commits x {} inserts, {} stream bytes \
             ({} B/commit, {} full pages), t_think = {} ns",
            trace.commits,
            trace.inserts_per_commit,
            trace.wal_record_bytes,
            trace.bytes_per_commit(),
            full_pages,
            t_think
        );
        println!(
            "{label}: threads,mean_latency_ms_inline,mean_latency_ms_ahead,latency_ratio,\
             fsyncs_inline,fsyncs_ahead,max_group_ahead"
        );
        let mut rows = Vec::new();
        for &threads in &THREAD_COUNTS {
            let inline = simulate(threads, commits_per_writer, full_pages, t_think, false);
            let ahead = simulate(threads, commits_per_writer, full_pages, t_think, true);
            let row = Row { threads, inline, ahead };
            println!(
                "{threads},{},{},{},{},{},{}",
                f(inline.mean_latency_ns() as f64 / 1e6),
                f(ahead.mean_latency_ns() as f64 / 1e6),
                f(row.latency_ratio()),
                inline.fsyncs,
                ahead.fsyncs,
                ahead.max_group
            );
            rows.push(row);
        }
        workloads.push(Workload { label, trace, rows });
    }

    // Correctness of the real background-flusher path (counters depend
    // on scheduling; informational only, the identity is what must hold).
    report_real_flusher_run(LARGE_TXN_INSERTS, if quick { 4 } else { 16 });

    println!("# model: inline leaders rewrite the whole covered backlog inside the");
    println!("# commit critical path; the flusher writes it during think-time device");
    println!("# idle gaps, so large-transaction commits pay only the tail page + fsync.");
    println!("# Small transactions fill no whole page, so both policies coincide.");
    let report = Report { commits_per_writer, workloads };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// Serializes the deterministic part of the report as JSON (hand-rolled,
/// like the other snapshots; the workspace is offline and needs no serde).
fn write_json(report: &Report, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig22_commit_latency\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"protocol\": \"group-commit leaders under two flush policies: inline \
         (the leader writes every unflushed log page of the covered commits, then \
         the tail page, then fsyncs) vs flusher-ahead (a background drain writes \
         buffered pages during device idle gaps, so the leader pays only the \
         still-unwritten residual + tail page + fsync). Identical per-commit work, \
         traced from real FlushPolicy::Off runs\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!("  \"commits_per_writer\": {},\n", report.commits_per_writer));
    out.push_str("  \"model\": {\n");
    out.push_str(&format!(
        "    \"t_sync_ns\": {T_SYNC_NS},\n    \"t_page_write_ns\": {T_PAGE_WRITE_NS},\n    \"page_bytes\": {PAGE_BYTES}\n  }},\n"
    ));
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in report.workloads.iter().enumerate() {
        out.push_str(&format!("    {{\"label\": \"{}\",\n", w.label));
        out.push_str(&format!(
            "     \"trace\": {{\"commits\": {}, \"inserts_per_commit\": {}, \"wal_record_bytes\": {}, \"bytes_per_commit\": {}, \"full_pages_per_commit\": {}, \"t_think_ns\": {}}},\n",
            w.trace.commits,
            w.trace.inserts_per_commit,
            w.trace.wal_record_bytes,
            w.trace.bytes_per_commit(),
            w.trace.full_pages_per_commit(),
            w.trace.t_think_ns()
        ));
        out.push_str("     \"results\": [\n");
        for (i, r) in w.rows.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"threads\": {}, \"commits\": {}, \"mean_latency_ns_inline\": {}, \"mean_latency_ns_ahead\": {}, \"latency_ratio\": {:.4}, \"fsyncs_inline\": {}, \"fsyncs_ahead\": {}, \"makespan_ns_inline\": {}, \"makespan_ns_ahead\": {}, \"max_group_ahead\": {}}}{}\n",
                r.threads,
                r.ahead.commits,
                r.inline.mean_latency_ns(),
                r.ahead.mean_latency_ns(),
                r.latency_ratio(),
                r.inline.fsyncs,
                r.ahead.fsyncs,
                r.inline.makespan_ns,
                r.ahead.makespan_ns,
                r.ahead.max_group,
                if i + 1 == w.rows.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if wi + 1 == report.workloads.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_THINK: u64 = 500_000;

    #[test]
    fn both_policies_commit_everything() {
        for &t in &THREAD_COUNTS {
            for flusher in [false, true] {
                let r = simulate(t, 30, 6, T_THINK, flusher);
                assert_eq!(r.commits, t as u64 * 30);
            }
        }
    }

    #[test]
    fn zero_backlog_makes_the_policies_coincide() {
        // A transaction that fills no whole page leaves the flusher
        // nothing to write ahead: identical latency, fsyncs, makespan.
        for &t in &THREAD_COUNTS {
            let a = simulate(t, 30, 0, T_THINK, false);
            let b = simulate(t, 30, 0, T_THINK, true);
            assert_eq!(a.total_latency_ns, b.total_latency_ns);
            assert_eq!(a.fsyncs, b.fsyncs);
            assert_eq!(a.makespan_ns, b.makespan_ns);
        }
    }

    #[test]
    fn flusher_ahead_beats_inline_on_backlogged_commits() {
        for &t in &THREAD_COUNTS {
            let inline = simulate(t, 30, 6, T_THINK, false);
            let ahead = simulate(t, 30, 6, T_THINK, true);
            assert!(
                ahead.mean_latency_ns() < inline.mean_latency_ns(),
                "{t} writers: flusher-ahead ({}) must beat inline ({})",
                ahead.mean_latency_ns(),
                inline.mean_latency_ns()
            );
            assert!(ahead.makespan_ns <= inline.makespan_ns);
        }
    }

    #[test]
    fn quick_run_is_deterministic_and_meets_the_bar() {
        let a = run(true, None);
        let b = run(true, None);
        for (wa, wb) in a.workloads.iter().zip(&b.workloads) {
            assert_eq!(
                wa.trace.wal_record_bytes, wb.trace.wal_record_bytes,
                "trace must be repeatable"
            );
            for (ra, rb) in wa.rows.iter().zip(&wb.rows) {
                assert_eq!(ra.ahead.total_latency_ns, rb.ahead.total_latency_ns);
                assert_eq!(ra.inline.fsyncs, rb.inline.fsyncs);
            }
        }
        let large = a.workloads.iter().find(|w| w.label == "large").unwrap();
        assert!(
            large.trace.full_pages_per_commit() >= 1,
            "the large workload must actually backlog whole pages"
        );
        for r in &large.rows {
            assert!(
                r.ahead.mean_latency_ns() < r.inline.mean_latency_ns(),
                "{} writers: flusher-ahead must beat inline on large transactions",
                r.threads
            );
        }
    }
}
