//! The group-commit experiment (ours, not the paper's): fsyncs per
//! committed insert versus committing writer threads — the WAL's
//! leader/follower group commit against the one-fsync-per-commit
//! baseline it replaced.
//!
//! # Methodology
//!
//! Like `fig18`/`fig19`, the experiment prices concurrency
//! *deterministically*.  A real durable run executes once,
//! single-threaded: inserts through a WAL-backed [`Database`], one
//! `commit()` per insert, and the WAL's own counters
//! ([`ri_pagestore::WalSnapshot`]) provide the traced facts — record
//! bytes appended per commit and the single-writer sync count (exactly
//! one fsync per commit: with nobody to share a sync with, group commit
//! degenerates to the global policy).
//!
//! A discrete-event simulation in **integer nanoseconds** then prices
//! two commit policies over `T` writers doing the identical per-commit
//! work:
//!
//! * **global** — every commit performs its own log fsync; the log
//!   device serializes them, so the batch pays `T x C` sync latencies
//!   end to end no matter how many threads submit work;
//! * **grouped (this PR)** — the first committer to reach the idle log
//!   device becomes the *leader* and syncs; everyone whose commit
//!   record was appended by the time the sync starts rides along as a
//!   *follower*.  Requests that arrive while a sync is in flight pile
//!   up and are absorbed by the next leader — the entire win.
//!
//! Both policies are simulated with the same deterministic tie-break
//! (lowest writer index first), so the snapshot
//! (`BENCH_group_commit.json`) is byte-stable across runs and machines.
//! The per-commit CPU+append cost is derived from the traced record
//! bytes; the fsync cost is the late-1990s disk of
//! [`ri_pagestore::LatencyModel`]: ~10 ms of seek + rotation + settle.
//!
//! Alongside the model, the experiment *actually runs* concurrent
//! committers at every thread count (disjoint inserts fanned out by
//! `ri_relstore::fan_out`, one `Database::commit` per insert) and
//! asserts the WAL's exact accounting identity — every commit is either
//! a leader (`commit_syncs`) or a follower (`group_commits`), and the
//! log is durable through its end.  Wall-clock-dependent group sizes
//! are printed for reference but excluded from the JSON.

use crate::harness::{f, section};
use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, WalSnapshot};
use ri_relstore::{Database, TableDef};
use std::io::Write as _;
use std::sync::Arc;

/// Committing writer thread counts evaluated.
pub const THREAD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Simulated fsync latency: one log-page write on the paper-era disk
/// (~10 ms seek + rotation + transfer + settle).
pub const T_SYNC_NS: u64 = 10_000_000;

/// Fixed per-commit CPU floor (buffer-pool bookkeeping, latching, the
/// in-cache page mutation) before the append-derived cost is added.
pub const T_OP_BASE_NS: u64 = 100_000;

/// Per-byte cost of encoding + appending a WAL record to the in-memory
/// tail page.
pub const T_OP_PER_BYTE_NS: u64 = 40;

/// The deterministic facts read off the traced single-writer run.
#[derive(Clone, Copy, Debug)]
pub struct Trace {
    /// Committed inserts in the traced run.
    pub commits: u64,
    /// Page-update records the run appended.
    pub wal_records: u64,
    /// Stream bytes the run appended (records + commits).
    pub wal_record_bytes: u64,
    /// Log-device syncs — single-threaded this must equal `commits`.
    pub syncs: u64,
    /// Physical page writes on the log device.
    pub log_page_writes: u64,
}

impl Trace {
    /// Integer stream bytes per commit (rounded up), the model's input.
    pub fn bytes_per_commit(&self) -> u64 {
        self.wal_record_bytes.div_ceil(self.commits.max(1))
    }

    /// Simulated nanoseconds of work between a writer's commits.
    pub fn t_op_ns(&self) -> u64 {
        T_OP_BASE_NS + self.bytes_per_commit() * T_OP_PER_BYTE_NS
    }
}

/// One simulated policy outcome.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Total commits performed (always `threads x commits_per_writer`).
    pub commits: u64,
    /// Log fsyncs issued.
    pub fsyncs: u64,
    /// End-to-end simulated nanoseconds.
    pub makespan_ns: u64,
    /// Largest group a single fsync covered.
    pub max_group: u64,
}

impl SimResult {
    /// Fsyncs per committed insert — the figure's y-axis.
    pub fn fsyncs_per_commit(&self) -> f64 {
        self.fsyncs as f64 / self.commits as f64
    }

    /// Modelled commits per second.
    pub fn commits_per_sec(&self) -> f64 {
        self.commits as f64 * 1e9 / self.makespan_ns as f64
    }
}

/// Discrete-event simulation of `threads` writers each performing
/// `commits_per_writer` commits.  A writer computes for `t_op` ns, then
/// requests durability; the log device runs one fsync (`t_sync` ns) at
/// a time.  Under `grouped`, a starting fsync covers every request
/// issued at or before its start instant; under the global policy it
/// covers exactly the earliest request (FIFO, index tie-break).
pub fn simulate(
    threads: usize,
    commits_per_writer: u64,
    t_op: u64,
    t_sync: u64,
    grouped: bool,
) -> SimResult {
    let mut ready: Vec<u64> = vec![t_op; threads];
    let mut remaining: Vec<u64> = vec![commits_per_writer; threads];
    let mut device_free: u64 = 0;
    let mut fsyncs = 0u64;
    let mut commits = 0u64;
    let mut makespan = 0u64;
    let mut max_group = 0u64;
    loop {
        let earliest = (0..threads).filter(|&i| remaining[i] > 0).map(|i| (ready[i], i)).min();
        let Some((req_time, req_idx)) = earliest else { break };
        let start = device_free.max(req_time);
        let covered: Vec<usize> = if grouped {
            (0..threads).filter(|&i| remaining[i] > 0 && ready[i] <= start).collect()
        } else {
            vec![req_idx]
        };
        let done = start + t_sync;
        fsyncs += 1;
        max_group = max_group.max(covered.len() as u64);
        for i in covered {
            commits += 1;
            remaining[i] -= 1;
            ready[i] = done + t_op;
        }
        device_free = done;
        makespan = done;
    }
    SimResult { commits, fsyncs, makespan_ns: makespan, max_group }
}

/// One figure row: both policies at one thread count.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Committing writer threads.
    pub threads: usize,
    /// The one-fsync-per-commit baseline.
    pub global: SimResult,
    /// The leader/follower group commit.
    pub grouped: SimResult,
}

impl Row {
    /// Grouped throughput over the global baseline.
    pub fn speedup(&self) -> f64 {
        self.grouped.commits_per_sec() / self.global.commits_per_sec()
    }
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct Report {
    /// Commits each simulated writer performs.
    pub commits_per_writer: u64,
    /// The traced single-writer facts.
    pub trace: Trace,
    /// One entry per thread count.
    pub rows: Vec<Row>,
}

/// Runs the real single-writer durable workload and reads the WAL's
/// counters.  One commit per insert; every commit must lead its own
/// sync (there is nobody to follow).
fn trace_single_writer(inserts: u64) -> Trace {
    let db = durable_db();
    let t = db.table("T").expect("table");
    for i in 0..inserts as i64 {
        t.insert(&[i, (i * 37) % 1000]).expect("insert");
        db.commit().expect("commit");
    }
    let stats = wal_stats(&db);
    assert_eq!(stats.commits, inserts, "one commit per insert");
    assert_eq!(stats.commit_syncs, inserts, "single-threaded: every commit leads");
    assert_eq!(stats.group_commits, 0, "single-threaded: nobody follows");
    Trace {
        commits: stats.commits,
        wal_records: stats.records,
        wal_record_bytes: stats.record_bytes,
        syncs: stats.syncs,
        log_page_writes: stats.log_page_writes,
    }
}

/// A fresh WAL-backed database on in-memory devices, paper-sized pool.
fn durable_db() -> Database {
    let pool = Arc::new(
        BufferPool::new_durable(
            MemDisk::new(2048),
            BufferPoolConfig::with_capacity(200),
            MemDisk::new(2048),
        )
        .expect("durable pool"),
    );
    let db = Database::create(pool).expect("create");
    db.create_table(TableDef { name: "T".into(), columns: vec!["a".into(), "b".into()] })
        .expect("ddl");
    db
}

fn wal_stats(db: &Database) -> WalSnapshot {
    db.pool().wal().expect("durable pool").stats()
}

/// Real concurrent committers: disjoint inserts fanned out over
/// `threads`, one `commit()` each.  Asserts the WAL's exact accounting
/// identity and returns (commits, syncs, commit_syncs, group_commits).
fn verify_concurrent_commits(threads: usize, per_writer: u64) -> (u64, u64, u64, u64) {
    let db = durable_db();
    let t = db.table("T").expect("table");
    let total = threads as u64 * per_writer;
    let items: Vec<i64> = (0..total as i64).collect();
    let before = wal_stats(&db);
    ri_relstore::fan_out(&items, threads, |&i| {
        t.insert(&[i, i % 7])?;
        db.commit()
    })
    .into_iter()
    .collect::<ri_pagestore::Result<()>>()
    .expect("concurrent insert+commit");
    let after = wal_stats(&db);
    let commits = after.commits - before.commits;
    let commit_syncs = after.commit_syncs - before.commit_syncs;
    let group_commits = after.group_commits - before.group_commits;
    assert_eq!(commits, total, "every submitted commit committed");
    assert_eq!(
        commit_syncs + group_commits,
        commits,
        "every commit is exactly a leader or a follower"
    );
    let wal = db.pool().wal().expect("durable pool");
    assert_eq!(wal.durable_lsn(), wal.end_lsn(), "commit returns only once durable");
    (commits, after.syncs - before.syncs, commit_syncs, group_commits)
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> Report {
    section("Figure 20: log fsyncs per committed insert, group commit vs one-fsync-per-commit");
    let traced_inserts: u64 = if quick { 400 } else { 2_000 };
    let commits_per_writer: u64 = if quick { 50 } else { 200 };
    let trace = trace_single_writer(traced_inserts);
    let t_op = trace.t_op_ns();
    println!(
        "# trace: {} commits, {} records, {} stream bytes ({} B/commit), {} syncs, {} log page writes",
        trace.commits,
        trace.wal_records,
        trace.wal_record_bytes,
        trace.bytes_per_commit(),
        trace.syncs,
        trace.log_page_writes
    );
    println!("# model: t_sync = {T_SYNC_NS} ns, t_op = {t_op} ns");

    let mut rows = Vec::new();
    println!("threads,fsyncs_per_commit_global,fsyncs_per_commit_grouped,commits_per_sec_global,commits_per_sec_grouped,speedup,max_group");
    for &threads in &THREAD_COUNTS {
        let global = simulate(threads, commits_per_writer, t_op, T_SYNC_NS, false);
        let grouped = simulate(threads, commits_per_writer, t_op, T_SYNC_NS, true);
        let row = Row { threads, global, grouped };
        println!(
            "{threads},{},{},{},{},{},{}",
            f(global.fsyncs_per_commit()),
            f(grouped.fsyncs_per_commit()),
            f(global.commits_per_sec()),
            f(grouped.commits_per_sec()),
            f(row.speedup()),
            grouped.max_group
        );
        rows.push(row);
    }

    // Correctness of the real concurrent commit path (sync counts depend
    // on scheduling; informational only, the identity is what must hold).
    for &threads in &[1usize, 4, 8] {
        let per_writer = if quick { 25 } else { 100 };
        let (commits, syncs, leaders, followers) = verify_concurrent_commits(threads, per_writer);
        println!(
            "# real: {threads} writer(s), {commits} commits, {syncs} log syncs \
             ({leaders} leaders + {followers} followers)"
        );
    }

    println!("# model: the global policy fsyncs once per commit, so the log device");
    println!("# serializes the batch at one sync latency each; group commit lets every");
    println!("# request that arrives during an in-flight sync ride the next leader's");
    println!("# fsync, so fsyncs per commit falls toward 1/T as writers are added");
    let report = Report { commits_per_writer, trace, rows };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// Serializes the deterministic part of the report as JSON (hand-rolled,
/// like the fig18/fig19 snapshots; the workspace is offline and needs no
/// serde).
fn write_json(report: &Report, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig20_group_commit\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"protocol\": \"leader/follower group commit: the first committer to reach \
         the idle log device syncs for everyone whose commit record was appended by \
         the sync's start; requests arriving during an in-flight sync are absorbed by \
         the next leader. The global column is the one-fsync-per-commit baseline \
         priced over the identical per-commit work\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!("  \"commits_per_writer\": {},\n", report.commits_per_writer));
    out.push_str("  \"trace\": {\n");
    out.push_str(&format!(
        "    \"commits\": {},\n    \"wal_records\": {},\n    \"wal_record_bytes\": {},\n    \"bytes_per_commit\": {},\n    \"syncs_single_writer\": {},\n    \"log_page_writes\": {}\n  }},\n",
        report.trace.commits,
        report.trace.wal_records,
        report.trace.wal_record_bytes,
        report.trace.bytes_per_commit(),
        report.trace.syncs,
        report.trace.log_page_writes
    ));
    out.push_str("  \"model\": {\n");
    out.push_str(&format!(
        "    \"t_sync_ns\": {},\n    \"t_op_ns\": {}\n  }},\n",
        T_SYNC_NS,
        report.trace.t_op_ns()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"commits\": {}, \"fsyncs_global\": {}, \"fsyncs_grouped\": {}, \"fsyncs_per_commit_global\": {:.5}, \"fsyncs_per_commit_grouped\": {:.5}, \"commits_per_sec_global\": {:.3}, \"commits_per_sec_grouped\": {:.3}, \"speedup\": {:.3}, \"max_group\": {}}}{}\n",
            r.threads,
            r.grouped.commits,
            r.global.fsyncs,
            r.grouped.fsyncs,
            r.global.fsyncs_per_commit(),
            r.grouped.fsyncs_per_commit(),
            r.global.commits_per_sec(),
            r.grouped.commits_per_sec(),
            r.speedup(),
            r.grouped.max_group,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_OP: u64 = 150_000;

    #[test]
    fn both_policies_commit_everything() {
        for &t in &THREAD_COUNTS {
            for grouped in [false, true] {
                let r = simulate(t, 40, T_OP, T_SYNC_NS, grouped);
                assert_eq!(r.commits, t as u64 * 40);
            }
        }
    }

    #[test]
    fn global_policy_fsyncs_once_per_commit() {
        for &t in &THREAD_COUNTS {
            let r = simulate(t, 40, T_OP, T_SYNC_NS, false);
            assert_eq!(r.fsyncs, r.commits);
        }
    }

    #[test]
    fn grouping_saves_fsyncs_from_two_writers_on() {
        let single = simulate(1, 40, T_OP, T_SYNC_NS, true);
        assert_eq!(single.fsyncs, single.commits, "nobody to share with at T=1");
        let mut last = 1.0f64;
        for &t in &THREAD_COUNTS[1..] {
            let r = simulate(t, 40, T_OP, T_SYNC_NS, true);
            assert!(
                r.fsyncs < r.commits,
                "{t} writers: expected fewer fsyncs ({}) than commits ({})",
                r.fsyncs,
                r.commits
            );
            let per = r.fsyncs_per_commit();
            assert!(per <= last + 1e-12, "fsyncs per commit must fall as writers are added");
            last = per;
        }
    }

    #[test]
    fn grouped_makespan_never_exceeds_global() {
        for &t in &THREAD_COUNTS {
            let g = simulate(t, 40, T_OP, T_SYNC_NS, false);
            let r = simulate(t, 40, T_OP, T_SYNC_NS, true);
            assert!(r.makespan_ns <= g.makespan_ns);
        }
    }

    #[test]
    fn quick_run_is_deterministic_and_meets_the_bar() {
        let a = run(true, None);
        let b = run(true, None);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.grouped.fsyncs, rb.grouped.fsyncs, "simulation must be deterministic");
            assert_eq!(ra.grouped.makespan_ns, rb.grouped.makespan_ns);
        }
        assert_eq!(a.trace.wal_record_bytes, b.trace.wal_record_bytes, "trace must be repeatable");
        for r in &a.rows {
            if r.threads >= 2 {
                assert!(r.grouped.fsyncs < r.grouped.commits);
                assert!(r.speedup() >= 1.0);
            }
        }
        let r8 = a.rows.iter().find(|r| r.threads == 8).unwrap();
        assert!(
            r8.speedup() >= 2.0,
            "8 writers on a 10 ms fsync must gain >= 2x from grouping, got {:.2}",
            r8.speedup()
        );
    }
}
