//! The write-concurrency experiment (ours, not the paper's): modelled
//! insert throughput versus writer threads, latch-crabbing writers against
//! the global-writer baseline the engine enforced before PR 3.
//!
//! # Methodology
//!
//! Like `fig18` (`crate::concurrency`), this experiment prices concurrency
//! *deterministically*: the insert workload runs once, single-threaded,
//! and every insert's page accesses are read off the pool's per-shard
//! counters, with the pool's latch statistics flagging which inserts
//! performed a structure modification (a leaf or inner-node split).  The
//! [`WriteContentionModel`] then prices two writer protocols over the
//! identical trace:
//!
//! * **global writer** — the pre-PR 3 contract: every insert holds the
//!   one writer slot, so the batch's makespan is the *sum* of all
//!   per-insert costs no matter how many threads submit work;
//! * **latch crabbing** — leaf-disjoint inserts overlap: aggregate work
//!   spreads over `T` threads, floored by the serial components that
//!   remain: (1) each pool shard's lock admits one *hold* at a time —
//!   since miss promotion (PR 4) that is bookkeeping plus publish holds
//!   only, device reads and write-backs run outside the lock (the
//!   re-derived fig18 floor, [`ContentionModel::shard_serial_seconds`]),
//!   (2) splits run under the exclusive tree latch, so all SMO inserts
//!   form one serial timeline, (3) every insert bumps the entry count
//!   under the meta-page latch, one latch hold per insert.  With the
//!   promoted miss path the pool lock has stopped binding even at one
//!   shard: leaf faults overlap, and the binding floor is whichever of
//!   the SMO timeline and the meta latch is larger.
//!
//! Charging identical total work to both protocols isolates exactly the
//! effect under study — which serial floor binds.  Wall-clock numbers are
//! printed for reference but excluded from the JSON snapshot
//! (`BENCH_write_concurrency.json`), which must stay byte-stable across
//! runs and machines.
//!
//! Alongside the model, the experiment *actually runs* concurrent
//! writers: disjoint insert batches through raw [`ri_btree::BTree`]
//! handles and [`RiTree::insert_batch`] at every thread count, asserting
//! the final trees are identical to their sequentially built twins — the
//! latching protocol's correctness is exercised even where its speed
//! cannot be observed on a 1-CPU runner.

use crate::concurrency::ContentionModel;
use crate::harness::{f, fresh_env_sharded, section};
use ri_btree::BTree;
use ri_pagestore::{BufferPool, BufferPoolConfig, IoSnapshot, MemDisk, DEFAULT_PAGE_SIZE};
use ritree_core::{Interval, RiTree};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Pool shard counts compared by the experiment.
pub const SHARD_COUNTS: [usize; 2] = [1, 16];
/// Writer thread counts evaluated per shard count.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic cost model for concurrent insert batches (see the module
/// docs for the derivation).
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteContentionModel {
    /// Per-access and per-I/O prices, shared with the fig18 model.
    pub base: ContentionModel,
}

/// The single-threaded insert trace the model prices.
pub struct WriteTrace {
    /// Number of inserts.
    pub inserts: usize,
    /// Simulated seconds of every insert summed (I/O + latch + CPU).
    pub total_work: f64,
    /// Simulated seconds of the structure-modifying inserts only.
    pub smo_work: f64,
    /// Inserts that split a leaf or inner node.
    pub smo_count: u64,
    /// Pessimistic restarts observed (always 0 single-threaded).
    pub restarts: u64,
    /// Aggregate per-shard access counts over the whole batch.
    pub per_shard: Vec<IoSnapshot>,
    /// Total physical block accesses.
    pub phys_total: u64,
}

impl WriteContentionModel {
    /// Simulated seconds one insert costs given its access counts.
    fn insert_work(&self, io: &IoSnapshot) -> f64 {
        let accesses = (io.logical_reads + io.logical_writes) as f64;
        self.base.latency.simulate(io, 0)
            + accesses * (self.base.seconds_per_latch + self.base.seconds_per_access_cpu)
    }

    /// Makespan under the global-writer protocol: all inserts serialize,
    /// regardless of the submitting thread count.
    pub fn makespan_global(&self, trace: &WriteTrace) -> f64 {
        trace.total_work
    }

    /// Makespan under latch crabbing: work spreads over `threads`, floored
    /// by the per-shard lock timelines, the serial SMO timeline, and the
    /// per-insert meta-latch hold.
    pub fn makespan_crabbing(&self, trace: &WriteTrace, threads: usize) -> f64 {
        let shard_floor = trace
            .per_shard
            .iter()
            .map(|s| self.base.shard_serial_seconds(s))
            .fold(0.0f64, f64::max);
        let meta_floor = trace.inserts as f64 * self.base.seconds_per_latch;
        (trace.total_work / threads.max(1) as f64)
            .max(shard_floor)
            .max(trace.smo_work)
            .max(meta_floor)
    }
}

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct WriteThroughput {
    /// Buffer pool shard count.
    pub shards: usize,
    /// Writer thread count.
    pub threads: usize,
    /// Modelled inserts/second under the global-writer baseline.
    pub inserts_per_sec_global: f64,
    /// Modelled inserts/second under latch crabbing.
    pub inserts_per_sec_crabbing: f64,
    /// Crabbing over global at this thread count.
    pub speedup: f64,
}

/// Deterministic summary of one traced configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// Buffer pool shard count of this trace.
    pub shards: usize,
    /// Fraction of inserts that modified structure.
    pub smo_fraction: f64,
    /// Physical block accesses per insert.
    pub phys_io_per_insert: f64,
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct WriteReport {
    /// Inserts in the traced batch.
    pub inserts: usize,
    /// One summary per traced shard count (eviction patterns differ, so
    /// the I/O profile is per configuration, not global).
    pub traces: Vec<TraceSummary>,
    /// The cost model used.
    pub model: WriteContentionModel,
    /// One entry per (shards, threads) pair, shards-major.
    pub rows: Vec<WriteThroughput>,
}

/// The insert workload: pseudorandom 3-column keys shaped like the
/// RI-tree's `lowerIndex` entries `(node, lower, id)`.
fn workload(n: usize) -> Vec<[i64; 3]> {
    let mut x = 0x0F19_5EEDu64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            [(x % 512) as i64, (x >> 20) as i64 % 100_000, i as i64]
        })
        .collect()
}

/// Runs the insert batch once, single-threaded, recording per-insert
/// access counts and SMO flags.
///
/// The pool is deliberately undersized (64 frames) relative to the tree
/// the batch builds: an append-heavy index in production outgrows RAM,
/// and it is exactly the per-insert leaf *misses* — each faulting under
/// its shard's lock — that writer concurrency must overlap.  With a
/// fully cached tree the only physical I/O left is the page allocations
/// of splits, which serialize under the tree latch by design, and the
/// model would (correctly, but uninterestingly) report that nothing
/// scales.
fn trace_inserts(shards: usize, keys: &[[i64; 3]], model: &WriteContentionModel) -> WriteTrace {
    let env = fresh_env_sharded(64, shards);
    let tree = BTree::create(Arc::clone(&env.pool), 3).expect("create tree");
    let stats = env.pool.stats();
    let latches = env.pool.latches();

    let mut total_work = 0.0f64;
    let mut smo_work = 0.0f64;
    let mut smo_count = 0u64;
    let mut before_shards = stats.per_shard();
    let mut before_latches = latches.stats();
    for key in keys {
        tree.insert(&key[..], key[2] as u64).expect("insert");
        let after_shards = stats.per_shard();
        let after_latches = latches.stats();
        let mut io = IoSnapshot::default();
        for (a, b) in after_shards.iter().zip(&before_shards) {
            io.accumulate(&a.since(b));
        }
        let work = model.insert_work(&io);
        total_work += work;
        if after_latches.since(&before_latches).upgrades > 0 {
            smo_work += work;
            smo_count += 1;
        }
        before_shards = after_shards;
        before_latches = after_latches;
    }
    let per_shard = stats.per_shard();
    let phys_total = per_shard.iter().map(IoSnapshot::physical_total).sum();
    WriteTrace {
        inserts: keys.len(),
        total_work,
        smo_work,
        smo_count,
        restarts: latches.stats().restarts,
        per_shard,
        phys_total,
    }
}

/// Real concurrent writers through raw B+-tree handles: every thread
/// inserts a disjoint slice; the result must equal the sequentially built
/// tree entry for entry.
fn verify_concurrent_btree(keys: &[[i64; 3]], threads: usize) -> f64 {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(200, 16),
    ));
    let tree = BTree::create(Arc::clone(&pool), 3).expect("create tree");
    let chunk = keys.len().div_ceil(threads);
    let wall = Instant::now();
    crossbeam::thread::scope(|s| {
        for slice in keys.chunks(chunk) {
            let tree = &tree;
            s.spawn(move |_| {
                for key in slice {
                    tree.insert(&key[..], key[2] as u64).expect("insert");
                }
            });
        }
    })
    .expect("no writer panicked");
    let elapsed = wall.elapsed().as_secs_f64() * 1000.0;
    tree.check_invariants().expect("invariants after concurrent inserts");
    let mut expected: Vec<([i64; 3], u64)> = keys.iter().map(|&k| (k, k[2] as u64)).collect();
    expected.sort();
    let got: Vec<([i64; 3], u64)> = tree
        .scan_all()
        .map(|e| e.expect("scan"))
        .map(|e| ([e.key.col(0), e.key.col(1), e.key.col(2)], e.payload))
        .collect();
    assert_eq!(got, expected, "concurrent insert batch diverged at {threads} threads");
    elapsed
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> WriteReport {
    section("Figure 19: insert throughput vs writer threads, latch crabbing vs global writer");
    let n = if quick { 20_000 } else { 100_000 };
    let keys = workload(n);
    let model = WriteContentionModel::default();

    let mut rows: Vec<WriteThroughput> = Vec::new();
    let mut traces: Vec<TraceSummary> = Vec::new();
    println!("shards,threads,ips_global,ips_crabbing,speedup");
    for &shards in &SHARD_COUNTS {
        let trace = trace_inserts(shards, &keys, &model);
        assert_eq!(trace.restarts, 0, "single-threaded trace cannot restart");
        traces.push(TraceSummary {
            shards,
            smo_fraction: trace.smo_count as f64 / trace.inserts as f64,
            phys_io_per_insert: trace.phys_total as f64 / trace.inserts as f64,
        });
        for &threads in &THREAD_COUNTS {
            let global = n as f64 / model.makespan_global(&trace);
            let crabbing = n as f64 / model.makespan_crabbing(&trace, threads);
            let speedup = crabbing / global;
            println!("{shards},{threads},{},{},{}", f(global), f(crabbing), f(speedup));
            rows.push(WriteThroughput {
                shards,
                threads,
                inserts_per_sec_global: global,
                inserts_per_sec_crabbing: crabbing,
                speedup,
            });
        }
    }

    // Correctness of the real concurrent write paths (wall-clock numbers
    // are informational; scaling is unobservable on 1-CPU runners).
    for &threads in &THREAD_COUNTS {
        let wall_ms = verify_concurrent_btree(&keys, threads);
        println!(
            "# btree: {threads}-thread concurrent batch equals sequential ({} ms)",
            f(wall_ms)
        );
    }
    verify_ritree_batch(quick);

    println!("# model: the global writer serializes every insert; latch crabbing");
    println!("# overlaps leaf-disjoint inserts and serializes only splits + counter bumps;");
    println!("# leaf faults overlap too (miss promotion), so the pool lock no longer");
    println!("# binds even at one shard");
    let report = WriteReport { inserts: n, traces, model, rows };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// `RiTree::insert_batch` against per-interval inserts: identical query
/// answers at every thread count.
fn verify_ritree_batch(quick: bool) {
    let n = if quick { 3_000 } else { 20_000 };
    let data: Vec<(Interval, i64)> = (0..n as i64)
        .map(|id| {
            let l = (id * 37) % 40_000;
            (Interval::new(l, l + 600).unwrap(), id)
        })
        .collect();
    let env = fresh_env_sharded(200, 16);
    let sequential = RiTree::create(Arc::clone(&env.db), "seq").expect("create");
    for &(iv, id) in &data {
        sequential.insert(iv, id).expect("insert");
    }
    let queries: Vec<Interval> =
        (0..16).map(|i| Interval::new(i * 2500, i * 2500 + 900).unwrap()).collect();
    let answers: Vec<Vec<i64>> =
        queries.iter().map(|&q| sequential.intersection(q).expect("query")).collect();
    for &threads in &THREAD_COUNTS {
        let env = fresh_env_sharded(200, 16);
        let tree = RiTree::create(Arc::clone(&env.db), "batch").expect("create");
        let wall = Instant::now();
        tree.insert_batch(&data, threads).expect("insert_batch");
        let wall_ms = wall.elapsed().as_secs_f64() * 1000.0;
        for (q, want) in queries.iter().zip(&answers) {
            assert_eq!(
                &tree.intersection(*q).expect("query"),
                want,
                "insert_batch diverged at {threads} threads"
            );
        }
        println!("# ritree: insert_batch({threads}) equals sequential inserts ({} ms)", f(wall_ms));
    }
}

/// Serializes the deterministic part of the report as JSON (hand-rolled,
/// like the fig18 snapshot; the workspace is offline and needs no serde).
fn write_json(report: &WriteReport, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig19_write_concurrency\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    // See the fig18 snapshot: same re-derived floor, same metadata intent.
    out.push_str(
        "  \"protocol\": \"miss promotion: leaf faults and victim write-backs run \
         outside the shard lock; the crabbing floor is max(latch bookkeeping, serial \
         SMO timeline, per-insert meta hold)\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!("  \"inserts\": {},\n", report.inserts));
    out.push_str("  \"traces\": [\n");
    for (i, t) in report.traces.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"smo_fraction\": {:.5}, \"phys_io_per_insert\": {:.3}}}{}\n",
            t.shards,
            t.smo_fraction,
            t.phys_io_per_insert,
            if i + 1 == report.traces.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"model\": {\n");
    out.push_str(&format!(
        "    \"seconds_per_read\": {},\n    \"seconds_per_write\": {},\n    \"seconds_per_latch\": {},\n    \"seconds_per_access_cpu\": {}\n  }},\n",
        report.model.base.latency.seconds_per_read,
        report.model.base.latency.seconds_per_write,
        report.model.base.seconds_per_latch,
        report.model.base.seconds_per_access_cpu
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"inserts_per_sec_global\": {:.3}, \"inserts_per_sec_crabbing\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.shards,
            r.threads,
            r.inserts_per_sec_global,
            r.inserts_per_sec_crabbing,
            r.speedup,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> WriteTrace {
        let shard = IoSnapshot {
            logical_reads: 1000,
            logical_writes: 500,
            physical_reads: 100,
            physical_writes: 0,
        };
        WriteTrace {
            inserts: 250,
            total_work: 2.0,
            smo_work: 0.05,
            smo_count: 5,
            restarts: 0,
            per_shard: vec![shard; 16],
            phys_total: 1600,
        }
    }

    #[test]
    fn global_writer_never_scales() {
        let m = WriteContentionModel::default();
        let t = toy_trace();
        assert_eq!(m.makespan_global(&t), m.makespan_global(&t));
        assert!(
            (m.makespan_global(&t) - t.total_work).abs() < 1e-12,
            "the global writer pays the full serial sum"
        );
    }

    #[test]
    fn crabbing_bottoms_out_at_the_binding_floor() {
        let m = WriteContentionModel::default();
        let t = toy_trace();
        let m1 = m.makespan_crabbing(&t, 1);
        let m64 = m.makespan_crabbing(&t, 64);
        assert!(m1 >= m64);
        let shard_floor = m.base.shard_serial_seconds(&t.per_shard[0]);
        let meta_floor = t.inserts as f64 * m.base.seconds_per_latch;
        let floor = shard_floor.max(t.smo_work).max(meta_floor);
        assert!((m64 - floor).abs() < 1e-12, "64 threads bottom out at the binding floor");
    }

    #[test]
    fn quick_run_meets_the_scaling_bar() {
        let report = run(true, None);
        let row = |shards: usize, threads: usize| {
            *report
                .rows
                .iter()
                .find(|r| r.shards == shards && r.threads == threads)
                .expect("configuration measured")
        };
        // The acceptance bar: >= 2x the global-writer baseline at 4
        // writer threads on the sharded pool — and, since miss promotion
        // moved leaf faults off the shard lock, on the 1-shard pool too
        // (the pool lock no longer binds; only SMOs and the meta latch
        // serialize).
        for shards in SHARD_COUNTS {
            assert!(
                row(shards, 4).speedup >= 2.0,
                "expected >= 2x at 4 threads on {shards} shard(s), got {}",
                row(shards, 4).speedup
            );
        }
        assert!(row(16, 8).inserts_per_sec_crabbing >= row(16, 4).inserts_per_sec_crabbing);
        // The baseline is thread-count-invariant by construction.
        assert!(
            (row(16, 1).inserts_per_sec_global - row(16, 8).inserts_per_sec_global).abs() < 1e-9
        );
    }
}
