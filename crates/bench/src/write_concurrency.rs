//! The write-concurrency experiment (ours, not the paper's): modelled
//! insert throughput versus writer threads — the B-link protocol against
//! the latch-crabbing floor it replaced (PR 3) and the global-writer
//! baseline the engine enforced before that.
//!
//! # Methodology
//!
//! Like `fig18` (`crate::concurrency`), this experiment prices concurrency
//! *deterministically*: the insert workload runs once, single-threaded,
//! and every insert's page accesses are read off the pool's per-shard
//! counters, with the latch manager's `splits` counter flagging which
//! inserts performed a structure modification.  The
//! [`WriteContentionModel`] then prices three writer protocols over the
//! identical trace:
//!
//! * **global writer** — the pre-PR 3 contract: every insert holds the
//!   one writer slot, so the batch's makespan is the *sum* of all
//!   per-insert costs no matter how many threads submit work;
//! * **latch crabbing (PR 3, historical)** — leaf-disjoint inserts
//!   overlap, but every split upgraded to the *exclusive tree latch*, so
//!   all structure-modifying inserts formed one serial timeline.  Floor:
//!   `max(per-shard lock holds, Σ SMO insert cost, per-insert meta
//!   hold)`.  On an SMO-heavy workload the serial SMO timeline binds
//!   from a handful of threads on — which is exactly why PR 5 removed
//!   it;
//! * **B-link (PR 5, current)** — splits hold only the splitting node's
//!   latch and post the separator in a separate latched step, so
//!   structure modifications on different nodes overlap like any other
//!   writes.  The global SMO timeline term is *gone from the
//!   implementation and therefore from the model*; what remains serial
//!   is the per-shard lock-hold timeline and the meta-page latch (one
//!   count-bump hold per insert plus one allocation hold per split).
//!
//! Charging identical total work to all protocols isolates exactly the
//! effect under study — which serial floor binds.  Two workloads are
//! traced: the paper-sized configuration (2 KB pages, where splits are
//! rare) and an **SMO-heavy** configuration (256-byte pages, leaf
//! capacity 6, where roughly every third insert splits) that makes the
//! old crabbing floor bind early.  Wall-clock numbers are printed for
//! reference but excluded from the JSON snapshot
//! (`BENCH_write_concurrency.json`), which must stay byte-stable across
//! runs and machines.
//!
//! Alongside the model, the experiment *actually runs* concurrent
//! writers: disjoint insert batches through raw [`ri_btree::BTree`]
//! handles (fanned out by `ri_relstore::fan_out`, the workspace's one
//! thread fan-out scaffold) and [`RiTree::insert_batch`] at every thread
//! count, asserting the final trees are identical to their sequentially
//! built twins — the B-link protocol's correctness is exercised even
//! where its speed cannot be observed on a 1-CPU runner.

use crate::concurrency::ContentionModel;
use crate::harness::{f, section};
use ri_btree::BTree;
use ri_pagestore::{BufferPool, BufferPoolConfig, IoSnapshot, MemDisk, DEFAULT_PAGE_SIZE};
use ritree_core::{Interval, RiTree};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Pool shard counts compared by the experiment.
pub const SHARD_COUNTS: [usize; 2] = [1, 16];
/// Writer thread counts evaluated per shard count.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One traced pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Snapshot-stable name.
    pub name: &'static str,
    /// Page size of the traced pool.
    pub page_size: usize,
    /// Frames in the traced pool (deliberately undersized: it is the
    /// per-insert leaf *misses* that writer concurrency must overlap).
    pub frames: usize,
}

/// The two traced workloads: the paper's block size (splits are rare)
/// and a small-block configuration where splits dominate — the regime
/// that separates the B-link floor from the old crabbing floor.
pub const WORKLOADS: [Workload; 2] = [
    Workload { name: "paper-blocks", page_size: DEFAULT_PAGE_SIZE, frames: 64 },
    Workload { name: "smo-heavy", page_size: 256, frames: 64 },
];

/// Deterministic cost model for concurrent insert batches (see the module
/// docs for the derivation).
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteContentionModel {
    /// Per-access and per-I/O prices, shared with the fig18 model.
    pub base: ContentionModel,
}

/// The single-threaded insert trace the model prices.
pub struct WriteTrace {
    /// Number of inserts.
    pub inserts: usize,
    /// Simulated seconds of every insert summed (I/O + latch + CPU).
    pub total_work: f64,
    /// Simulated seconds of the structure-modifying inserts only (the
    /// serial timeline of the *historical* crabbing protocol).
    pub smo_work: f64,
    /// Inserts that split at least one node.
    pub smo_count: u64,
    /// Total node splits (leaf + internal; each costs one meta-latch
    /// allocation hold under the B-link protocol).
    pub splits: u64,
    /// Right-link chases observed (always 0 single-threaded).
    pub right_link_chases: u64,
    /// Aggregate per-shard access counts over the whole batch.
    pub per_shard: Vec<IoSnapshot>,
    /// Total physical block accesses.
    pub phys_total: u64,
}

impl WriteContentionModel {
    /// Simulated seconds one insert costs given its access counts.
    fn insert_work(&self, io: &IoSnapshot) -> f64 {
        let accesses = (io.logical_reads + io.logical_writes) as f64;
        self.base.latency.simulate(io, 0)
            + accesses * (self.base.seconds_per_latch + self.base.seconds_per_access_cpu)
    }

    /// Makespan under the global-writer protocol: all inserts serialize,
    /// regardless of the submitting thread count.
    pub fn makespan_global(&self, trace: &WriteTrace) -> f64 {
        trace.total_work
    }

    /// The per-shard lock-hold floor shared by both concurrent protocols.
    fn shard_floor(&self, trace: &WriteTrace) -> f64 {
        trace.per_shard.iter().map(|s| self.base.shard_serial_seconds(s)).fold(0.0f64, f64::max)
    }

    /// Makespan under PR 3's latch crabbing (historical): work spreads
    /// over `threads`, floored by the per-shard lock timelines, the
    /// serial SMO timeline (every split held the exclusive tree latch),
    /// and the per-insert meta-latch hold.
    pub fn makespan_crabbing(&self, trace: &WriteTrace, threads: usize) -> f64 {
        let meta_floor = trace.inserts as f64 * self.base.seconds_per_latch;
        (trace.total_work / threads.max(1) as f64)
            .max(self.shard_floor(trace))
            .max(trace.smo_work)
            .max(meta_floor)
    }

    /// Makespan under the B-link protocol: splits overlap like any other
    /// writes, so the global SMO timeline term is gone.  The meta latch
    /// admits one hold at a time — one count bump per insert plus one
    /// allocation hold per split.
    pub fn makespan_blink(&self, trace: &WriteTrace, threads: usize) -> f64 {
        let meta_floor = (trace.inserts as u64 + trace.splits) as f64 * self.base.seconds_per_latch;
        (trace.total_work / threads.max(1) as f64).max(self.shard_floor(trace)).max(meta_floor)
    }
}

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct WriteThroughput {
    /// Traced workload name.
    pub workload: &'static str,
    /// Buffer pool shard count.
    pub shards: usize,
    /// Writer thread count.
    pub threads: usize,
    /// Modelled inserts/second under the global-writer baseline.
    pub inserts_per_sec_global: f64,
    /// Modelled inserts/second under PR 3's latch crabbing (historical).
    pub inserts_per_sec_crabbing: f64,
    /// Modelled inserts/second under the B-link protocol (current).
    pub inserts_per_sec_blink: f64,
    /// B-link over the global-writer baseline.
    pub speedup_vs_global: f64,
    /// B-link over the historical crabbing floor — the price of the
    /// exclusive-tree-latch SMO timeline this PR removed.
    pub speedup_vs_crabbing: f64,
}

/// Deterministic summary of one traced configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// Traced workload name.
    pub workload: &'static str,
    /// Buffer pool shard count of this trace.
    pub shards: usize,
    /// Fraction of inserts that modified structure.
    pub smo_fraction: f64,
    /// Fraction of the total simulated work done by SMO inserts (the
    /// crabbing protocol's serial share).
    pub smo_work_fraction: f64,
    /// Physical block accesses per insert.
    pub phys_io_per_insert: f64,
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct WriteReport {
    /// Inserts in the traced batch.
    pub inserts: usize,
    /// One summary per traced (workload, shards) pair.
    pub traces: Vec<TraceSummary>,
    /// The cost model used.
    pub model: WriteContentionModel,
    /// One entry per (workload, shards, threads) triple.
    pub rows: Vec<WriteThroughput>,
}

/// The insert workload: pseudorandom 3-column keys shaped like the
/// RI-tree's `lowerIndex` entries `(node, lower, id)`.
fn workload_keys(n: usize) -> Vec<[i64; 3]> {
    let mut x = 0x0F19_5EEDu64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            [(x % 512) as i64, (x >> 20) as i64 % 100_000, i as i64]
        })
        .collect()
}

/// Runs the insert batch once, single-threaded, recording per-insert
/// access counts and SMO flags.
///
/// The pool is deliberately undersized relative to the tree the batch
/// builds: an append-heavy index in production outgrows RAM, and it is
/// exactly the per-insert leaf *misses* that writer concurrency must
/// overlap.  With a fully cached tree the only physical I/O left is the
/// page allocations of splits, and the model would (correctly, but
/// uninterestingly) report that nothing scales.
fn trace_inserts(
    cfg: &Workload,
    shards: usize,
    keys: &[[i64; 3]],
    model: &WriteContentionModel,
) -> WriteTrace {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(cfg.page_size),
        BufferPoolConfig::sharded(cfg.frames, shards),
    ));
    let tree = BTree::create(Arc::clone(&pool), 3).expect("create tree");
    let stats = pool.stats();
    let latches = pool.latches();

    let mut total_work = 0.0f64;
    let mut smo_work = 0.0f64;
    let mut smo_count = 0u64;
    let mut before_shards = stats.per_shard();
    let mut before_latches = latches.stats();
    for key in keys {
        tree.insert(&key[..], key[2] as u64).expect("insert");
        let after_shards = stats.per_shard();
        let after_latches = latches.stats();
        let mut io = IoSnapshot::default();
        for (a, b) in after_shards.iter().zip(&before_shards) {
            io.accumulate(&a.since(b));
        }
        let work = model.insert_work(&io);
        total_work += work;
        if after_latches.since(&before_latches).splits > 0 {
            smo_work += work;
            smo_count += 1;
        }
        before_shards = after_shards;
        before_latches = after_latches;
    }
    let per_shard = stats.per_shard();
    let phys_total = per_shard.iter().map(IoSnapshot::physical_total).sum();
    let latch_stats = latches.stats();
    WriteTrace {
        inserts: keys.len(),
        total_work,
        smo_work,
        smo_count,
        splits: latch_stats.splits,
        right_link_chases: latch_stats.right_link_chases,
        per_shard,
        phys_total,
    }
}

/// Real concurrent writers through raw B-link tree handles: every thread
/// inserts a disjoint slice (via the workspace's one fan-out scaffold,
/// `ri_relstore::fan_out`); the result must equal the sequentially built
/// tree entry for entry.
fn verify_concurrent_btree(keys: &[[i64; 3]], threads: usize) -> f64 {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(200, 16),
    ));
    let tree = BTree::create(Arc::clone(&pool), 3).expect("create tree");
    let wall = Instant::now();
    ri_relstore::fan_out(keys, threads, |key| tree.insert(&key[..], key[2] as u64))
        .into_iter()
        .collect::<ri_pagestore::Result<()>>()
        .expect("insert");
    let elapsed = wall.elapsed().as_secs_f64() * 1000.0;
    tree.check_invariants().expect("invariants after concurrent inserts");
    let mut expected: Vec<([i64; 3], u64)> = keys.iter().map(|&k| (k, k[2] as u64)).collect();
    expected.sort();
    let got: Vec<([i64; 3], u64)> = tree
        .scan_all()
        .map(|e| e.expect("scan"))
        .map(|e| ([e.key.col(0), e.key.col(1), e.key.col(2)], e.payload))
        .collect();
    assert_eq!(got, expected, "concurrent insert batch diverged at {threads} threads");
    elapsed
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> WriteReport {
    section("Figure 19: insert throughput vs writer threads, B-link vs crabbing vs global writer");
    let n = if quick { 20_000 } else { 100_000 };
    let keys = workload_keys(n);
    let model = WriteContentionModel::default();

    let mut rows: Vec<WriteThroughput> = Vec::new();
    let mut traces: Vec<TraceSummary> = Vec::new();
    println!("workload,shards,threads,ips_global,ips_crabbing,ips_blink,blink_vs_global,blink_vs_crabbing");
    for cfg in &WORKLOADS {
        for &shards in &SHARD_COUNTS {
            let trace = trace_inserts(cfg, shards, &keys, &model);
            assert_eq!(trace.right_link_chases, 0, "single-threaded traces never chase");
            traces.push(TraceSummary {
                workload: cfg.name,
                shards,
                smo_fraction: trace.smo_count as f64 / trace.inserts as f64,
                smo_work_fraction: trace.smo_work / trace.total_work,
                phys_io_per_insert: trace.phys_total as f64 / trace.inserts as f64,
            });
            for &threads in &THREAD_COUNTS {
                let global = n as f64 / model.makespan_global(&trace);
                let crabbing = n as f64 / model.makespan_crabbing(&trace, threads);
                let blink = n as f64 / model.makespan_blink(&trace, threads);
                println!(
                    "{},{shards},{threads},{},{},{},{},{}",
                    cfg.name,
                    f(global),
                    f(crabbing),
                    f(blink),
                    f(blink / global),
                    f(blink / crabbing)
                );
                rows.push(WriteThroughput {
                    workload: cfg.name,
                    shards,
                    threads,
                    inserts_per_sec_global: global,
                    inserts_per_sec_crabbing: crabbing,
                    inserts_per_sec_blink: blink,
                    speedup_vs_global: blink / global,
                    speedup_vs_crabbing: blink / crabbing,
                });
            }
        }
    }

    // Correctness of the real concurrent write paths (wall-clock numbers
    // are informational; scaling is unobservable on 1-CPU runners).
    for &threads in &THREAD_COUNTS {
        let wall_ms = verify_concurrent_btree(&keys, threads);
        println!(
            "# btree: {threads}-thread concurrent batch equals sequential ({} ms)",
            f(wall_ms)
        );
    }
    verify_ritree_batch(quick);

    println!("# model: the global writer serializes every insert; crabbing (PR 3,");
    println!("# historical) overlapped leaf-disjoint inserts but serialized every split");
    println!("# on the exclusive tree latch; B-link (PR 5) splits hold only the");
    println!("# splitting node's latch, so the serial SMO timeline is gone and the");
    println!("# floor is max(shard lock holds, meta-latch holds)");
    let report = WriteReport { inserts: n, traces, model, rows };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// `RiTree::insert_batch` against per-interval inserts: identical query
/// answers at every thread count.
fn verify_ritree_batch(quick: bool) {
    use crate::harness::fresh_env_sharded;
    let n = if quick { 3_000 } else { 20_000 };
    let data: Vec<(Interval, i64)> = (0..n as i64)
        .map(|id| {
            let l = (id * 37) % 40_000;
            (Interval::new(l, l + 600).unwrap(), id)
        })
        .collect();
    let env = fresh_env_sharded(200, 16);
    let sequential = RiTree::create(Arc::clone(&env.db), "seq").expect("create");
    for &(iv, id) in &data {
        sequential.insert(iv, id).expect("insert");
    }
    let queries: Vec<Interval> =
        (0..16).map(|i| Interval::new(i * 2500, i * 2500 + 900).unwrap()).collect();
    let answers: Vec<Vec<i64>> =
        queries.iter().map(|&q| sequential.intersection(q).expect("query")).collect();
    for &threads in &THREAD_COUNTS {
        let env = fresh_env_sharded(200, 16);
        let tree = RiTree::create(Arc::clone(&env.db), "batch").expect("create");
        let wall = Instant::now();
        tree.insert_batch(&data, threads).expect("insert_batch");
        let wall_ms = wall.elapsed().as_secs_f64() * 1000.0;
        for (q, want) in queries.iter().zip(&answers) {
            assert_eq!(
                &tree.intersection(*q).expect("query"),
                want,
                "insert_batch diverged at {threads} threads"
            );
        }
        println!("# ritree: insert_batch({threads}) equals sequential inserts ({} ms)", f(wall_ms));
    }
}

/// Serializes the deterministic part of the report as JSON (hand-rolled,
/// like the fig18 snapshot; the workspace is offline and needs no serde).
fn write_json(report: &WriteReport, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig19_write_concurrency\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"protocol\": \"B-link (Lehman-Yao): splits hold only the splitting node's \
         latch and post the separator in a separate latched step, so the serial SMO \
         timeline of the PR 3 crabbing protocol is gone; the B-link floor is \
         max(per-shard lock holds, meta-latch holds: one count bump per insert + one \
         allocation per split). The crabbing column is the historical PR 3 floor \
         re-priced over the same trace for comparison\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!("  \"inserts\": {},\n", report.inserts));
    out.push_str("  \"traces\": [\n");
    for (i, t) in report.traces.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"shards\": {}, \"smo_fraction\": {:.5}, \"smo_work_fraction\": {:.5}, \"phys_io_per_insert\": {:.3}}}{}\n",
            t.workload,
            t.shards,
            t.smo_fraction,
            t.smo_work_fraction,
            t.phys_io_per_insert,
            if i + 1 == report.traces.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"model\": {\n");
    out.push_str(&format!(
        "    \"seconds_per_read\": {},\n    \"seconds_per_write\": {},\n    \"seconds_per_latch\": {},\n    \"seconds_per_access_cpu\": {}\n  }},\n",
        report.model.base.latency.seconds_per_read,
        report.model.base.latency.seconds_per_write,
        report.model.base.seconds_per_latch,
        report.model.base.seconds_per_access_cpu
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"shards\": {}, \"threads\": {}, \"inserts_per_sec_global\": {:.3}, \"inserts_per_sec_crabbing\": {:.3}, \"inserts_per_sec_blink\": {:.3}, \"blink_vs_global\": {:.3}, \"blink_vs_crabbing\": {:.3}}}{}\n",
            r.workload,
            r.shards,
            r.threads,
            r.inserts_per_sec_global,
            r.inserts_per_sec_crabbing,
            r.inserts_per_sec_blink,
            r.speedup_vs_global,
            r.speedup_vs_crabbing,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> WriteTrace {
        let shard = IoSnapshot {
            logical_reads: 1000,
            logical_writes: 500,
            physical_reads: 100,
            physical_writes: 0,
        };
        WriteTrace {
            inserts: 250,
            total_work: 2.0,
            smo_work: 0.9,
            smo_count: 80,
            splits: 90,
            right_link_chases: 0,
            per_shard: vec![shard; 16],
            phys_total: 1600,
        }
    }

    #[test]
    fn global_writer_never_scales() {
        let m = WriteContentionModel::default();
        let t = toy_trace();
        assert!(
            (m.makespan_global(&t) - t.total_work).abs() < 1e-12,
            "the global writer pays the full serial sum"
        );
    }

    #[test]
    fn crabbing_bottoms_out_at_its_smo_timeline() {
        let m = WriteContentionModel::default();
        let t = toy_trace();
        let m1 = m.makespan_crabbing(&t, 1);
        let m64 = m.makespan_crabbing(&t, 64);
        assert!(m1 >= m64);
        // smo_work (0.9) dominates every other floor in the toy trace.
        assert!((m64 - t.smo_work).abs() < 1e-12, "crabbing is SMO-timeline-bound");
    }

    #[test]
    fn blink_drops_the_smo_timeline_term() {
        let m = WriteContentionModel::default();
        let t = toy_trace();
        let shard_floor =
            t.per_shard.iter().map(|s| m.base.shard_serial_seconds(s)).fold(0.0f64, f64::max);
        let meta_floor = (t.inserts as u64 + t.splits) as f64 * m.base.seconds_per_latch;
        let floor = shard_floor.max(meta_floor);
        assert!(floor < t.smo_work, "the toy trace is SMO-timeline-bound for crabbing");
        let saturated = m.makespan_blink(&t, 1_000_000);
        assert!((saturated - floor).abs() < 1e-12, "B-link bottoms out below the SMO timeline");
        assert!(
            m.makespan_blink(&t, 64) <= m.makespan_crabbing(&t, 64) / 10.0,
            "on an SMO-bound trace the gap is large at realistic thread counts"
        );
    }

    #[test]
    fn quick_run_meets_the_scaling_bar() {
        let report = run(true, None);
        let row = |workload: &str, shards: usize, threads: usize| {
            *report
                .rows
                .iter()
                .find(|r| r.workload == workload && r.shards == shards && r.threads == threads)
                .expect("configuration measured")
        };
        for cfg in &WORKLOADS {
            for shards in SHARD_COUNTS {
                // B-link must never model slower than the historical
                // crabbing floor, and must keep the PR 3 acceptance bar
                // against the global writer.
                for threads in THREAD_COUNTS {
                    let r = row(cfg.name, shards, threads);
                    assert!(
                        r.speedup_vs_crabbing >= 0.999,
                        "{}: B-link fell below crabbing at {shards} shard(s) x {threads} threads",
                        cfg.name
                    );
                }
                assert!(
                    row(cfg.name, shards, 4).speedup_vs_global >= 2.0,
                    "{}: expected >= 2x vs global at 4 threads on {shards} shard(s)",
                    cfg.name
                );
            }
        }
        // The PR 5 acceptance bar: on the SMO-heavy workload the old
        // crabbing protocol is SMO-timeline-bound at 4+ threads and the
        // B-link protocol beats it.
        for threads in [4, 8] {
            for shards in SHARD_COUNTS {
                let r = row("smo-heavy", shards, threads);
                assert!(
                    r.speedup_vs_crabbing > 1.05,
                    "smo-heavy at {shards} shard(s) x {threads} threads: B-link ({:.0} ips) must \
                     beat the crabbing floor ({:.0} ips)",
                    r.inserts_per_sec_blink,
                    r.inserts_per_sec_crabbing
                );
            }
        }
        // More threads never model slower.
        let r8 = row("smo-heavy", 16, 8);
        let r4 = row("smo-heavy", 16, 4);
        assert!(r8.inserts_per_sec_blink >= r4.inserts_per_sec_blink);
        // The baseline is thread-count-invariant by construction.
        let g1 = row("paper-blocks", 16, 1).inserts_per_sec_global;
        let g8 = row("paper-blocks", 16, 8).inserts_per_sec_global;
        assert!((g1 - g8).abs() < 1e-9);
    }
}
