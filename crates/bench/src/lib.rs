//! Experiment harness for regenerating the paper's evaluation (Section 6).
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! holds the shared machinery: building access methods on the paper's
//! server configuration (2 KB blocks, 200-block cache), running query
//! batches, and reporting the two metrics of the paper — *physical disk
//! block accesses* and *response time* (simulated via the disk latency
//! model plus per-row executor cost, see `ri_pagestore::LatencyModel`).

pub mod commit_latency;
pub mod concurrency;
pub mod figures;
pub mod group_commit;
pub mod harness;
pub mod hot_tier;
pub mod scaleup;
pub mod write_concurrency;

pub use harness::*;
