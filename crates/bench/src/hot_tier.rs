//! Figure 23: the HINT hot tier — comparison-free in-memory queries,
//! and a read-through cache over the paged RI-tree under skew.
//!
//! Two deterministic parts:
//!
//! **Part A (in-memory):** naive scan vs Edelsbrunner interval tree vs
//! HINT over the same D1 dataset, priced in *simulated endpoint
//! comparisons* (each structure's `*_with_cost` query path; see
//! `ri_mem::QueryCost`).  No wall clock — the counts are exact and
//! machine-independent, like every snapshot in this suite.  The claim
//! being priced: HINT answers intersection queries with **zero**
//! endpoint comparisons where the interval tree pays one per secondary-
//! list entry it examines, and the scan pays ~2n.
//!
//! **Part B (read-through tier):** a `HotTier` (64 × 16384-value
//! blocks, 2Q + frequency-gated admission, lowest-frequency-first
//! eviction) in front of an RI-tree on the paper's small-pool
//! configuration, swept over Zipf skew × interval budget at fixed 0.5%
//! selectivity.  Queries draw from the `ri_workloads` Zipf generator;
//! the first half of each stream warms the caches and the second half
//! is measured.  The metric is
//! *physical buffer-pool reads* saved against running the identical
//! stream straight at the tree — the tier's wins come from holding hot
//! blocks as compact triples where the pool holds pages, and from 2Q
//! keeping one-off tail probes from thrashing the budget.
//!
//! Every tier answer is asserted equal to the tree's, so the figure
//! doubles as an end-to-end coherence check.

use crate::harness::{f, fresh_env_with_cache, section};
use ri_mem::{HintIndex, IntervalTree, NaiveIntervalSet, QueryCost};
use ritree_core::{HotTier, HotTierConfig, Interval, RiTree};
use std::sync::Arc;

/// Part A selectivities.
pub const MEM_SELECTIVITIES: [f64; 3] = [0.002, 0.01, 0.05];
/// Part B skew exponents.
pub const TIER_SKEWS: [f64; 4] = [0.0, 0.5, 1.0, 1.5];
/// Part B interval budgets, as numerator of `n * num / 4`.
pub const TIER_BUDGET_QUARTERS: [usize; 3] = [1, 2, 3];
/// Part B query selectivity (≈3.2k-value queries: at most two blocks).
pub const TIER_SELECTIVITY: f64 = 0.005;

/// One structure's aggregate Part A cost at one selectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRow {
    /// `"naive"`, `"interval_tree"`, or `"hint"`.
    pub structure: &'static str,
    /// Summed work counters over the query batch.
    pub cost: QueryCost,
    /// Summed result cardinality (identical across structures).
    pub results: u64,
}

/// Part A at one selectivity.
#[derive(Clone, Debug, PartialEq)]
pub struct MemSel {
    /// Target selectivity.
    pub selectivity: f64,
    /// One row per structure.
    pub rows: Vec<MemRow>,
}

/// Part B measurements for one interval budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierBudget {
    /// Tier capacity in cached intervals.
    pub capacity: usize,
    /// Hit fraction over the measured window.
    pub hit_rate: f64,
    /// Physical pool reads over the measured window, through the tier.
    pub tier_phys: u64,
    /// `baseline_phys / max(tier_phys, 1)`.
    pub saved_ratio: f64,
    /// Blocks admitted (whole run).
    pub admissions: u64,
    /// Blocks evicted (whole run).
    pub evicted_blocks: u64,
}

/// Part B at one skew.
#[derive(Clone, Debug, PartialEq)]
pub struct TierSkew {
    /// Zipf exponent of the query stream.
    pub s: f64,
    /// Physical pool reads over the measured window, straight at the tree.
    pub baseline_phys: u64,
    /// One entry per budget.
    pub budgets: Vec<TierBudget>,
}

/// Everything the experiment produced, ready for printing / JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Part A dataset size.
    pub mem_n: usize,
    /// Part A queries per selectivity.
    pub mem_queries: usize,
    /// Part A results.
    pub mem: Vec<MemSel>,
    /// Part B dataset size.
    pub tier_n: usize,
    /// Part B queries per skew (warmup + measured).
    pub tier_queries: usize,
    /// Part B warmup prefix length.
    pub tier_warmup: usize,
    /// Part B buffer-pool frames.
    pub pool_frames: usize,
    /// Part B results.
    pub skews: Vec<TierSkew>,
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> Report {
    section("Figure 23: HINT hot tier — comparisons in memory, saved physical reads under skew");
    let mem_n = if quick { 100_000 } else { 1_000_000 };
    let mem_queries = if quick { 10 } else { 20 };
    let tier_n = if quick { 20_000 } else { 100_000 };
    let tier_queries = if quick { 1_000 } else { 3_000 };
    let tier_warmup = tier_queries / 2;
    // Full mode uses the paper's 200-frame pool; quick scales it with
    // the 5x smaller dataset so the pool stays pressured.
    let pool_frames = if quick { 50 } else { 200 };

    let mem = run_mem_part(mem_n, mem_queries);
    let skews = run_tier_part(tier_n, tier_queries, tier_warmup, pool_frames);

    println!("# part A: simulated endpoint comparisons; every touched HINT entry is a");
    println!("# result, so its comparison count is structurally zero.");
    println!("# part B: physical reads over the measured window (second half of each");
    println!("# stream); every tier answer asserted equal to the tree's.");
    let report =
        Report { mem_n, mem_queries, mem, tier_n, tier_queries, tier_warmup, pool_frames, skews };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

fn run_mem_part(n: usize, queries_per_sel: usize) -> Vec<MemSel> {
    let spec = ri_workloads::d1(n, 2000);
    let data = spec.generate(31);
    let triples: Vec<(i64, i64, i64)> =
        data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)).collect();
    let naive = NaiveIntervalSet::from_triples(triples.iter().copied());
    let tree = IntervalTree::build(&triples);
    let mut hint = HintIndex::new(0, 20);
    for &(l, u, id) in &triples {
        hint.insert(l, u, id);
    }
    println!(
        "# mem: n = {n}, hint levels = {}, hint replicas = {} ({} per interval)",
        hint.level_count(),
        hint.replica_count(),
        f(hint.replica_count() as f64 / n as f64)
    );
    println!("selectivity,structure,comparisons/query,entries/query,nodes/query,results/query");
    let mut out = Vec::new();
    for (si, &sel) in MEM_SELECTIVITIES.iter().enumerate() {
        let queries =
            ri_workloads::queries_for_selectivity(&spec, sel, queries_per_sel, 40 + si as u64);
        let mut rows: Vec<MemRow> = ["naive", "interval_tree", "hint"]
            .into_iter()
            .map(|structure| MemRow { structure, cost: QueryCost::default(), results: 0 })
            .collect();
        for &(ql, qu) in &queries {
            let (ids_n, c_n) = naive.intersection_with_cost(ql, qu);
            let (ids_t, c_t) = tree.intersection_with_cost(ql, qu);
            let (ids_h, c_h) = hint.intersection_with_cost(ql, qu);
            assert_eq!(ids_n, ids_t, "interval tree diverges at [{ql}, {qu}]");
            assert_eq!(ids_n, ids_h, "hint diverges at [{ql}, {qu}]");
            for (row, (ids, c)) in
                rows.iter_mut().zip([(&ids_n, c_n), (&ids_t, c_t), (&ids_h, c_h)])
            {
                row.cost.comparisons += c.comparisons;
                row.cost.entries += c.entries;
                row.cost.nodes += c.nodes;
                row.results += ids.len() as u64;
            }
        }
        let nq = queries.len() as f64;
        for row in &rows {
            println!(
                "{sel},{},{},{},{},{}",
                row.structure,
                f(row.cost.comparisons as f64 / nq),
                f(row.cost.entries as f64 / nq),
                f(row.cost.nodes as f64 / nq),
                f(row.results as f64 / nq)
            );
        }
        out.push(MemSel { selectivity: sel, rows });
    }
    out
}

fn run_tier_part(n: usize, nq: usize, warmup: usize, pool_frames: usize) -> Vec<TierSkew> {
    let data_spec = ri_workloads::d1(n, 2000);
    let data = data_spec.generate(17);
    let env = fresh_env_with_cache(pool_frames);
    let tree = RiTree::create(Arc::clone(&env.db), "fig23").expect("create RI-tree");
    for (id, &(l, u)) in data.iter().enumerate() {
        tree.insert(Interval::new(l, u).expect("valid interval"), id as i64).expect("insert");
    }
    let mut tree = Some(tree);
    println!("# tier: n = {n}, {nq} queries/skew (first {warmup} warm up), {pool_frames}-frame pool, sel = {TIER_SELECTIVITY}");
    println!("s,budget,hit_rate,baseline_phys,tier_phys,saved_ratio,admissions,evictions");
    let mut out = Vec::new();
    for (ki, &s) in TIER_SKEWS.iter().enumerate() {
        let qspec = ri_workloads::zipf(n, 2000, s);
        let queries: Vec<Interval> =
            ri_workloads::queries_for_selectivity(&qspec, TIER_SELECTIVITY, nq, 100 + ki as u64)
                .into_iter()
                .map(|(l, u)| Interval::new(l, u).expect("valid query"))
                .collect();

        // Baseline: the identical stream straight at the tree.
        let t = tree.take().expect("tree rotates through the tiers");
        env.pool.clear_cache().expect("cache clear");
        let mut answers = Vec::with_capacity(nq);
        let mut baseline_phys = 0u64;
        let mut before = env.pool.stats().snapshot();
        for (qi, &q) in queries.iter().enumerate() {
            if qi == warmup {
                before = env.pool.stats().snapshot();
            }
            answers.push(t.intersection(q).expect("baseline query"));
        }
        baseline_phys += env.pool.stats().snapshot().since(&before).physical_reads;
        tree = Some(t);

        let mut budgets = Vec::new();
        for &quarters in &TIER_BUDGET_QUARTERS {
            let capacity = n * quarters / 4;
            let tier = HotTier::new(
                tree.take().expect("tree rotates through the tiers"),
                HotTierConfig::with_capacity(capacity),
            );
            env.pool.clear_cache().expect("cache clear");
            let mut before = env.pool.stats().snapshot();
            let mut stats_before = tier.stats();
            for (qi, &q) in queries.iter().enumerate() {
                if qi == warmup {
                    before = env.pool.stats().snapshot();
                    stats_before = tier.stats();
                }
                let got = tier.intersection(q).expect("tier query");
                assert_eq!(got, answers[qi], "tier diverges at query {qi} (s = {s})");
            }
            let tier_phys = env.pool.stats().snapshot().since(&before).physical_reads;
            let stats = tier.stats();
            let measured = (nq - warmup) as f64;
            let row = TierBudget {
                capacity,
                hit_rate: (stats.hits - stats_before.hits) as f64 / measured,
                tier_phys,
                saved_ratio: baseline_phys as f64 / tier_phys.max(1) as f64,
                admissions: stats.admissions,
                evicted_blocks: stats.evicted_blocks,
            };
            println!(
                "{s},{capacity},{},{baseline_phys},{tier_phys},{},{},{}",
                f(row.hit_rate),
                f(row.saved_ratio),
                row.admissions,
                row.evicted_blocks
            );
            budgets.push(row);
            tree = Some(tier.into_tree());
        }
        out.push(TierSkew { s, baseline_phys, budgets });
    }
    out
}

/// Serializes the deterministic report as JSON (hand-rolled, like the
/// other snapshots; the workspace is offline and needs no serde).
fn write_json(report: &Report, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig23_hot_tier\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"protocol\": \"part A prices intersection queries in simulated endpoint \
         comparisons over one D1 dataset (naive scan vs Edelsbrunner interval tree vs \
         HINT; exact counters, no wall clock). Part B runs Zipf-skewed query streams \
         through a HINT read-through hot tier over the RI-tree at three interval \
         budgets, measuring physical buffer-pool reads in the post-warmup window \
         against the identical stream straight at the tree; every tier answer is \
         asserted equal to the tree's\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!(
        "  \"memory\": {{\"n\": {}, \"queries_per_selectivity\": {},\n",
        report.mem_n, report.mem_queries
    ));
    out.push_str("   \"selectivities\": [\n");
    for (mi, m) in report.mem.iter().enumerate() {
        out.push_str(&format!("     {{\"selectivity\": {},\n", m.selectivity));
        out.push_str("      \"structures\": [\n");
        for (ri, r) in m.rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"structure\": \"{}\", \"comparisons\": {}, \"entries\": {}, \"nodes\": {}, \"results\": {}}}{}\n",
                r.structure,
                r.cost.comparisons,
                r.cost.entries,
                r.cost.nodes,
                r.results,
                if ri + 1 == m.rows.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!("      ]}}{}\n", if mi + 1 == report.mem.len() { "" } else { "," }));
    }
    out.push_str("   ]},\n");
    out.push_str(&format!(
        "  \"tier\": {{\"n\": {}, \"queries_per_skew\": {}, \"warmup\": {}, \"pool_frames\": {}, \"selectivity\": {},\n",
        report.tier_n, report.tier_queries, report.tier_warmup, report.pool_frames, TIER_SELECTIVITY
    ));
    out.push_str("   \"skews\": [\n");
    for (si, sk) in report.skews.iter().enumerate() {
        out.push_str(&format!(
            "     {{\"s\": {:.1}, \"baseline_phys_reads\": {},\n",
            sk.s, sk.baseline_phys
        ));
        out.push_str("      \"budgets\": [\n");
        for (bi, b) in sk.budgets.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"capacity\": {}, \"hit_rate\": {:.4}, \"tier_phys_reads\": {}, \"saved_ratio\": {:.2}, \"admissions\": {}, \"evicted_blocks\": {}}}{}\n",
                b.capacity,
                b.hit_rate,
                b.tier_phys,
                b.saved_ratio,
                b.admissions,
                b.evicted_blocks,
                if bi + 1 == sk.budgets.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "      ]}}{}\n",
            if si + 1 == report.skews.len() { "" } else { "," }
        ));
    }
    out.push_str("   ]}\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_deterministic_and_meets_the_bars() {
        let a = run(true, None);
        let b = run(true, None);
        assert_eq!(a, b, "fig23 must be run-to-run deterministic");

        // Part A bar: HINT is comparison-free and beats the interval
        // tree on simulated comparisons at every selectivity.
        for sel in &a.mem {
            let tree = sel.rows.iter().find(|r| r.structure == "interval_tree").unwrap();
            let hint = sel.rows.iter().find(|r| r.structure == "hint").unwrap();
            assert_eq!(hint.cost.comparisons, 0, "HINT compares endpoints at {}", sel.selectivity);
            assert!(
                tree.cost.comparisons > 0,
                "interval tree must pay comparisons at {}",
                sel.selectivity
            );
            assert_eq!(hint.results, tree.results, "must report identical results");
        }

        // Part B bar: at classic Zipf skew (s = 1.0) and the largest
        // budget, the tier cuts physical reads at least 5x.
        let zipf1 = a.skews.iter().find(|sk| sk.s == 1.0).unwrap();
        let best = zipf1.budgets.last().unwrap();
        assert!(
            best.saved_ratio >= 5.0,
            "s=1.0 top-budget saved_ratio {:.2} below the 5x bar (baseline {} vs tier {})",
            best.saved_ratio,
            zipf1.baseline_phys,
            best.tier_phys
        );
        // Skew must matter: uniform traffic saves less than hot traffic.
        let uniform = a.skews.iter().find(|sk| sk.s == 0.0).unwrap();
        assert!(
            uniform.budgets.last().unwrap().hit_rate < best.hit_rate,
            "hit rate should grow with skew"
        );
    }
}
