//! The beyond-paper scale-up experiment (ours, not the paper's):
//! building an RI-tree from 1–10 million intervals, bottom-up bulk load
//! versus the repeated-descent build it replaces.
//!
//! # Methodology
//!
//! The paper's own scale-up figure (Figure 14, `fig14`) stops at
//! n = 100,000 — a dataset its 1999-era server could rebuild by
//! per-row insertion.  This experiment extends the axis two orders of
//! magnitude using the PR 7 machinery: a *streamed* D1 workload
//! ([`ri_workloads::WorkloadSpec::stream`], `O(1)` generator memory)
//! feeding [`ritree_core::RiTree::insert_batch`], whose empty-tree bulk
//! route builds both composite indexes bottom-up at fill 1.0.  D1's
//! uniform starting points arrive in *random* key order — the
//! adversarial case for per-row descents (every insert may fault a
//! different leaf) and a matter of indifference to the bulk route,
//! which sorts its run before packing.
//!
//! Two build strategies are priced over identical data:
//!
//! * **bulk (this PR)** — the smaller sizes are *actually built*,
//!   single-threaded on a `MemDisk`, and their exact physical I/O
//!   counters are the figure's data; each run also asserts the built
//!   indexes land on exactly [`ri_btree::predicted_pages`] pages per
//!   index, so the analytic page model is verified, not assumed.  The
//!   largest sizes are then priced from that verified model (each
//!   device page faults in once and writes back once; heap pages scale
//!   linearly from the largest measured anchor).
//! * **descent** — one interval at a time through the ordinary insert
//!   path.  A real run at a calibration size traces the per-insert
//!   physical I/O; larger sizes scale it by `n` and by the half-fill
//!   tree height ratio (descent-built nodes average ~50% fill, so
//!   their trees are taller than the packed ones).  Running ten
//!   million real descents would take hours — which is the point of
//!   the figure.
//!
//! Response times come from [`ri_pagestore::LatencyModel`] (the paper's
//! late-1990s disk) over the physical counters plus one executor-row
//! charge per interval.  Everything in the snapshot
//! (`BENCH_scaleup.json`) derives from deterministic counters and
//! integer arithmetic — byte-stable across runs and machines, like the
//! fig18/fig19/fig20 snapshots.

use crate::harness::section;
use ri_btree::layout::{internal_capacity, leaf_capacity};
use ri_btree::predicted_pages;
use ri_pagestore::{
    BufferPool, BufferPoolConfig, IoSnapshot, LatencyModel, MemDisk, DEFAULT_PAGE_SIZE,
};
use ri_relstore::Database;
use ri_workloads::d1;
use ritree_core::{Interval, RiTree};
use std::io::Write as _;
use std::sync::Arc;

/// Workload seed: every size draws from the same D1 stream family.
pub const SEED: u64 = 42;

/// Mean interval duration (the paper's d = 2000).
pub const MEAN_DURATION: i64 = 2000;

/// Both composite indexes are arity 3: `(node, lower, id)` / `(node,
/// upper, id)`.
pub const INDEX_ARITY: usize = 3;

/// Experiment shape: which sizes are actually built and which are
/// priced from the verified model.
#[derive(Clone, Debug)]
pub struct Config {
    /// Sizes built for real (ascending; the largest is the model anchor).
    pub measured: Vec<u64>,
    /// Sizes priced from the model (ascending, larger than the anchor).
    pub modeled: Vec<u64>,
    /// Per-row inserts traced to calibrate the descent strategy.
    pub calibration_inserts: u64,
}

impl Config {
    /// Full mode: build 1M and 2M for real, extrapolate to 5M and 10M.
    pub fn full() -> Config {
        Config {
            measured: vec![1_000_000, 2_000_000],
            modeled: vec![5_000_000, 10_000_000],
            calibration_inserts: 50_000,
        }
    }

    /// Quick mode: smaller anchors, same modeled axis to 10M.
    pub fn quick() -> Config {
        Config {
            measured: vec![200_000, 500_000],
            modeled: vec![1_000_000, 2_000_000, 5_000_000, 10_000_000],
            calibration_inserts: 15_000,
        }
    }
}

/// The traced facts of one real bulk build.
#[derive(Clone, Copy, Debug)]
pub struct Anchor {
    /// Intervals built.
    pub n: u64,
    /// Device pages the empty schema occupied before the batch.
    pub base_pages: u64,
    /// Device pages after the batch (heap + indexes + catalog).
    pub device_pages: u64,
    /// Pages of ONE index (asserted equal to [`predicted_pages`]).
    pub per_index_pages: u64,
    /// Physical I/O of the batch, flush included.
    pub io: IoSnapshot,
}

impl Anchor {
    /// Heap pages the batch appended.
    pub fn heap_pages(&self) -> u64 {
        self.device_pages - self.base_pages - 2 * self.per_index_pages
    }
}

/// The traced facts of the real per-row-descent calibration run.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Intervals inserted one at a time.
    pub inserts: u64,
    /// Physical I/O of the run, flush included.
    pub io: IoSnapshot,
    /// Half-fill height of one index at the calibration size.
    pub height: u32,
}

/// One figure row: both strategies at one dataset size.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Dataset size.
    pub n: u64,
    /// Whether the bulk column is a real measurement or model-priced.
    pub measured: bool,
    /// Model (and, when measured, also actual) pages per index.
    pub per_index_pages: u64,
    /// Bulk build physical reads / writes.
    pub bulk_reads: u64,
    /// Bulk build physical writes.
    pub bulk_writes: u64,
    /// Descent build physical reads (calibrated model).
    pub descent_reads: u64,
    /// Descent build physical writes (calibrated model).
    pub descent_writes: u64,
}

impl Row {
    /// Modelled seconds for the bulk build.
    pub fn bulk_seconds(&self, m: &LatencyModel) -> f64 {
        m.simulate(&io(self.bulk_reads, self.bulk_writes), self.n)
    }

    /// Modelled seconds for the descent build.
    pub fn descent_seconds(&self, m: &LatencyModel) -> f64 {
        m.simulate(&io(self.descent_reads, self.descent_writes), self.n)
    }

    /// Descent time over bulk time — the figure's headline.
    pub fn speedup(&self, m: &LatencyModel) -> f64 {
        self.descent_seconds(m) / self.bulk_seconds(m)
    }
}

fn io(reads: u64, writes: u64) -> IoSnapshot {
    IoSnapshot { physical_reads: reads, physical_writes: writes, ..IoSnapshot::default() }
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct Report {
    /// The shape that was run.
    pub config: Config,
    /// The descent calibration trace.
    pub calibration: Calibration,
    /// One entry per dataset size, measured anchors first.
    pub rows: Vec<Row>,
}

fn fresh_tree() -> (Arc<BufferPool>, Arc<Database>, RiTree) {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::with_capacity(256),
    ));
    let db = Arc::new(Database::create(Arc::clone(&pool)).unwrap());
    let tree = RiTree::create(Arc::clone(&db), "scale").unwrap();
    (pool, db, tree)
}

fn workload(n: u64) -> Vec<(Interval, i64)> {
    d1(n as usize, MEAN_DURATION)
        .stream(SEED)
        .enumerate()
        .map(|(i, (l, u))| (Interval::new(l, u).unwrap(), i as i64))
        .collect()
}

/// Actually bulk-builds `n` intervals and returns the traced anchor.
/// Panics if the built indexes miss the predicted page count — the
/// model the larger rows are priced from must be *verified* here.
pub fn measure_bulk(n: u64) -> Anchor {
    let (pool, _db, tree) = fresh_tree();
    let items = workload(n);
    let base_pages = pool.num_pages();
    let before = pool.stats().snapshot();
    tree.insert_batch(&items, 1).unwrap();
    pool.flush_all().unwrap();
    let io = pool.stats().snapshot().since(&before);
    let per_index = predicted_pages(
        n,
        leaf_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY),
        internal_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY),
    );
    let storage = tree.storage().unwrap();
    assert_eq!(
        storage.index_pages,
        2 * per_index,
        "bulk build must land on the predicted page count at n = {n}"
    );
    Anchor { n, base_pages, device_pages: pool.num_pages(), per_index_pages: per_index, io }
}

/// Traces `inserts` ordinary per-row descents on a fresh tree.
pub fn calibrate_descent(inserts: u64) -> Calibration {
    let (pool, _db, tree) = fresh_tree();
    let items = workload(inserts);
    let before = pool.stats().snapshot();
    for &(iv, id) in &items {
        tree.insert(iv, id).unwrap();
    }
    pool.flush_all().unwrap();
    let io = pool.stats().snapshot().since(&before);
    Calibration { inserts, io, height: descent_height(inserts) }
}

/// Height of a descent-built (≈half-full) index over `n` entries —
/// taller than the packed tree of the same data, and the factor by
/// which per-insert I/O grows with scale.
pub fn descent_height(n: u64) -> u32 {
    let lc = (leaf_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY) as u64 / 2).max(1);
    let ic = (internal_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY) as u64 / 2).max(1);
    if n == 0 {
        return 0;
    }
    let mut nodes = n.div_ceil(lc);
    let mut height = 1u32;
    while nodes > 1 {
        nodes = nodes.div_ceil(ic + 1);
        height += 1;
    }
    height
}

/// Scales one traced per-insert counter to `n` inserts: linear in `n`,
/// times the height ratio (integer arithmetic, exact and stable).
fn scale_descent(calib_count: u64, calib: &Calibration, n: u64) -> u64 {
    let num = calib_count as u128 * n as u128 * descent_height(n) as u128;
    let den = calib.inserts as u128 * calib.height as u128;
    (num / den) as u64
}

/// Prices a bulk build at `n` from the verified page model and the
/// largest measured anchor: every device page faults in once and
/// writes back once; heap pages scale linearly with `n`.
fn model_bulk(anchor: &Anchor, n: u64) -> (u64, u64, u64) {
    let per_index = predicted_pages(
        n,
        leaf_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY),
        internal_capacity(DEFAULT_PAGE_SIZE, INDEX_ARITY),
    );
    let heap = (anchor.heap_pages() as u128 * n as u128).div_ceil(anchor.n as u128) as u64;
    let pages = anchor.base_pages + heap + 2 * per_index;
    (per_index, pages, pages)
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> Report {
    let config = if quick { Config::quick() } else { Config::full() };
    run_with(config, json_path, quick)
}

/// [`run`] with an explicit shape — the determinism test uses tiny sizes.
pub fn run_with(config: Config, json_path: Option<&std::path::Path>, quick: bool) -> Report {
    section("Figure 21: scale-up to 10M intervals — bottom-up bulk load vs repeated-descent build");
    let model = LatencyModel::default();
    let calibration = calibrate_descent(config.calibration_inserts);
    println!(
        "# descent calibration: {} inserts, {} physical reads, {} physical writes, height {}",
        calibration.inserts,
        calibration.io.physical_reads,
        calibration.io.physical_writes,
        calibration.height
    );

    let mut rows = Vec::new();
    let mut anchor: Option<Anchor> = None;
    println!(
        "n,measured,pages_per_index,bulk_reads,bulk_writes,bulk_seconds,descent_reads,descent_writes,descent_seconds,speedup"
    );
    for &n in &config.measured {
        let a = measure_bulk(n);
        rows.push(Row {
            n,
            measured: true,
            per_index_pages: a.per_index_pages,
            bulk_reads: a.io.physical_reads,
            bulk_writes: a.io.physical_writes,
            descent_reads: scale_descent(calibration.io.physical_reads, &calibration, n),
            descent_writes: scale_descent(calibration.io.physical_writes, &calibration, n),
        });
        anchor = Some(a);
    }
    let anchor = anchor.expect("at least one measured size");
    for &n in &config.modeled {
        let (per_index, reads, writes) = model_bulk(&anchor, n);
        rows.push(Row {
            n,
            measured: false,
            per_index_pages: per_index,
            bulk_reads: reads,
            bulk_writes: writes,
            descent_reads: scale_descent(calibration.io.physical_reads, &calibration, n),
            descent_writes: scale_descent(calibration.io.physical_writes, &calibration, n),
        });
    }
    for r in &rows {
        println!(
            "{},{},{},{},{},{:.1},{},{},{:.1},{:.2}",
            r.n,
            r.measured,
            r.per_index_pages,
            r.bulk_reads,
            r.bulk_writes,
            r.bulk_seconds(&model),
            r.descent_reads,
            r.descent_writes,
            r.descent_seconds(&model),
            r.speedup(&model)
        );
    }
    println!("# model: bulk writes each packed page once (fill 1.0, predicted_pages verified");
    println!("# on the measured anchors); descent pays per-insert leaf faults that grow with");
    println!("# the half-fill tree height — the gap widens as n grows");
    let report = Report { config, calibration, rows };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// Serializes the deterministic report as JSON (hand-rolled, like the
/// fig18/fig19/fig20 snapshots; the workspace is offline, no serde).
fn write_json(report: &Report, path: &std::path::Path, quick: bool) -> std::io::Result<()> {
    let model = LatencyModel::default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig21_scaleup\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"protocol\": \"streamed D1 workload (uniform, i.e. randomly ordered, starting \
         points) built two ways: the PR 7 bottom-up bulk \
         load (measured sizes run for real and asserted to land on predicted_pages per \
         index; larger sizes priced one-fault-in/one-write-back per modeled page) versus \
         per-row descents (real calibration run scaled by n and the half-fill height \
         ratio). Seconds from the paper-era LatencyModel\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str("  \"calibration\": {\n");
    out.push_str(&format!(
        "    \"inserts\": {},\n    \"physical_reads\": {},\n    \"physical_writes\": {},\n    \"height\": {}\n  }},\n",
        report.calibration.inserts,
        report.calibration.io.physical_reads,
        report.calibration.io.physical_writes,
        report.calibration.height
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"measured\": {}, \"pages_per_index\": {}, \"bulk_reads\": {}, \"bulk_writes\": {}, \"bulk_seconds\": {:.3}, \"descent_reads\": {}, \"descent_writes\": {}, \"descent_seconds\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.n,
            r.measured,
            r.per_index_pages,
            r.bulk_reads,
            r.bulk_writes,
            r.bulk_seconds(&model),
            r.descent_reads,
            r.descent_writes,
            r.descent_seconds(&model),
            r.speedup(&model),
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config { measured: vec![15_000], modeled: vec![60_000], calibration_inserts: 3_000 }
    }

    #[test]
    fn descent_height_grows_and_never_shrinks() {
        let mut last = 0;
        for n in [1u64, 100, 10_000, 1_000_000, 10_000_000] {
            let h = descent_height(n);
            assert!(h >= last, "height must be monotone in n");
            last = h;
        }
        assert!(descent_height(10_000_000) > descent_height(15_000));
    }

    #[test]
    fn measured_anchor_is_deterministic_and_verified() {
        let a = measure_bulk(20_000);
        let b = measure_bulk(20_000);
        assert_eq!(a.io, b.io, "bulk build I/O must be exactly repeatable");
        assert_eq!(a.device_pages, b.device_pages);
        assert!(a.heap_pages() > 0);
    }

    #[test]
    fn tiny_run_is_deterministic_and_bulk_wins() {
        let model = LatencyModel::default();
        let a = run_with(tiny(), None, true);
        let b = run_with(tiny(), None, true);
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.bulk_reads, rb.bulk_reads, "n = {}", ra.n);
            assert_eq!(ra.bulk_writes, rb.bulk_writes, "n = {}", ra.n);
            assert_eq!(ra.descent_reads, rb.descent_reads, "n = {}", ra.n);
            assert_eq!(ra.per_index_pages, rb.per_index_pages, "n = {}", ra.n);
        }
        // Bulk wins at every size, and the gap widens with n (at tiny
        // calibration sizes much of the tree is cache-resident, so the
        // ratio starts modest and grows as descents start faulting).
        let mut last = 1.0f64;
        for r in &a.rows {
            let s = r.speedup(&model);
            assert!(s > last, "speedup must exceed 1 and grow with n; n = {}, got {s:.2}x", r.n);
            last = s;
        }
        // The modeled row extrapolates the measured anchor upward.
        assert!(a.rows[1].bulk_writes > a.rows[0].bulk_writes);
        assert!(a.rows[1].descent_reads > 4 * a.rows[0].descent_reads, "superlinear descents");
    }
}
