//! Modelled insert throughput vs writer threads: latch-crabbing writers
//! against the pre-PR 3 global-writer baseline (our write-concurrency
//! experiment; see `ri_bench::write_concurrency` for the deterministic
//! contention model).
//!
//! Usage: `fig19_write_concurrency [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI (conventionally `BENCH_write_concurrency.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_write_concurrency.json");
    ri_bench::write_concurrency::run(quick, json.as_deref());
}
