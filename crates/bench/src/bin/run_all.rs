//! Runs every table/figure experiment in sequence.
//!
//! Default is full (paper-sized) mode; pass `--quick` for a 10x smaller
//! smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!(
        "regenerating all tables and figures ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    ri_bench::figures::table1::run(quick);
    ri_bench::figures::fig10::run(quick);
    ri_bench::figures::fig12::run(quick);
    ri_bench::figures::fig13::run(quick);
    ri_bench::figures::fig14::run(quick);
    ri_bench::figures::fig15::run(quick);
    ri_bench::figures::fig16::run(quick);
    ri_bench::figures::fig17::run(quick);
    ri_bench::figures::table_windowlist::run(quick);
    ri_bench::figures::table_tindex_tuning::run(quick);
}
