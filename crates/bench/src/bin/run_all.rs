//! Runs every table/figure experiment in sequence, driven by
//! `ri_bench::figures::REGISTRY` — one table lists all figures, so a new
//! figure registered there is automatically part of this regeneration.
//!
//! Default is full (paper-sized) mode; pass `--quick` for a 10x smaller
//! smoke run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!(
        "regenerating all {} tables and figures ({} mode)...",
        ri_bench::figures::REGISTRY.len(),
        if quick { "quick" } else { "full" }
    );
    for (name, run) in ri_bench::figures::REGISTRY {
        eprintln!("--- {name} ---");
        run(quick);
    }
}
