//! Mean commit latency vs committing writer threads: inline first-flush
//! against the background WAL flusher, over small and large transactions
//! (our durability experiment; see `ri_bench::commit_latency` for the
//! deterministic flush-policy model).
//!
//! Usage: `fig22_commit_latency [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI (conventionally `BENCH_commit_latency.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_commit_latency.json");
    ri_bench::commit_latency::run(quick, json.as_deref());
}
