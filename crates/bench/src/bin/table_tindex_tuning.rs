//! Regenerates table_tindex_tuning of the paper; pass `--quick` for a 10x smaller run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ri_bench::figures::table_tindex_tuning::run(quick);
}
