//! The HINT hot tier: simulated comparison counts for naive scan vs
//! interval tree vs HINT, then physical buffer-pool reads saved by a
//! read-through tier over the RI-tree under Zipf skew × interval budget
//! (our main-memory experiment; see `ri_bench::hot_tier` for the model).
//!
//! Usage: `fig23_hot_tier [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI (conventionally `BENCH_hint.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_hint.json");
    ri_bench::hot_tier::run(quick, json.as_deref());
}
