//! Query throughput vs reader threads for 1/4/16 buffer-pool shards
//! (our concurrency experiment; see `ri_bench::concurrency` for the
//! deterministic contention model).
//!
//! Usage: `fig18_concurrency [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI's `bench-snapshot` step (conventionally `BENCH_concurrency.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_concurrency.json");
    ri_bench::concurrency::run(quick, json.as_deref());
}
