//! Query throughput vs reader threads for 1/4/16 buffer-pool shards
//! (our concurrency experiment; see `ri_bench::concurrency` for the
//! deterministic contention model).
//!
//! Usage: `fig18_concurrency [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI's `bench-snapshot` step (conventionally `BENCH_concurrency.json`).

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json: Option<PathBuf> = args.iter().position(|a| a == "--json").map(|i| {
        // The value is optional; a following flag means "use the default".
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .filter(|a| !a.starts_with('-'))
            .unwrap_or("BENCH_concurrency.json");
        PathBuf::from(path)
    });
    ri_bench::concurrency::run(quick, json.as_deref());
}
