//! Regenerates fig17 of the paper; pass `--quick` for a 10x smaller run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ri_bench::figures::fig17::run(quick);
}
