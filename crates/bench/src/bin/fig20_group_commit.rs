//! Log fsyncs per committed insert vs committing writer threads: the
//! WAL's leader/follower group commit against the one-fsync-per-commit
//! baseline (our durability experiment; see `ri_bench::group_commit`
//! for the deterministic commit-policy model).
//!
//! Usage: `fig20_group_commit [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI (conventionally `BENCH_group_commit.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_group_commit.json");
    ri_bench::group_commit::run(quick, json.as_deref());
}
