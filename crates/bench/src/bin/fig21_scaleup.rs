//! Beyond-paper scale-up: building 1–10 million intervals, bottom-up
//! bulk load vs the repeated-descent build (our experiment; see
//! `ri_bench::scaleup` for the measured-anchor + verified-model
//! methodology).
//!
//! Usage: `fig21_scaleup [--quick] [--json PATH]`
//!
//! `--json PATH` additionally writes the deterministic snapshot consumed
//! by CI (conventionally `BENCH_scaleup.json`).

fn main() {
    let (quick, json) = ri_bench::snapshot_args("BENCH_scaleup.json");
    ri_bench::scaleup::run(quick, json.as_deref());
}
