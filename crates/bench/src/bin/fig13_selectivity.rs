//! Regenerates fig13 of the paper; pass `--quick` for a 10x smaller run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ri_bench::figures::fig13::run(quick);
}
