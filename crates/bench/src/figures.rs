//! One module per table/figure of the paper's Section 6.
//!
//! Every `run(quick)` prints a self-describing table to stdout; `quick`
//! shrinks database sizes by 10× for smoke runs (used by `cargo test` and
//! the default `run_all`).

use crate::harness::*;
use ri_baselines::{TileIndex, WindowList};
use ri_relstore::IntervalAccessMethod;
use ri_workloads::{
    d1, d2, d3, d4, queries_for_selectivity, restricted_d3, sweep_points, WorkloadSpec, DOMAIN_MAX,
};
use ritree_core::Interval;
use std::sync::Arc;

fn scaled(n: usize, quick: bool) -> usize {
    if quick {
        (n / 10).max(1000)
    } else {
        n
    }
}

/// Figure 10: the intersection query execution plan.
pub mod fig10 {
    use super::*;

    /// Prints the RI-tree's intersection plan next to the paper's plan.
    pub fn run(_quick: bool) {
        section("Figure 10: execution plan for an intersection query");
        let env = fresh_env();
        let data = d1(1000, 2000).generate(42);
        let tree = build_ritree(&env, &data);
        let text = tree.explain(Interval::new(100_000, 150_000).unwrap()).unwrap();
        println!("{text}");
        println!("(paper: SELECT STATEMENT / UNION-ALL / NESTED LOOPS x2 with");
        println!(" COLLECTION ITERATOR + INDEX RANGE SCAN over UPPER/LOWER index)");
    }
}

/// Figure 12: number of index entries vs database size, D4(*, 2k).
pub mod fig12 {
    use super::*;

    /// Exact index-entry counts per method.
    ///
    /// Entry counts are computed by exact decomposition arithmetic (what a
    /// build would insert); a physical build at the smallest size verifies
    /// the arithmetic against the real structures.
    pub fn run(quick: bool) {
        section("Figure 12: index entries vs database size, D4(*,2k)");
        let top = scaled(1_000_000, quick);
        let width = 1i64 << PAPER_TINDEX_LEVEL;
        println!("n,T-index,IST,RI-tree,T-index-redundancy");
        let mut sizes = Vec::new();
        let mut s = top / 10;
        while s <= top {
            sizes.push(s);
            s += top / 10;
        }
        for &n in &sizes {
            let data = d4(n, 2000).generate(1);
            let tindex: u64 = data
                .iter()
                .map(|&(l, u)| (u.div_euclid(width) - l.div_euclid(width) + 1) as u64)
                .sum();
            let ist = n as u64;
            let ri = 2 * n as u64;
            println!("{n},{tindex},{ist},{ri},{}", f(tindex as f64 / n as f64));
        }
        // Verification build at a small size: arithmetic == physical build.
        let n = sizes[0].min(20_000);
        let data = d4(n, 2000).generate(1);
        let env = fresh_env();
        let ti = build_tindex(&env, &data);
        let expected: u64 =
            data.iter().map(|&(l, u)| (u.div_euclid(width) - l.div_euclid(width) + 1) as u64).sum();
        assert_eq!(ti.am_index_entries().unwrap(), expected, "arithmetic vs build mismatch");
        let env2 = fresh_env();
        let ri = build_ritree(&env2, &data);
        assert_eq!(ri.am_index_entries().unwrap(), 2 * n as u64);
        println!("# verified against physical builds at n = {n}");
        println!("# paper: T-index redundancy 10.1 for D4(*,2k); RI-tree = 2 entries/interval");
    }
}

/// Figure 13: disk accesses and response time vs query selectivity,
/// D1(100k, 2k), 100 range queries per point.
pub mod fig13 {
    use super::*;

    /// Runs the selectivity sweep for RI-tree, T-index and IST.
    pub fn run(quick: bool) {
        section("Figure 13: I/O and response time vs selectivity, D1(100k,2k)");
        let n = scaled(100_000, quick);
        let nq = if quick { 20 } else { 100 };
        let spec = d1(n, 2000);
        let data = spec.generate(13);

        let env_ri = fresh_env();
        let ri = build_ritree(&env_ri, &data);
        let env_ti = fresh_env();
        let ti = build_tindex(&env_ti, &data);
        let env_ist = fresh_env();
        let ist = build_ist(&env_ist, &data);

        println!("sel%,phys_io RI,phys_io T-index,phys_io IST,time RI,time T-index,time IST,measured_sel%");
        for sel_pct in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            let queries =
                queries_for_selectivity(&spec, sel_pct / 100.0, nq, 1300 + sel_pct as u64);
            let m_ri = run_queries(&env_ri, &ri, &queries);
            let m_ti = run_queries(&env_ti, &ti, &queries);
            let m_ist = run_queries(&env_ist, &ist, &queries);
            println!(
                "{sel_pct},{},{},{},{},{},{},{}",
                f(m_ri.phys_reads),
                f(m_ti.phys_reads),
                f(m_ist.phys_reads),
                f(m_ri.sim_seconds),
                f(m_ti.sim_seconds),
                f(m_ist.sim_seconds),
                f(m_ri.selectivity(n) * 100.0)
            );
        }
        println!("# paper @0.5%: RI beats T-index 10.8x, IST 46.3x on disk accesses");
        println!("# paper @3.0%: RI beats T-index 22.8x, IST 13.6x on disk accesses");
    }
}

/// Figure 14: disk accesses and response time vs database size,
/// D4(*, 2k) at 0.6 % selectivity, 20 queries per point.
pub mod fig14 {
    use super::*;

    /// Runs the scale-up sweep from 1k to 1M intervals.
    pub fn run(quick: bool) {
        section("Figure 14: scale-up 1k..1M, D4(*,2k), selectivity 0.6%");
        let sizes: &[usize] =
            if quick { &[1_000, 10_000, 100_000] } else { &[1_000, 10_000, 100_000, 1_000_000] };
        let nq = 20;
        println!("n,phys_io RI,phys_io T-index,phys_io IST,time RI,time T-index,time IST");
        for &n in sizes {
            let spec = d4(n, 2000);
            let data = spec.generate(14);
            let queries = queries_for_selectivity(&spec, 0.006, nq, 1400 + n as u64);

            // Build/measure each method in its own environment, dropped
            // before the next to bound memory.
            let (ri_io, ri_t) = {
                let env = fresh_env();
                let ri = build_ritree(&env, &data);
                let m = run_queries(&env, &ri, &queries);
                (m.phys_reads, m.sim_seconds)
            };
            let (ti_io, ti_t) = {
                let env = fresh_env();
                let ti = build_tindex(&env, &data);
                let m = run_queries(&env, &ti, &queries);
                (m.phys_reads, m.sim_seconds)
            };
            let (ist_io, ist_t) = {
                let env = fresh_env();
                let ist = build_ist(&env, &data);
                let m = run_queries(&env, &ist, &queries);
                (m.phys_reads, m.sim_seconds)
            };
            println!(
                "{n},{},{},{},{},{},{}",
                f(ri_io),
                f(ti_io),
                f(ist_io),
                f(ri_t),
                f(ti_t),
                f(ist_t)
            );
        }
        println!("# paper: T-index/IST scale linearly; RI-tree sublinearly;");
        println!("# speedup T-index->RI grows from 2x to 42x (I/O), 2.0x to 4.9x (time)");
    }
}

/// Figure 15: response time vs minimum interval length (granularity),
/// restricted D3(100k, 2k), RI-tree only.
pub mod fig15 {
    use super::*;

    /// Runs the granularity sweep for selectivities 0–1.2 %.
    pub fn run(quick: bool) {
        section("Figure 15: response time vs minimum interval length, restricted D3(100k,2k)");
        let n = scaled(100_000, quick);
        let nq = 20;
        println!("min_len,minstep,height,time 0.0%,time 0.2%,time 0.5%,time 1.2%");
        for min_len in [0i64, 500, 1000, 1500] {
            let spec = restricted_d3(n, min_len);
            let data = spec.generate(15);
            let env = fresh_env();
            let ri = build_ritree(&env, &data);
            let p = ri.load_params().unwrap();
            let mut cells = Vec::new();
            for sel_pct in [0.0, 0.2, 0.5, 1.2] {
                let queries =
                    queries_for_selectivity(&spec, sel_pct / 100.0, nq, 1500 + sel_pct as u64);
                let m = run_queries(&env, &ri, &queries);
                cells.push(f(m.sim_seconds));
            }
            println!("{min_len},{},{},{}", p.minstep2, p.height(), cells.join(","));
        }
        println!("# paper: response time almost independent of the minimum interval length;");
        println!("# larger minstep prunes deeper levels of the virtual backbone");
    }
}

/// Figure 16: response time vs mean interval duration, D4(100k, *) at
/// 1 % selectivity.
pub mod fig16 {
    use super::*;

    /// Runs the duration sweep for RI-tree, T-index and IST.
    pub fn run(quick: bool) {
        section("Figure 16: response time vs mean interval duration, D4(100k,*), sel 1%");
        let n = scaled(100_000, quick);
        let nq = 20;
        println!("mean_len,time RI,time T-index,time IST,T-index redundancy");
        for mean in [0i64, 250, 500, 1000, 1500, 2000] {
            let spec = d4(n, mean);
            let data = spec.generate(16);
            let queries = queries_for_selectivity(&spec, 0.01, nq, 1600 + mean as u64);
            let (ri_t,) = {
                let env = fresh_env();
                let ri = build_ritree(&env, &data);
                (run_queries(&env, &ri, &queries).sim_seconds,)
            };
            let (ti_t, redundancy) = {
                let env = fresh_env();
                let ti = build_tindex(&env, &data);
                (run_queries(&env, &ti, &queries).sim_seconds, ti.redundancy().unwrap())
            };
            let (ist_t,) = {
                let env = fresh_env();
                let ist = build_ist(&env, &data);
                (run_queries(&env, &ist, &queries).sim_seconds,)
            };
            println!("{mean},{},{},{},{}", f(ri_t), f(ti_t), f(ist_t), f(redundancy));
        }
        println!("# paper: RI-tree beats T-index even for points (redundancy 1);");
        println!("# T-index redundancy grows ~1 -> ~10 as mean duration grows 0 -> 2000");
    }
}

/// Figure 17: response time for a sweeping point query, D2(200k, 2k).
pub mod fig17 {
    use super::*;

    /// Runs the sweep of point queries by distance from the domain top.
    pub fn run(quick: bool) {
        section("Figure 17: sweeping point query, D2(200k,2k)");
        let n = scaled(200_000, quick);
        let spec = d2(n, 2000);
        let data = spec.generate(17);

        let env_ri = fresh_env();
        let ri = build_ritree(&env_ri, &data);
        let env_ti = fresh_env();
        let ti = build_tindex(&env_ti, &data);
        let env_ist = fresh_env();
        let ist = build_ist(&env_ist, &data);

        println!("distance_from_top,time RI,time T-index,time IST,phys_io IST");
        for &p in &sweep_points(9, 200_000) {
            let d = DOMAIN_MAX - p;
            // A handful of nearby points for a stable average.
            let queries: Vec<(i64, i64)> = (0..5).map(|j| (p - j * 17, p - j * 17)).collect();
            let m_ri = run_queries(&env_ri, &ri, &queries);
            let m_ti = run_queries(&env_ti, &ti, &queries);
            let m_ist = run_queries(&env_ist, &ist, &queries);
            println!(
                "{d},{},{},{},{}",
                f(m_ri.sim_seconds),
                f(m_ti.sim_seconds),
                f(m_ist.sim_seconds),
                f(m_ist.phys_reads)
            );
        }
        println!("# paper: IST degenerates with distance from the data space's upper bound;");
        println!("# RI-tree and T-index stay flat, RI-tree slightly ahead");
    }
}

/// Section 6.1's Window-List remark: "twice as many I/O operations".
pub mod table_windowlist {
    use super::*;

    /// Compares Window-List I/O against the RI-tree's.
    pub fn run(quick: bool) {
        section("Window-List vs RI-tree (Section 6.1 remark)");
        let n = scaled(100_000, quick);
        let nq = if quick { 20 } else { 100 };
        let spec = d1(n, 2000);
        let data = spec.generate(61);
        let queries = queries_for_selectivity(&spec, 0.005, nq, 6100);

        let env_ri = fresh_env();
        let ri = build_ritree(&env_ri, &data);
        let m_ri = run_queries(&env_ri, &ri, &queries);

        let env_wl = fresh_env();
        let wl = WindowList::build(Arc::clone(&env_wl.db), "bench", &data).unwrap();
        let m_wl = run_queries(&env_wl, &wl, &queries);

        // Sanity: identical answers.
        for &(ql, qu) in queries.iter().take(5) {
            assert_eq!(ri.am_intersection(ql, qu).unwrap(), wl.am_intersection(ql, qu).unwrap());
        }
        println!("method,phys_io,time,rows/interval");
        println!("RI-tree,{},{},2.00", f(m_ri.phys_reads), f(m_ri.sim_seconds));
        println!(
            "Window-List,{},{},{}",
            f(m_wl.phys_reads),
            f(m_wl.sim_seconds),
            f(wl.duplication_factor().unwrap())
        );
        println!("io_ratio,{}", f(m_wl.phys_reads / m_ri.phys_reads.max(1e-9)));
        println!("# paper: Window-List produced twice as many I/Os as the RI-tree");
    }
}

/// Section 6.1's T-index tuning: optimal fixed level per distribution.
pub mod table_tindex_tuning {
    use super::*;

    /// Reports the tuned fixed level per Table 1 distribution.
    pub fn run(_quick: bool) {
        section("T-index fixed-level tuning (Section 6.1)");
        println!("distribution,tuned_level,redundancy@tuned,redundancy@8");
        for (name, spec) in [
            ("D1(100k,2k)", d1(1000, 2000)),
            ("D2(100k,2k)", d2(1000, 2000)),
            ("D3(100k,2k)", d3(1000, 2000)),
            ("D4(100k,2k)", d4(1000, 2000)),
        ] {
            let sample = spec.generate(100);
            let queries = queries_for_selectivity(&spec, 0.01, 20, 101);
            let level = TileIndex::tune_fixed_level(&sample, &queries, 4..=16, 100_000).unwrap();
            let redundancy_at = |lv: u32| {
                let w = 1i64 << lv;
                sample
                    .iter()
                    .map(|&(l, u)| (u.div_euclid(w) - l.div_euclid(w) + 1) as f64)
                    .sum::<f64>()
                    / sample.len() as f64
            };
            println!("{name},{level},{},{}", f(redundancy_at(level)), f(redundancy_at(8)));
        }
        println!("# paper: optimum found at level 7, 8 or 9 (their cost surface includes");
        println!("# per-variable-tile overhead; ours is flatter, hence higher optima)");
    }
}

/// Workload summary for Table 1 (sanity statistics per distribution).
pub mod table1 {
    use super::*;

    fn stats(spec: &WorkloadSpec, seed: u64) -> (f64, f64, f64) {
        let data = spec.generate(seed);
        let n = data.len() as f64;
        let mean_len = data.iter().map(|&(l, u)| (u - l) as f64).sum::<f64>() / n;
        let mean_start = data.iter().map(|&(l, _)| l as f64).sum::<f64>() / n;
        let points = data.iter().filter(|&&(l, u)| l == u).count() as f64 / n;
        (mean_len, mean_start, points)
    }

    /// Prints the realized moments of each Table 1 distribution.
    pub fn run(quick: bool) {
        section("Table 1: sample interval databases (realized statistics)");
        let n = scaled(100_000, quick);
        println!("distribution,mean_length,mean_start,point_fraction");
        for (name, spec) in [
            ("D1(n,2k)", d1(n, 2000)),
            ("D2(n,2k)", d2(n, 2000)),
            ("D3(n,2k)", d3(n, 2000)),
            ("D4(n,2k)", d4(n, 2000)),
        ] {
            let (ml, ms, pf) = stats(&spec, 1);
            println!("{name},{},{},{}", f(ml), f(ms), f(pf));
        }
    }
}

/// A figure entry point: takes `quick` and prints its tables.
pub type FigureFn = fn(bool);

/// Every figure/table experiment in the suite, in run order — the one
/// table `run_all` iterates, so a figure added here is automatically
/// part of the full regeneration and cannot be forgotten.  Names match
/// the standalone binaries in `src/bin/`.
///
/// The snapshot figures (fig18 onward) wrap their module's
/// `run(quick, json_path)` entry point with `json_path = None`; the
/// byte-stable JSON artifacts are produced by the dedicated binaries,
/// which CI double-runs and diffs.
pub const REGISTRY: &[(&str, FigureFn)] = &[
    ("table1", table1::run),
    ("fig10_plan", fig10::run),
    ("fig12_storage", fig12::run),
    ("fig13_selectivity", fig13::run),
    ("fig14_scaleup", fig14::run),
    ("fig15_granularity", fig15::run),
    ("fig16_duration", fig16::run),
    ("fig17_sweep", fig17::run),
    ("table_windowlist", table_windowlist::run),
    ("table_tindex_tuning", table_tindex_tuning::run),
    ("fig18_concurrency", fig18),
    ("fig19_write_concurrency", fig19),
    ("fig20_group_commit", fig20),
    ("fig21_scaleup", fig21),
    ("fig22_commit_latency", fig22),
    ("fig23_hot_tier", fig23),
];

fn fig18(quick: bool) {
    let _ = crate::concurrency::run(quick, None);
}

fn fig19(quick: bool) {
    let _ = crate::write_concurrency::run(quick, None);
}

fn fig20(quick: bool) {
    let _ = crate::group_commit::run(quick, None);
}

fn fig21(quick: bool) {
    let _ = crate::scaleup::run(quick, None);
}

fn fig22(quick: bool) {
    let _ = crate::commit_latency::run(quick, None);
}

fn fig23(quick: bool) {
    let _ = crate::hot_tier::run(quick, None);
}

#[cfg(test)]
mod tests {
    /// Every figure runs end-to-end in quick mode (smoke test for the whole
    /// experiment pipeline).
    #[test]
    fn quick_figures_smoke() {
        super::fig10::run(true);
        super::table1::run(true);
        super::table_tindex_tuning::run(true);
    }

    /// The registry stays in sync with the binaries: distinct names, and
    /// one entry per `src/bin/` figure (run_all itself excluded).
    #[test]
    fn registry_names_are_distinct() {
        let mut names: Vec<&str> = super::REGISTRY.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), super::REGISTRY.len());
    }
}
