//! Shared experiment machinery.

use ri_baselines::{Ist, IstOrder, TileIndex};
use ri_pagestore::{
    BufferPool, BufferPoolConfig, IoSnapshot, LatencyModel, MemDisk, DEFAULT_PAGE_SIZE,
};
use ri_relstore::{Database, IntervalAccessMethod};
use ritree_core::{Interval, RiTree};
use std::sync::Arc;
use std::time::Instant;

/// The fixed level the figure experiments pin for the T-index: the paper's
/// sample-based tuning found "the optimum ... at the level 7, 8 or 9"
/// (Section 6.1); 8 is the midpoint.
pub const PAPER_TINDEX_LEVEL: u32 = 8;

/// A database environment configured like the paper's server: 2 KB blocks,
/// 200-block cache.
pub struct Env {
    /// The shared buffer pool (for I/O statistics).
    pub pool: Arc<BufferPool>,
    /// The database.
    pub db: Arc<Database>,
}

/// Creates a fresh environment with the paper's cache configuration.
pub fn fresh_env() -> Env {
    fresh_env_with_cache(200)
}

/// Creates a fresh environment with a custom cache size (in frames).
pub fn fresh_env_with_cache(frames: usize) -> Env {
    fresh_env_sharded(frames, 1)
}

/// Creates a fresh environment with a lock-striped buffer pool: `frames`
/// total cache frames over `shards` shards (1 = the paper's global cache).
pub fn fresh_env_sharded(frames: usize, shards: usize) -> Env {
    let pool = Arc::new(BufferPool::new(
        MemDisk::new(DEFAULT_PAGE_SIZE),
        BufferPoolConfig::sharded(frames, shards),
    ));
    let db = Arc::new(Database::create(Arc::clone(&pool)).expect("fresh database"));
    Env { pool, db }
}

/// Builds a dynamically loaded RI-tree over `data` (the RI-tree is the
/// *dynamic* method in the comparison; it is never bulk-loaded).
pub fn build_ritree(env: &Env, data: &[(i64, i64)]) -> RiTree {
    let tree = RiTree::create(Arc::clone(&env.db), "bench").expect("create RI-tree");
    for (id, &(l, u)) in data.iter().enumerate() {
        tree.insert(Interval::new(l, u).expect("valid interval"), id as i64).expect("insert");
    }
    tree
}

/// Builds a bulk-loaded T-index at the paper's tuned level.
pub fn build_tindex(env: &Env, data: &[(i64, i64)]) -> TileIndex {
    TileIndex::build_bulk(Arc::clone(&env.db), "bench", PAPER_TINDEX_LEVEL, data)
        .expect("build T-index")
}

/// Builds a bulk-loaded IST with D-ordering (the paper's variant).
pub fn build_ist(env: &Env, data: &[(i64, i64)]) -> Ist {
    Ist::build_bulk(Arc::clone(&env.db), "bench", IstOrder::D, data).expect("build IST")
}

/// Aggregate measurements over a query batch (per-query averages).
#[derive(Clone, Copy, Debug, Default)]
pub struct Measured {
    /// Average physical block reads per query (the paper's "physical I/O").
    pub phys_reads: f64,
    /// Average simulated response time in seconds (latency model).
    pub sim_seconds: f64,
    /// Average wall-clock milliseconds per query on this machine.
    pub wall_ms: f64,
    /// Average result cardinality.
    pub results: f64,
    /// Average rows examined by the executor.
    pub rows_examined: f64,
}

impl Measured {
    /// Measured selectivity given the database cardinality.
    pub fn selectivity(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.results / n as f64
        }
    }
}

/// Runs `queries` against `method` from a cold cache, returning per-query
/// averages.  Mirrors the paper's methodology: a batch of N queries is
/// timed as a whole, with the (small) cache warm across the batch.
pub fn run_queries(
    env: &Env,
    method: &dyn IntervalAccessMethod,
    queries: &[(i64, i64)],
) -> Measured {
    env.pool.clear_cache().expect("cache clear");
    let model = LatencyModel::default();
    let before: IoSnapshot = env.pool.stats().snapshot();
    let mut results = 0u64;
    let mut rows = 0u64;
    let wall = Instant::now();
    for &(ql, qu) in queries {
        let (ids, stats) = method.am_intersection_with_stats(ql, qu).expect("query");
        results += ids.len() as u64;
        rows += stats.rows_examined;
    }
    let wall = wall.elapsed();
    let delta = env.pool.stats().snapshot().since(&before);
    let nq = queries.len().max(1) as f64;
    Measured {
        phys_reads: delta.physical_reads as f64 / nq,
        sim_seconds: model.simulate(&delta, rows) / nq,
        wall_ms: wall.as_secs_f64() * 1000.0 / nq,
        results: results as f64 / nq,
        rows_examined: rows as f64 / nq,
    }
}

/// Parses the concurrency snapshot bins' common CLI:
/// `[--quick] [--json [PATH]]`.  The `--json` value is optional — a
/// following flag (or nothing) means "use `default_json`".  Unknown
/// flags are ignored, like every figure binary.
pub fn snapshot_args(default_json: &str) -> (bool, Option<std::path::PathBuf>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().position(|a| a == "--json").map(|i| {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .filter(|a| !a.starts_with('-'))
            .unwrap_or(default_json);
        std::path::PathBuf::from(path)
    });
    (quick, json)
}

/// Core count of the machine regenerating a snapshot, recorded in the
/// bench JSON metadata.  The modeled columns are machine-independent;
/// this field is prep for the ROADMAP wall-clock item — once CI has
/// multicore runners, snapshots with equal `runner_cores` become
/// wall-clock-comparable too.
pub fn runner_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Prints a CSV header followed by a blank-line-separated block marker so
/// figures can be extracted from `run_all` output.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Formats a float tersely for tables.
pub fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_workloads::{d1, queries_for_selectivity};

    #[test]
    fn harness_smoke_all_methods_agree() {
        let spec = d1(2000, 2000);
        let data = spec.generate(1);
        let queries = queries_for_selectivity(&spec, 0.01, 5, 2);

        let env_ri = fresh_env();
        let ri = build_ritree(&env_ri, &data);
        let env_ti = fresh_env();
        let ti = build_tindex(&env_ti, &data);
        let env_ist = fresh_env();
        let ist = build_ist(&env_ist, &data);

        for &(ql, qu) in &queries {
            let a = ri.am_intersection(ql, qu).unwrap();
            let b = ti.am_intersection(ql, qu).unwrap();
            let c = ist.am_intersection(ql, qu).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        let m = run_queries(&env_ri, &ri, &queries);
        assert!(m.phys_reads > 0.0, "cold-cache queries must read blocks");
        assert!(m.results > 0.0);
    }
}
