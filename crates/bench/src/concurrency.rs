//! The concurrency experiment (ours, not the paper's): query throughput
//! versus reader threads for buffer pools of 1, 4 and 16 shards.
//!
//! # Methodology
//!
//! The paper's figures report *simulated* response times: deterministic
//! physical block counts priced by [`LatencyModel`], so results do not
//! depend on the machine regenerating them.  This experiment extends the
//! same discipline to concurrency, which matters doubly here because CI
//! runners (and this development container) may expose a single CPU —
//! wall-clock multi-thread scaling is unmeasurable there, while the
//! *structural* contention of a global-lock cache is not.
//!
//! [`ContentionModel`] prices a batch of queries executed by `T` reader
//! threads over an `S`-shard pool from two deterministic ingredients,
//! both read off the sharded pool's per-shard counters
//! ([`ri_pagestore::PoolStats::per_shard`]):
//!
//! 1. **Per-shard serial floor** — a shard's lock admits one *lock hold*
//!    at a time.  Since miss promotion (PR 4), a miss holds the lock only
//!    to reserve a frame and again to publish the fetched page; the
//!    device read itself runs **outside** the lock (see
//!    `ri_pagestore::buffer`, "Miss promotion").  So shard `s`
//!    contributes a serial timeline of
//!    `(logical(s) + phys_reads(s) + phys_writes(s))·t_latch` — one
//!    bookkeeping hold per access plus one publish hold per device op —
//!    and *no* device latency.  (Pre-PR 4 the floor charged
//!    `phys·t_read/t_write` too, which made one cold page stall every
//!    hot hit on its shard; that is exactly the term the promotion
//!    removed, from the implementation and therefore from the model.)
//! 2. **Aggregate work spread over `T` threads** — simulated I/O plus
//!    per-access CPU (latch + search) plus the executor's per-row cost,
//!    divided evenly among threads.
//!
//! Simulated makespan is the larger of the two; throughput is
//! `queries / makespan`.  The model charges the same total work to every
//! configuration — sharding only relaxes the serial floor, which is
//! precisely the effect under study.  (Approximations: the access trace
//! is recorded single-threaded, so cache interference between concurrent
//! readers is not modeled, and single-flight coalescing of same-page
//! faults is treated as full overlap — distinct-page fetches in one
//! shard really do overlap, same-page fetches collapse to one read and
//! are priced once.  Shard counts leave hit ratios essentially
//! unchanged, so the comparison across shard counts is fair.)
//!
//! The headline consequence: a **1-shard pool now scales with reader
//! threads on miss-heavy workloads** — its floor is latch bookkeeping,
//! not I/O — and sharding matters only once aggregate latch traffic,
//! not device latency, becomes the bottleneck.
//!
//! Alongside the model, the experiment *actually runs* the batch on real
//! threads through [`RiTree::intersection_batch`] at every configuration
//! and asserts the answers are identical to the sequential run — the
//! façade's correctness is exercised even where its speed cannot be
//! observed.  Wall-clock numbers are printed for reference but kept out
//! of the JSON snapshot, which must stay byte-stable across runs.

use crate::harness::{build_ritree, f, fresh_env_sharded, section, Env};
use ri_pagestore::{IoSnapshot, LatencyModel};
use ri_workloads::{d1, queries_for_selectivity};
use ritree_core::{Interval, RiTree, UPPER_NOW};
use std::io::Write as _;
use std::time::Instant;

/// Shard counts compared by the experiment.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
/// Reader thread counts evaluated per shard count.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic cost model for concurrent query batches (see the module
/// docs for the derivation).
#[derive(Clone, Copy, Debug)]
pub struct ContentionModel {
    /// Prices physical reads/writes and per-row executor CPU.
    pub latency: LatencyModel,
    /// Seconds a page access holds its shard lock for bookkeeping and the
    /// frame memcpy (the simulated late-90s host, like
    /// [`LatencyModel`]'s defaults).
    pub seconds_per_latch: f64,
    /// Seconds of per-access CPU outside the lock (node decode, binary
    /// search).
    pub seconds_per_access_cpu: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            latency: LatencyModel::default(),
            seconds_per_latch: 2.0e-6,
            seconds_per_access_cpu: 5.0e-6,
        }
    }
}

impl ContentionModel {
    /// The serial timeline of one shard: its lock admits one hold at a
    /// time — one bookkeeping hold per logical access (hit or reserve)
    /// plus one publish hold per device operation.  Device reads and
    /// writes run *outside* the lock (miss promotion) and therefore do
    /// not appear here; they are charged to the aggregate work instead.
    pub fn shard_serial_seconds(&self, shard: &IoSnapshot) -> f64 {
        (shard.logical_reads + shard.logical_writes + shard.physical_reads + shard.physical_writes)
            as f64
            * self.seconds_per_latch
    }

    /// Simulated seconds for `threads` readers to drain a batch whose
    /// per-shard access counts are `per_shard` and whose executor touched
    /// `rows` rows.
    pub fn makespan_seconds(&self, per_shard: &[IoSnapshot], rows: u64, threads: usize) -> f64 {
        let mut total = IoSnapshot::default();
        let mut floor = 0.0f64;
        for s in per_shard {
            total.accumulate(s);
            floor = floor.max(self.shard_serial_seconds(s));
        }
        let accesses = (total.logical_reads + total.logical_writes) as f64;
        let work = self.latency.simulate(&total, rows)
            + accesses * (self.seconds_per_latch + self.seconds_per_access_cpu);
        (work / threads.max(1) as f64).max(floor)
    }
}

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Buffer pool shard count.
    pub shards: usize,
    /// Reader thread count.
    pub threads: usize,
    /// Modeled queries per second.
    pub queries_per_sec: f64,
    /// Modeled speedup over the 1-shard pool at the same thread count.
    pub speedup_vs_global_lock: f64,
    /// Average physical block accesses per query (deterministic).
    pub phys_io_per_query: f64,
    /// Largest single shard's share of the serial floor, in seconds.
    pub max_shard_serial_sec: f64,
}

/// Everything the experiment produced, ready for printing / JSON.
pub struct ConcurrencyReport {
    /// Intervals in the database.
    pub intervals: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// The cost model used.
    pub model: ContentionModel,
    /// One entry per (shards, threads) pair, shards-major.
    pub rows: Vec<Throughput>,
}

struct BatchTrace {
    per_shard: Vec<IoSnapshot>,
    rows_examined: u64,
    wall_seq_ms: f64,
}

/// Runs the query batch once, single-threaded, from a cold cache, and
/// records the deterministic per-shard access trace.
fn trace_batch(env: &Env, tree: &RiTree, queries: &[Interval]) -> BatchTrace {
    env.pool.clear_cache().expect("cache clear");
    let stats = env.pool.stats();
    let before = stats.per_shard();
    let mut rows_examined = 0u64;
    let wall = Instant::now();
    for &q in queries {
        let (_, es) = tree.intersection_with_stats(q, UPPER_NOW - 1).expect("query");
        rows_examined += es.rows_examined;
    }
    let wall_seq_ms = wall.elapsed().as_secs_f64() * 1000.0;
    let per_shard: Vec<IoSnapshot> =
        stats.per_shard().iter().zip(&before).map(|(a, b)| a.since(b)).collect();
    BatchTrace { per_shard, rows_examined, wall_seq_ms }
}

/// Runs the experiment; when `json_path` is set, also writes the
/// deterministic snapshot there (the CI `bench-snapshot` artifact).
pub fn run(quick: bool, json_path: Option<&std::path::Path>) -> ConcurrencyReport {
    section("Figure 18: query throughput vs reader threads, pool shards 1/4/16");
    let n = if quick { 10_000 } else { 100_000 };
    let nq = if quick { 50 } else { 200 };
    let spec = d1(n, 2000);
    let data = spec.generate(18);
    let intervals = queries_for_selectivity(&spec, 0.01, nq, 1800);
    let queries: Vec<Interval> =
        intervals.iter().map(|&(l, u)| Interval::new(l, u).expect("valid query")).collect();

    let model = ContentionModel::default();
    let mut rows: Vec<Throughput> = Vec::new();
    // Every configuration's speedup is reported relative to the 1-shard
    // (global-lock) pool at the same thread count, so that baseline must
    // be measured first.
    assert_eq!(SHARD_COUNTS[0], 1, "the global-lock baseline must come first");
    let mut global_lock_qps = vec![0.0f64; THREAD_COUNTS.len()];

    println!("shards,threads,qps_model,speedup_vs_1shard,phys_io/query,max_shard_serial_s");
    for &shards in &SHARD_COUNTS {
        let env = fresh_env_sharded(200, shards);
        let tree = build_ritree(&env, &data);
        let trace = trace_batch(&env, &tree, &queries);
        let phys_total: u64 = trace.per_shard.iter().map(IoSnapshot::physical_total).sum();

        // Correctness of the concurrent façade at every thread count: the
        // threaded batch must reproduce the sequential answers exactly.
        let sequential: Vec<Vec<i64>> =
            queries.iter().map(|&q| tree.intersection(q).expect("query")).collect();
        let mut wall_par_ms = f64::NAN;
        for &threads in &THREAD_COUNTS {
            let wall = Instant::now();
            let batched = tree.intersection_batch(&queries, threads).expect("batch");
            let elapsed_ms = wall.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(batched, sequential, "parallel batch diverged at {threads} threads");
            if threads == 4 {
                wall_par_ms = elapsed_ms;
            }
        }

        for (ti, &threads) in THREAD_COUNTS.iter().enumerate() {
            let makespan = model.makespan_seconds(&trace.per_shard, trace.rows_examined, threads);
            let qps = queries.len() as f64 / makespan;
            if shards == 1 {
                global_lock_qps[ti] = qps;
            }
            let speedup = qps / global_lock_qps[ti];
            let max_floor = trace
                .per_shard
                .iter()
                .map(|s| model.shard_serial_seconds(s))
                .fold(0.0f64, f64::max);
            println!(
                "{shards},{threads},{},{},{},{}",
                f(qps),
                f(speedup),
                f(phys_total as f64 / queries.len() as f64),
                f(max_floor)
            );
            rows.push(Throughput {
                shards,
                threads,
                queries_per_sec: qps,
                speedup_vs_global_lock: speedup,
                phys_io_per_query: phys_total as f64 / queries.len() as f64,
                max_shard_serial_sec: max_floor,
            });
        }
        println!(
            "# shards={shards}: wall sequential {} ms, wall 4-thread batch {} ms (informational, machine-dependent)",
            f(trace.wall_seq_ms),
            f(wall_par_ms)
        );
    }
    println!("# model: device reads run outside the shard lock (miss promotion), so");
    println!("# even the 1-shard pool scales with reader threads on miss-heavy work;");
    println!("# the residual per-shard floor is latch bookkeeping (reserve/hit + publish)");

    let report = ConcurrencyReport { intervals: n, queries: queries.len(), model, rows };
    if let Some(path) = json_path {
        write_json(&report, path, quick).expect("write bench snapshot");
        println!("# wrote {}", path.display());
    }
    report
}

/// Serializes the deterministic part of the report as JSON (hand-rolled;
/// the workspace is offline and needs no serde for one flat schema).
fn write_json(
    report: &ConcurrencyReport,
    path: &std::path::Path,
    quick: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fig18_concurrency\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    // The contention model this snapshot was priced under, so a diff
    // between snapshots from different protocol generations explains
    // itself.  `runner_cores` records the machine (wall-clock columns can
    // only ever be compared across equal core counts; the modeled columns
    // are machine-independent).
    out.push_str(
        "  \"protocol\": \"miss promotion: device reads run outside the shard lock; \
         per-shard serial floor charges lock holds only (one per access + one per \
         device op), not device latency\",\n",
    );
    out.push_str(&format!("  \"runner_cores\": {},\n", crate::harness::runner_cores()));
    out.push_str(&format!("  \"intervals\": {},\n", report.intervals));
    out.push_str(&format!("  \"queries\": {},\n", report.queries));
    out.push_str("  \"model\": {\n");
    out.push_str(&format!(
        "    \"seconds_per_read\": {},\n    \"seconds_per_write\": {},\n    \"seconds_per_row\": {},\n    \"seconds_per_latch\": {},\n    \"seconds_per_access_cpu\": {}\n  }},\n",
        report.model.latency.seconds_per_read,
        report.model.latency.seconds_per_write,
        report.model.latency.seconds_per_row,
        report.model.seconds_per_latch,
        report.model.seconds_per_access_cpu
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"queries_per_sec\": {:.3}, \"speedup_vs_1shard\": {:.3}, \"phys_io_per_query\": {:.3}, \"max_shard_serial_sec\": {:.6}}}{}\n",
            r.shards,
            r.threads,
            r.queries_per_sec,
            r.speedup_vs_global_lock,
            r.phys_io_per_query,
            r.max_shard_serial_sec,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_has_a_hard_serial_floor() {
        let m = ContentionModel::default();
        // One shard holding all the latch traffic: threads cannot push
        // makespan below the shard's lock-hold timeline.
        let shard = IoSnapshot {
            logical_reads: 1000,
            logical_writes: 0,
            physical_reads: 400,
            physical_writes: 0,
        };
        let floor = m.shard_serial_seconds(&shard);
        let m1 = m.makespan_seconds(&[shard], 0, 1);
        let m10k = m.makespan_seconds(&[shard], 0, 10_000);
        assert!(m1 >= m10k);
        assert!((m10k - floor).abs() < 1e-12, "many threads bottom out at the serial floor");
    }

    #[test]
    fn device_latency_no_longer_charges_the_floor() {
        // Same latch traffic, wildly different miss counts: the serial
        // floor must move only by the publish holds (t_latch per miss),
        // never by device read latency — misses are promoted.
        let m = ContentionModel::default();
        let cold = IoSnapshot {
            logical_reads: 1000,
            logical_writes: 0,
            physical_reads: 900,
            physical_writes: 0,
        };
        let warm = IoSnapshot { physical_reads: 0, ..cold };
        let delta = m.shard_serial_seconds(&cold) - m.shard_serial_seconds(&warm);
        assert!((delta - 900.0 * m.seconds_per_latch).abs() < 1e-12);
        assert!(
            delta < 900.0 * m.latency.seconds_per_read / 100.0,
            "900 cold fetches must cost the floor far less than their device time"
        );
    }

    #[test]
    fn spreading_latch_traffic_over_shards_lifts_the_floor() {
        let m = ContentionModel::default();
        // A hit-heavy trace: aggregate work is small, so the latch floor
        // binds and sharding it is what scales.
        let one = IoSnapshot {
            logical_reads: 1_600_000,
            logical_writes: 0,
            physical_reads: 0,
            physical_writes: 0,
        };
        let sixteenth = IoSnapshot { logical_reads: 100_000, ..one };
        let spread = vec![sixteenth; 16];
        let at64_global = m.makespan_seconds(&[one], 0, 64);
        let at64_sharded = m.makespan_seconds(&spread, 0, 64);
        assert!(
            at64_global >= 2.0 * at64_sharded,
            "expected >= 2x: global {at64_global}, sharded {at64_sharded}"
        );
    }

    #[test]
    fn quick_run_meets_the_scaling_bar() {
        let report = run(true, None);
        let qps = |shards: usize, threads: usize| {
            report
                .rows
                .iter()
                .find(|r| r.shards == shards && r.threads == threads)
                .map(|r| r.queries_per_sec)
                .expect("configuration measured")
        };
        // The PR 4 acceptance bar: the 1-shard pool scales with reader
        // threads on this miss-heavy workload, because misses no longer
        // serialize on the shard lock.
        for threads in [4, 8] {
            assert!(
                qps(1, threads) >= 2.0 * qps(1, 1),
                "1-shard pool must scale at {threads} threads once misses are promoted"
            );
        }
        // Sharding can no longer be *worse* than the global pool in any
        // meaningful way (traces differ slightly per shard layout), and
        // more threads never model slower.
        for threads in THREAD_COUNTS {
            assert!(
                qps(16, threads) >= 0.9 * qps(1, threads),
                "16 shards must stay within noise of 1 shard at {threads} threads"
            );
        }
        assert!(qps(16, 8) >= qps(16, 4));
    }
}
