//! Minimal relational engine: the ORDBMS substrate of the reproduction.
//!
//! The paper implements the RI-tree **"on top of the relational query
//! language"** of an Oracle 8i server — plain tables, built-in composite
//! B+-tree indexes, transient session-state tables, and SQL query plans of
//! index range scans under nested-loops joins (Figure 10).  This crate
//! provides exactly those ingredients, from scratch:
//!
//! * [`catalog::Database`] — a persistent catalog of tables and indexes in
//!   the database header page, plus the *data dictionary* of named integer
//!   parameters the paper's Section 5 uses for `offset`, `leftRoot`,
//!   `rightRoot` and `minstep`;
//! * [`heap::Heap`] — fixed-width row storage with stable row ids;
//! * [`table::Table`] — DML that maintains all secondary indexes, the
//!   equivalent of Figure 5's single `INSERT` statement;
//! * [`exec`] — a pull-based physical algebra: `COLLECTION ITERATOR` over
//!   transient tables, `INDEX RANGE SCAN`, `NESTED LOOPS`, `UNION-ALL`,
//!   `FILTER` and `TABLE ACCESS FULL`, which is sufficient to express every
//!   query plan in the paper (RI-tree, Tile Index, IST, MAP21);
//! * [`par`] — the concurrent query façade: independent read plans fan out
//!   over scoped worker threads ([`Database::execute_parallel`]), scaling
//!   with the buffer pool's lock striping;
//! * [`explain`] — renders plans in the style of the paper's Figure 10.
//!
//! Everything is measured: each operator run reports rows examined, and all
//! page I/O flows through the shared [`ri_pagestore::BufferPool`].

pub mod access;
pub mod catalog;
pub mod exec;
pub mod explain;
pub mod heap;
pub mod par;
pub mod sql;
pub mod table;

pub use access::IntervalAccessMethod;
pub use catalog::{Database, IndexDef, TableDef};
pub use exec::{BoundExpr, ExecStats, Plan, Predicate, Row};
pub use heap::{Heap, RowId};
pub use par::{fan_out, PlanResult, Statement, StatementOutcome};
pub use sql::SqlResult;
pub use table::Table;

pub use ri_pagestore::{Error, Result};

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
    use std::sync::Arc;

    #[test]
    fn end_to_end_schema_and_query() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
        let db = Database::create(pool).unwrap();
        // The paper's Figure 2 schema.
        db.create_table(TableDef {
            name: "INTERVALS".into(),
            columns: vec!["node".into(), "lower".into(), "upper".into(), "id".into()],
        })
        .unwrap();
        db.create_index(
            "INTERVALS",
            IndexDef { name: "LOWER_INDEX".into(), key_cols: vec![0, 1, 3] },
        )
        .unwrap();
        let t = db.table("INTERVALS").unwrap();
        t.insert(&[8, 3, 9, 1]).unwrap();
        t.insert(&[8, 5, 12, 2]).unwrap();
        t.insert(&[4, 2, 6, 3]).unwrap();

        let plan = Plan::IndexRangeScan {
            table: "INTERVALS".into(),
            index: "LOWER_INDEX".into(),
            lo: vec![BoundExpr::Const(8), BoundExpr::NegInf, BoundExpr::NegInf],
            hi: vec![BoundExpr::Const(8), BoundExpr::PosInf, BoundExpr::PosInf],
        };
        let mut stats = ExecStats::default();
        let rows = db.execute(&plan, &mut stats).unwrap();
        let ids: Vec<i64> = rows.iter().map(|r| r[2]).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(stats.rows_examined, 2);
    }
}
