//! The extensible-indexing contract (paper Section 5 / Section 2.4).
//!
//! Commercial ORDBMSs let developers package an access method behind a
//! uniform *indextype* interface so that "end users can use the Relational
//! Interval Tree just like a built-in index".  This trait is that contract
//! for the reproduction: the RI-tree and every competitor (Tile Index,
//! IST, MAP21, Window-List) implement it, and the experiment harness
//! drives all of them through it — guaranteeing identical measurement
//! conditions, as in the paper's evaluation.

use crate::exec::ExecStats;
use crate::Result;

/// A dynamic interval access method over the relational engine.
pub trait IntervalAccessMethod {
    /// Short display name for reports (e.g. `"RI-tree"`).
    fn method_name(&self) -> &'static str;

    /// Inserts the interval `[lower, upper]` under `id`.
    fn am_insert(&self, lower: i64, upper: i64, id: i64) -> Result<()>;

    /// Deletes the exact `(interval, id)`; `false` if absent.
    fn am_delete(&self, lower: i64, upper: i64, id: i64) -> Result<bool>;

    /// Sorted ids of stored intervals intersecting `[lower, upper]`
    /// (closed-interval semantics).
    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>>;

    /// Intersection query that also reports executor statistics, which the
    /// experiment harness feeds into the response-time model.
    fn am_intersection_with_stats(&self, lower: i64, upper: i64) -> Result<(Vec<i64>, ExecStats)>;

    /// Total index entries maintained (Figure 12's storage metric).
    fn am_index_entries(&self) -> Result<u64>;

    /// Number of stored intervals.
    fn am_count(&self) -> Result<u64>;
}
