//! Persistent database catalog and parameter dictionary.
//!
//! The catalog lives in the database *header page* (page 0 of the device),
//! so a database can be re-opened from a file-backed pool.  Besides tables
//! and indexes it stores named `i64` parameters — the paper's Section 5
//! notes that "a persistent data dictionary provides a convenient way to
//! store index specific system parameters such as root or minstep", and the
//! RI-tree keeps `offset`, `leftRoot`, `rightRoot` and `minstep` here.

use crate::heap::Heap;
use crate::table::Table;
use parking_lot::RwLock;
use ri_btree::BTree;
use ri_pagestore::codec::{get_i64, get_u16, get_u32, get_u64, put_i64, put_u16, put_u32, put_u64};
use ri_pagestore::{BufferPool, Error, PageId, Result};
use std::sync::Arc;

const DB_MAGIC: u32 = 0x5249_4442; // "RIDB"
const HEADER_PAGE: PageId = PageId(0);
const MAX_NAME: usize = 63;

/// Definition of a new table (DDL `CREATE TABLE`).
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Table name (unique, at most 63 bytes).
    pub name: String,
    /// Column names; all columns are `i64`.
    pub columns: Vec<String>,
}

/// Definition of a new secondary index (DDL `CREATE INDEX`).
///
/// `key_cols` lists column positions in significance order — e.g. the
/// paper's `CREATE INDEX lowerIndex ON Intervals (node, lower)` becomes
/// `key_cols: vec![0, 1]` on a `(node, lower, upper, id)` table.
#[derive(Clone, Debug)]
pub struct IndexDef {
    /// Index name (unique within its table).
    pub name: String,
    /// Positions of the key columns, most significant first.
    pub key_cols: Vec<usize>,
}

#[derive(Clone, Debug)]
pub(crate) struct IndexMeta {
    pub name: String,
    pub key_cols: Vec<usize>,
    pub btree_meta: PageId,
}

#[derive(Clone, Debug)]
pub(crate) struct TableMeta {
    pub name: String,
    pub columns: Vec<String>,
    pub heap_meta: PageId,
    pub indexes: Vec<IndexMeta>,
}

#[derive(Default, Debug)]
pub(crate) struct Catalog {
    pub tables: Vec<TableMeta>,
    pub params: Vec<(String, i64)>,
}

/// A database: a buffer pool plus a persistent catalog.
///
/// All DDL, DML and query execution of the reproduction flows through this
/// type; it plays the role of the Oracle server in the paper's setup.
///
/// The in-memory catalog sits behind a reader-writer lock: metadata
/// lookups (`table`, `get_param`, plan execution) share it, only DDL and
/// parameter writes take it exclusively.  Before PR 3 this was a plain
/// mutex — the next convoy after the buffer pool once queries and writers
/// run on many threads, since *every* executed plan resolves its table
/// and index metadata here.
pub struct Database {
    pool: Arc<BufferPool>,
    catalog: RwLock<Catalog>,
}

impl Database {
    /// Creates a fresh database on an empty pool.
    pub fn create(pool: Arc<BufferPool>) -> Result<Database> {
        if pool.num_pages() != 0 {
            return Err(Error::InvalidArgument(
                "Database::create requires an empty device (use open to re-attach)".to_string(),
            ));
        }
        let header = pool.allocate_page()?;
        debug_assert_eq!(header, HEADER_PAGE);
        let db = Database { pool, catalog: RwLock::new(Catalog::default()) };
        db.persist()?;
        Ok(db)
    }

    /// Re-opens a database from its header page.
    ///
    /// On a durable pool ([`BufferPool::new_durable`]) this first runs
    /// **redo recovery**: the WAL tail found on the log device is replayed
    /// against the data device (committed records redone, the uncommitted
    /// tail rolled back), so the catalog — and everything it points to —
    /// is read from the recovered, committed state.
    ///
    /// A pool built with `FlushPolicy::Background` already owns a running
    /// WAL flusher thread at this point; `open` needs no extra steering.
    /// Pair it with [`Database::close`] to stop the flusher cleanly (the
    /// pool's `Drop` also does, for the crash-test paths that never close).
    pub fn open(pool: Arc<BufferPool>) -> Result<Database> {
        pool.recover()?;
        let catalog = pool.with_page(HEADER_PAGE, decode_catalog)??;
        Ok(Database { pool, catalog: RwLock::new(catalog) })
    }

    /// The underlying buffer pool (for I/O statistics and flushing).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Makes everything done so far durable **without** waiting for a
    /// checkpoint: appends a commit record to the write-ahead log and
    /// group-commits it (one fsync may cover many concurrent committers).
    /// On a pool without a WAL this is a no-op returning `Ok` — there is
    /// no durability to promise, matching the volatile seed behavior.
    pub fn commit(&self) -> Result<()> {
        match self.pool.wal() {
            Some(wal) => wal.commit().map(|_| ()),
            None => Ok(()),
        }
    }

    /// Flushes all cached pages to the device; on a durable pool this
    /// then **truncates** the write-ahead log down to its fuzzy-checkpoint
    /// horizon (records whose page images reached the data device are dead
    /// weight — but any in-flight transaction's rollback pre-images are
    /// spared).  Callers need **not** be quiescent: the WAL samples the
    /// end-of-log fence *before* the write-back pass, so commits and
    /// updates racing this call neither lose durability nor leak
    /// uncommitted state through a post-checkpoint crash.
    pub fn checkpoint(&self) -> Result<()> {
        match self.pool.wal() {
            Some(wal) => {
                // The fence must pre-date the write-back pass: every record
                // below it provably describes a flushed page.
                let fence = wal.end_lsn();
                self.pool.flush_all()?;
                wal.checkpoint(fence)
            }
            None => self.pool.flush_all(),
        }
    }

    /// Orderly shutdown: takes a final [`Database::checkpoint`] (flushing
    /// every dirty page and truncating the log down to retired segments),
    /// then stops and joins the WAL's background flusher thread, if the
    /// pool runs one.  Call before dropping a database you intend to
    /// re-open; skipping it is *safe* — recovery replays the log — just
    /// slower on the next [`Database::open`].  No-op on volatile pools
    /// beyond the page flush.
    pub fn close(&self) -> Result<()> {
        self.checkpoint()?;
        self.pool.stop_flusher();
        Ok(())
    }

    /// Exclusive latch serializing multi-call read-modify-write
    /// transactions on the parameter dictionary (e.g. "load the backbone
    /// parameters, extend them, store them back").  Single [`Database::set_param`]
    /// calls are already atomic under the catalog lock; this guard is for
    /// callers whose *decision* depends on the value they just read.
    pub fn param_guard(&self) -> ri_pagestore::LatchGuard<'_> {
        self.pool.latches().page_exclusive(HEADER_PAGE)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Creates an empty table.
    pub fn create_table(&self, def: TableDef) -> Result<()> {
        check_name(&def.name)?;
        for c in &def.columns {
            check_name(c)?;
        }
        if def.columns.is_empty() {
            return Err(Error::InvalidArgument("table needs at least one column".to_string()));
        }
        let mut cat = self.catalog.write();
        if cat.tables.iter().any(|t| t.name == def.name) {
            return Err(Error::InvalidArgument(format!("table {} already exists", def.name)));
        }
        let heap = Heap::create(Arc::clone(&self.pool), def.columns.len())?;
        cat.tables.push(TableMeta {
            name: def.name,
            columns: def.columns,
            heap_meta: heap.meta_page(),
            indexes: Vec::new(),
        });
        self.persist_locked(&cat)
    }

    /// Creates a secondary index, bulk-building it from existing rows.
    pub fn create_index(&self, table: &str, def: IndexDef) -> Result<()> {
        check_name(&def.name)?;
        let mut cat = self.catalog.write();
        let tmeta = cat
            .tables
            .iter_mut()
            .find(|t| t.name == table)
            .ok_or_else(|| Error::InvalidArgument(format!("no such table {table}")))?;
        if tmeta.indexes.iter().any(|i| i.name == def.name) {
            return Err(Error::InvalidArgument(format!("index {} already exists", def.name)));
        }
        if def.key_cols.is_empty()
            || def.key_cols.len() > ri_btree::MAX_ARITY
            || def.key_cols.iter().any(|&c| c >= tmeta.columns.len())
        {
            return Err(Error::InvalidArgument(format!(
                "invalid key columns {:?} for table {table}",
                def.key_cols
            )));
        }
        // Bulk-build from the current heap contents.
        let heap = Heap::open(Arc::clone(&self.pool), tmeta.heap_meta)?;
        let mut entries: Vec<(Vec<i64>, u64)> = heap
            .scan()?
            .into_iter()
            .map(|(rid, row)| (def.key_cols.iter().map(|&c| row[c]).collect(), rid.raw()))
            .collect();
        entries.sort();
        let tree = BTree::bulk_load(Arc::clone(&self.pool), def.key_cols.len(), entries, 0.9)?;
        tmeta.indexes.push(IndexMeta {
            name: def.name,
            key_cols: def.key_cols,
            btree_meta: tree.meta_page(),
        });
        self.persist_locked(&cat)
    }

    // ------------------------------------------------------------------
    // Handles and metadata
    // ------------------------------------------------------------------

    /// Opens a handle for DML and scans on `name`.
    ///
    /// Handles snapshot the schema: re-obtain them after DDL.
    pub fn table(&self, name: &str) -> Result<Table> {
        let cat = self.catalog.read();
        let tmeta = cat
            .tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| Error::InvalidArgument(format!("no such table {name}")))?;
        Table::from_meta(Arc::clone(&self.pool), tmeta)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Size statistics of an index (entries, height, pages) — the raw data
    /// behind the paper's storage comparison (Figure 12).
    pub fn index_stats(&self, table: &str, index: &str) -> Result<ri_btree::TreeStats> {
        let meta = self.index_meta(table, index)?;
        BTree::open(Arc::clone(&self.pool), meta.btree_meta)?.stats()
    }

    pub(crate) fn index_meta(&self, table: &str, index: &str) -> Result<IndexMeta> {
        let cat = self.catalog.read();
        let tmeta = cat
            .tables
            .iter()
            .find(|t| t.name == table)
            .ok_or_else(|| Error::InvalidArgument(format!("no such table {table}")))?;
        tmeta
            .indexes
            .iter()
            .find(|i| i.name == index)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument(format!("no such index {index} on {table}")))
    }

    pub(crate) fn table_meta(&self, table: &str) -> Result<TableMeta> {
        let cat = self.catalog.read();
        cat.tables
            .iter()
            .find(|t| t.name == table)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument(format!("no such table {table}")))
    }

    // ------------------------------------------------------------------
    // Parameter dictionary
    // ------------------------------------------------------------------

    /// Sets (or overwrites) a named persistent parameter.
    pub fn set_param(&self, name: &str, value: i64) -> Result<()> {
        check_name(name)?;
        let mut cat = self.catalog.write();
        if let Some(p) = cat.params.iter_mut().find(|(n, _)| n == name) {
            p.1 = value;
        } else {
            cat.params.push((name.to_string(), value));
        }
        self.persist_locked(&cat)
    }

    /// Sets several parameters atomically with a single header write.
    ///
    /// Index implementations persist their whole parameter block per update
    /// (the RI-tree's `offset`/`leftRoot`/`rightRoot`/`minstep`); batching
    /// keeps that a single logical page write.
    pub fn set_params(&self, entries: &[(&str, i64)]) -> Result<()> {
        for (name, _) in entries {
            check_name(name)?;
        }
        let mut cat = self.catalog.write();
        for (name, value) in entries {
            if let Some(p) = cat.params.iter_mut().find(|(n, _)| n == name) {
                p.1 = *value;
            } else {
                cat.params.push((name.to_string(), *value));
            }
        }
        self.persist_locked(&cat)
    }

    /// Reads a named persistent parameter.
    pub fn get_param(&self, name: &str) -> Option<i64> {
        self.catalog.read().params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Removes a named parameter; returns whether it existed.
    pub fn unset_param(&self, name: &str) -> Result<bool> {
        let mut cat = self.catalog.write();
        let before = cat.params.len();
        cat.params.retain(|(n, _)| n != name);
        let removed = cat.params.len() != before;
        if removed {
            self.persist_locked(&cat)?;
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Catalog persistence
    // ------------------------------------------------------------------

    fn persist(&self) -> Result<()> {
        let cat = self.catalog.read();
        self.persist_locked(&cat)
    }

    fn persist_locked(&self, cat: &Catalog) -> Result<()> {
        let encoded = encode_catalog(cat, self.pool.page_size())?;
        self.pool.with_page_mut(HEADER_PAGE, |buf| buf.copy_from_slice(&encoded))
    }
}

fn check_name(name: &str) -> Result<()> {
    if name.is_empty() || name.len() > MAX_NAME {
        return Err(Error::InvalidArgument(format!("name {name:?} must be 1..={MAX_NAME} bytes")));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Header page encoding
// ----------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.buf.len() {
            return Err(Error::InvalidArgument(
                "catalog overflows the header page; use shorter names or fewer objects".to_string(),
            ));
        }
        Ok(())
    }
    fn put_str(&mut self, s: &str) -> Result<()> {
        self.need(1 + s.len())?;
        self.buf[self.pos] = s.len() as u8;
        self.buf[self.pos + 1..self.pos + 1 + s.len()].copy_from_slice(s.as_bytes());
        self.pos += 1 + s.len();
        Ok(())
    }
    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.need(8)?;
        put_u64(self.buf, self.pos, v);
        self.pos += 8;
        Ok(())
    }
    fn put_i64(&mut self, v: i64) -> Result<()> {
        self.need(8)?;
        put_i64(self.buf, self.pos, v);
        self.pos += 8;
        Ok(())
    }
    fn put_u8(&mut self, v: u8) -> Result<()> {
        self.need(1)?;
        self.buf[self.pos] = v;
        self.pos += 1;
        Ok(())
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn get_str(&mut self) -> Result<String> {
        let len = self.buf[self.pos] as usize;
        let s = std::str::from_utf8(&self.buf[self.pos + 1..self.pos + 1 + len])
            .map_err(|_| Error::Corrupt("catalog string is not UTF-8".to_string()))?
            .to_string();
        self.pos += 1 + len;
        Ok(s)
    }
    fn get_u64(&mut self) -> u64 {
        let v = get_u64(self.buf, self.pos);
        self.pos += 8;
        v
    }
    fn get_i64(&mut self) -> i64 {
        let v = get_i64(self.buf, self.pos);
        self.pos += 8;
        v
    }
    fn get_u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }
}

fn encode_catalog(cat: &Catalog, page_size: usize) -> Result<Vec<u8>> {
    let mut out = vec![0u8; page_size];
    put_u32(&mut out, 0, DB_MAGIC);
    put_u16(&mut out, 4, cat.tables.len() as u16);
    put_u16(&mut out, 6, cat.params.len() as u16);
    let mut cur = Cursor { buf: &mut out, pos: 8 };
    for t in &cat.tables {
        cur.put_str(&t.name)?;
        cur.put_u8(t.columns.len() as u8)?;
        for c in &t.columns {
            cur.put_str(c)?;
        }
        cur.put_u64(t.heap_meta.raw())?;
        cur.put_u8(t.indexes.len() as u8)?;
        for i in &t.indexes {
            cur.put_str(&i.name)?;
            cur.put_u8(i.key_cols.len() as u8)?;
            for &c in &i.key_cols {
                cur.put_u8(c as u8)?;
            }
            cur.put_u64(i.btree_meta.raw())?;
        }
    }
    for (name, value) in &cat.params {
        cur.put_str(name)?;
        cur.put_i64(*value)?;
    }
    Ok(out)
}

fn decode_catalog(buf: &[u8]) -> Result<Catalog> {
    if get_u32(buf, 0) != DB_MAGIC {
        return Err(Error::Corrupt("header page magic mismatch — not a database".to_string()));
    }
    let n_tables = get_u16(buf, 4) as usize;
    let n_params = get_u16(buf, 6) as usize;
    let mut r = Reader { buf, pos: 8 };
    let mut cat = Catalog::default();
    for _ in 0..n_tables {
        let name = r.get_str()?;
        let n_cols = r.get_u8() as usize;
        let columns = (0..n_cols).map(|_| r.get_str()).collect::<Result<Vec<_>>>()?;
        let heap_meta = PageId(r.get_u64());
        let n_idx = r.get_u8() as usize;
        let mut indexes = Vec::with_capacity(n_idx);
        for _ in 0..n_idx {
            let iname = r.get_str()?;
            let n_keys = r.get_u8() as usize;
            let key_cols = (0..n_keys).map(|_| r.get_u8() as usize).collect();
            let btree_meta = PageId(r.get_u64());
            indexes.push(IndexMeta { name: iname, key_cols, btree_meta });
        }
        cat.tables.push(TableMeta { name, columns, heap_meta, indexes });
    }
    for _ in 0..n_params {
        let name = r.get_str()?;
        let value = r.get_i64();
        cat.params.push((name, value));
    }
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPoolConfig, MemDisk};

    fn fresh_db() -> Database {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(32)));
        Database::create(pool).unwrap()
    }

    #[test]
    fn create_requires_empty_device() {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(8)));
        pool.allocate_page().unwrap();
        assert!(Database::create(pool).is_err());
    }

    #[test]
    fn ddl_roundtrips_through_reopen() {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(32)));
        {
            let db = Database::create(Arc::clone(&pool)).unwrap();
            db.create_table(TableDef { name: "T".into(), columns: vec!["a".into(), "b".into()] })
                .unwrap();
            db.create_index("T", IndexDef { name: "IA".into(), key_cols: vec![0] }).unwrap();
            db.set_param("offset", -17).unwrap();
            let t = db.table("T").unwrap();
            t.insert(&[1, 2]).unwrap();
            db.checkpoint().unwrap();
        }
        let db = Database::open(pool).unwrap();
        assert_eq!(db.table_names(), vec!["T".to_string()]);
        assert_eq!(db.get_param("offset"), Some(-17));
        let t = db.table("T").unwrap();
        assert_eq!(t.row_count().unwrap(), 1);
        assert_eq!(db.index_stats("T", "IA").unwrap().entries, 1);
    }

    #[test]
    fn durable_commit_roundtrips_without_checkpoint() {
        let data = Arc::new(MemDisk::new(2048));
        let wal = Arc::new(MemDisk::new(2048));
        let pool = Arc::new(
            BufferPool::new_durable(
                Arc::clone(&data),
                BufferPoolConfig::with_capacity(32),
                Arc::clone(&wal),
            )
            .unwrap(),
        );
        {
            let db = Database::create(Arc::clone(&pool)).unwrap();
            db.create_table(TableDef { name: "T".into(), columns: vec!["a".into()] }).unwrap();
            let t = db.table("T").unwrap();
            for i in 0..50 {
                t.insert(&[i]).unwrap();
            }
            db.commit().unwrap();
            // No checkpoint: everything committed lives only in cache + WAL.
        }
        drop(pool);
        // Reopen from the same devices; `open` replays the WAL tail.
        let pool = Arc::new(
            BufferPool::new_durable(data, BufferPoolConfig::with_capacity(32), wal).unwrap(),
        );
        let db = Database::open(pool).unwrap();
        let t = db.table("T").unwrap();
        assert_eq!(t.row_count().unwrap(), 50);
    }

    #[test]
    fn commit_is_a_noop_on_volatile_pools() {
        let db = fresh_db();
        db.commit().unwrap();
    }

    #[test]
    fn duplicate_ddl_rejected() {
        let db = fresh_db();
        let def = TableDef { name: "T".into(), columns: vec!["a".into()] };
        db.create_table(def.clone()).unwrap();
        assert!(db.create_table(def).is_err());
        let idef = IndexDef { name: "I".into(), key_cols: vec![0] };
        db.create_index("T", idef.clone()).unwrap();
        assert!(db.create_index("T", idef).is_err());
        assert!(db.create_index("T", IndexDef { name: "J".into(), key_cols: vec![5] }).is_err());
        assert!(db
            .create_index("MISSING", IndexDef { name: "K".into(), key_cols: vec![0] })
            .is_err());
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let db = fresh_db();
        db.create_table(TableDef { name: "T".into(), columns: vec!["a".into(), "b".into()] })
            .unwrap();
        let t = db.table("T").unwrap();
        for i in 0..100 {
            t.insert(&[i % 7, i]).unwrap();
        }
        db.create_index("T", IndexDef { name: "I".into(), key_cols: vec![0, 1] }).unwrap();
        assert_eq!(db.index_stats("T", "I").unwrap().entries, 100);
    }

    #[test]
    fn params_update_and_unset() {
        let db = fresh_db();
        assert_eq!(db.get_param("x"), None);
        db.set_param("x", 1).unwrap();
        db.set_param("x", 2).unwrap();
        assert_eq!(db.get_param("x"), Some(2));
        assert!(db.unset_param("x").unwrap());
        assert!(!db.unset_param("x").unwrap());
        assert_eq!(db.get_param("x"), None);
    }

    #[test]
    fn open_rejects_non_database() {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(8)));
        pool.allocate_page().unwrap();
        assert!(Database::open(pool).is_err());
    }
}
