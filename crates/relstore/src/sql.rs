//! A small SQL front-end.
//!
//! The paper presents everything through SQL — the DDL of Figure 2, the
//! `INSERT` of Figure 5, the queries of Figures 8/9/11.  This module lets
//! those statements run literally against the engine:
//!
//! * `CREATE TABLE t (a int, b int, ...)`
//! * `CREATE INDEX i ON t (a, b, ...)`
//! * `INSERT INTO t VALUES (1, 2, ...)`
//! * `SELECT a, b | * FROM t [WHERE <predicate>]`
//! * `DELETE FROM t [WHERE <predicate>]`
//!
//! Predicates are boolean combinations (`AND`, `OR`, parentheses) of
//! column/constant comparisons (`=`, `<`, `<=`, `>`, `>=`), plus `BETWEEN`.
//! Keywords are case-insensitive; table and index identifiers are
//! case-sensitive (they name catalog objects verbatim), while column names
//! match case-insensitively.  `SELECT` compiles to `TABLE ACCESS FULL` +
//! `FILTER` + `PROJECTION`;
//! there is deliberately **no optimizer** — the paper's point is precisely
//! that the RI-tree builds its plans itself (Section 4.2) and hands the
//! host engine only index range scans, so the SQL layer here serves DDL,
//! data loading and inspection.

use crate::catalog::{Database, IndexDef, TableDef};
use crate::exec::{CmpOp, ExecStats, Plan, Predicate, Row};
use ri_pagestore::{Error, Result};

/// Result of executing one SQL statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlResult {
    /// DDL succeeded.
    Created,
    /// Number of rows inserted or deleted.
    RowsAffected(u64),
    /// Query result: column names and rows.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Row>,
    },
}

impl Database {
    /// Parses and executes one SQL statement.
    pub fn execute_sql(&self, sql: &str) -> Result<SqlResult> {
        let tokens = tokenize(sql)?;
        let mut p = Parser { tokens, pos: 0 };
        let stmt = p.statement()?;
        p.expect_end()?;
        self.run(stmt)
    }

    fn run(&self, stmt: Stmt) -> Result<SqlResult> {
        match stmt {
            Stmt::CreateTable { name, columns } => {
                self.create_table(TableDef { name, columns })?;
                Ok(SqlResult::Created)
            }
            Stmt::CreateIndex { name, table, columns } => {
                let meta = self.table_meta(&table)?;
                let key_cols = columns
                    .iter()
                    .map(|c| column_position(&meta.columns, c))
                    .collect::<Result<Vec<_>>>()?;
                self.create_index(&table, IndexDef { name, key_cols })?;
                Ok(SqlResult::Created)
            }
            Stmt::Insert { table, values } => {
                let t = self.table(&table)?;
                t.insert(&values)?;
                Ok(SqlResult::RowsAffected(1))
            }
            Stmt::Select { columns, table, predicate } => {
                let meta = self.table_meta(&table)?;
                let pred = predicate
                    .map(|p| p.bind(&meta.columns))
                    .transpose()?
                    .unwrap_or(Predicate::True);
                let out_cols: Vec<usize> = match &columns {
                    Projection::Star => (0..meta.columns.len()).collect(),
                    Projection::Columns(names) => names
                        .iter()
                        .map(|c| column_position(&meta.columns, c))
                        .collect::<Result<Vec<_>>>()?,
                };
                let names: Vec<String> =
                    out_cols.iter().map(|&i| meta.columns[i].clone()).collect();
                let plan = Plan::Project {
                    input: Box::new(Plan::Filter {
                        input: Box::new(Plan::TableScan { table }),
                        pred,
                    }),
                    cols: out_cols,
                };
                let mut stats = ExecStats::default();
                let rows = self.execute(&plan, &mut stats)?;
                Ok(SqlResult::Rows { columns: names, rows })
            }
            Stmt::Delete { table, predicate } => {
                let meta = self.table_meta(&table)?;
                let pred = predicate
                    .map(|p| p.bind(&meta.columns))
                    .transpose()?
                    .unwrap_or(Predicate::True);
                let t = self.table(&table)?;
                let victims: Vec<_> = t
                    .scan()?
                    .into_iter()
                    .filter(|(_, row)| pred.matches(row))
                    .map(|(rid, _)| rid)
                    .collect();
                let mut n = 0;
                for rid in victims {
                    if t.delete(rid)? {
                        n += 1;
                    }
                }
                Ok(SqlResult::RowsAffected(n))
            }
        }
    }
}

fn column_position(columns: &[String], name: &str) -> Result<usize> {
    columns
        .iter()
        .position(|c| c.eq_ignore_ascii_case(name))
        .ok_or_else(|| Error::InvalidArgument(format!("unknown column {name}")))
}

// ----------------------------------------------------------------------
// AST
// ----------------------------------------------------------------------

enum Stmt {
    CreateTable { name: String, columns: Vec<String> },
    CreateIndex { name: String, table: String, columns: Vec<String> },
    Insert { table: String, values: Vec<i64> },
    Select { columns: Projection, table: String, predicate: Option<PredAst> },
    Delete { table: String, predicate: Option<PredAst> },
}

enum Projection {
    Star,
    Columns(Vec<String>),
}

enum PredAst {
    Cmp { column: String, op: CmpOp, value: i64 },
    Between { column: String, lo: i64, hi: i64 },
    And(Vec<PredAst>),
    Or(Vec<PredAst>),
}

impl PredAst {
    /// Resolves column names to positions.
    fn bind(&self, columns: &[String]) -> Result<Predicate> {
        Ok(match self {
            PredAst::Cmp { column, op, value } => Predicate::CmpConst {
                col: column_position(columns, column)?,
                op: *op,
                value: *value,
            },
            PredAst::Between { column, lo, hi } => {
                let col = column_position(columns, column)?;
                Predicate::And(vec![
                    Predicate::CmpConst { col, op: CmpOp::Ge, value: *lo },
                    Predicate::CmpConst { col, op: CmpOp::Le, value: *hi },
                ])
            }
            PredAst::And(ps) => {
                Predicate::And(ps.iter().map(|p| p.bind(columns)).collect::<Result<_>>()?)
            }
            PredAst::Or(ps) => {
                Predicate::Or(ps.iter().map(|p| p.bind(columns)).collect::<Result<_>>()?)
            }
        })
    }
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(i64),
    LParen,
    RParen,
    Comma,
    Star,
    Op(CmpOp),
}

fn tokenize(sql: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = sql.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' | ';' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &sql[start..i];
                let v = text
                    .parse::<i64>()
                    .map_err(|_| Error::InvalidArgument(format!("bad number {text:?} in SQL")))?;
                out.push(Tok::Number(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(Error::InvalidArgument(format!(
                    "unexpected character {other:?} in SQL"
                )))
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument("unexpected end of SQL".to_string()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos != self.tokens.len() {
            return Err(Error::InvalidArgument(format!(
                "trailing tokens after statement: {:?}",
                &self.tokens[self.pos..]
            )));
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(Error::InvalidArgument(format!("expected identifier, got {t:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let s = self.ident()?;
        if s.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(Error::InvalidArgument(format!("expected {kw}, got {s}")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn number(&mut self) -> Result<i64> {
        match self.next()? {
            Tok::Number(v) => Ok(v),
            t => Err(Error::InvalidArgument(format!("expected number, got {t:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(Error::InvalidArgument(format!("expected {tok:?}, got {t:?}")))
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        let head = self.ident()?;
        match head.to_ascii_uppercase().as_str() {
            "CREATE" => {
                let what = self.ident()?;
                if what.eq_ignore_ascii_case("TABLE") {
                    let name = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let mut columns = Vec::new();
                    loop {
                        let col = self.ident()?;
                        // Optional type name (e.g. "int"), ignored like a
                        // single-typed engine should.
                        if matches!(self.peek(), Some(Tok::Ident(_))) {
                            let _ = self.ident()?;
                        }
                        columns.push(col);
                        match self.next()? {
                            Tok::Comma => continue,
                            Tok::RParen => break,
                            t => {
                                return Err(Error::InvalidArgument(format!(
                                    "expected , or ) in column list, got {t:?}"
                                )))
                            }
                        }
                    }
                    Ok(Stmt::CreateTable { name, columns })
                } else if what.eq_ignore_ascii_case("INDEX") {
                    let name = self.ident()?;
                    self.keyword("ON")?;
                    let table = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let mut columns = Vec::new();
                    loop {
                        columns.push(self.ident()?);
                        match self.next()? {
                            Tok::Comma => continue,
                            Tok::RParen => break,
                            t => {
                                return Err(Error::InvalidArgument(format!(
                                    "expected , or ) in key list, got {t:?}"
                                )))
                            }
                        }
                    }
                    Ok(Stmt::CreateIndex { name, table, columns })
                } else {
                    Err(Error::InvalidArgument(format!("CREATE {what} not supported")))
                }
            }
            "INSERT" => {
                self.keyword("INTO")?;
                let table = self.ident()?;
                self.keyword("VALUES")?;
                self.expect(Tok::LParen)?;
                let mut values = Vec::new();
                loop {
                    values.push(self.number()?);
                    match self.next()? {
                        Tok::Comma => continue,
                        Tok::RParen => break,
                        t => {
                            return Err(Error::InvalidArgument(format!(
                                "expected , or ) in VALUES, got {t:?}"
                            )))
                        }
                    }
                }
                Ok(Stmt::Insert { table, values })
            }
            "SELECT" => {
                let columns = if matches!(self.peek(), Some(Tok::Star)) {
                    self.next()?;
                    Projection::Star
                } else {
                    let mut cols = vec![self.ident()?];
                    while matches!(self.peek(), Some(Tok::Comma)) {
                        self.next()?;
                        cols.push(self.ident()?);
                    }
                    Projection::Columns(cols)
                };
                self.keyword("FROM")?;
                let table = self.ident()?;
                let predicate = if self.peek_keyword("WHERE") {
                    self.next()?;
                    Some(self.or_expr()?)
                } else {
                    None
                };
                Ok(Stmt::Select { columns, table, predicate })
            }
            "DELETE" => {
                self.keyword("FROM")?;
                let table = self.ident()?;
                let predicate = if self.peek_keyword("WHERE") {
                    self.next()?;
                    Some(self.or_expr()?)
                } else {
                    None
                };
                Ok(Stmt::Delete { table, predicate })
            }
            other => Err(Error::InvalidArgument(format!("unsupported statement {other}"))),
        }
    }

    fn or_expr(&mut self) -> Result<PredAst> {
        let mut terms = vec![self.and_expr()?];
        while self.peek_keyword("OR") {
            self.next()?;
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { PredAst::Or(terms) })
    }

    fn and_expr(&mut self) -> Result<PredAst> {
        let mut terms = vec![self.atom()?];
        while self.peek_keyword("AND") {
            self.next()?;
            terms.push(self.atom()?);
        }
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { PredAst::And(terms) })
    }

    fn atom(&mut self) -> Result<PredAst> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next()?;
            let inner = self.or_expr()?;
            self.expect(Tok::RParen)?;
            return Ok(inner);
        }
        let column = self.ident()?;
        if self.peek_keyword("BETWEEN") {
            self.next()?;
            let lo = self.number()?;
            self.keyword("AND")?;
            let hi = self.number()?;
            return Ok(PredAst::Between { column, lo, hi });
        }
        let op = match self.next()? {
            Tok::Op(op) => op,
            t => return Err(Error::InvalidArgument(format!("expected operator, got {t:?}"))),
        };
        let value = self.number()?;
        Ok(PredAst::Cmp { column, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};
    use std::sync::Arc;

    fn db() -> Database {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(64),
        ));
        Database::create(pool).unwrap()
    }

    #[test]
    fn figure_2_ddl_runs_verbatim() {
        let db = db();
        // The paper's Figure 2, verbatim (modulo whitespace).
        db.execute_sql("CREATE TABLE Intervals (node int, lower int, upper int, id int);").unwrap();
        db.execute_sql("CREATE INDEX lowerIndex ON Intervals (node, lower);").unwrap();
        db.execute_sql("CREATE INDEX upperIndex ON Intervals (node, upper);").unwrap();
        assert_eq!(db.table_names(), vec!["Intervals".to_string()]);
        assert_eq!(db.index_stats("Intervals", "lowerIndex").unwrap().entries, 0);
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = db();
        db.execute_sql("CREATE TABLE T (a int, b int)").unwrap();
        for i in 0..10 {
            let r = db.execute_sql(&format!("INSERT INTO T VALUES ({i}, {})", i * 10)).unwrap();
            assert_eq!(r, SqlResult::RowsAffected(1));
        }
        let r = db.execute_sql("SELECT b FROM T WHERE a >= 3 AND a < 6").unwrap();
        match r {
            SqlResult::Rows { columns, rows } => {
                assert_eq!(columns, vec!["b".to_string()]);
                assert_eq!(rows, vec![vec![30], vec![40], vec![50]]);
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn select_star_and_between_and_or() {
        let db = db();
        db.execute_sql("CREATE TABLE T (x int)").unwrap();
        for v in [-5, 0, 5, 10, 15] {
            db.execute_sql(&format!("INSERT INTO T VALUES ({v})")).unwrap();
        }
        let r = db.execute_sql("SELECT * FROM T WHERE x BETWEEN 0 AND 10 OR (x = -5)").unwrap();
        match r {
            SqlResult::Rows { rows, .. } => {
                let mut vals: Vec<i64> = rows.into_iter().map(|r| r[0]).collect();
                vals.sort_unstable();
                assert_eq!(vals, vec![-5, 0, 5, 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_with_predicate() {
        let db = db();
        db.execute_sql("CREATE TABLE T (x int)").unwrap();
        for v in 0..10 {
            db.execute_sql(&format!("INSERT INTO T VALUES ({v})")).unwrap();
        }
        let r = db.execute_sql("DELETE FROM T WHERE x >= 5").unwrap();
        assert_eq!(r, SqlResult::RowsAffected(5));
        let r = db.execute_sql("SELECT * FROM T").unwrap();
        match r {
            SqlResult::Rows { rows, .. } => assert_eq!(rows.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers_and_case_insensitivity() {
        let db = db();
        // Keywords and column names are case-insensitive; table names are
        // catalog objects and match verbatim.
        db.execute_sql("create table t (A int, B int)").unwrap();
        db.execute_sql("insert into t values (-7, -8)").unwrap();
        let r = db.execute_sql("select a from t where b <= -8").unwrap();
        match r {
            SqlResult::Rows { rows, .. } => assert_eq!(rows, vec![vec![-7]]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sql_errors_are_informative() {
        let db = db();
        assert!(db.execute_sql("DROP TABLE x").is_err());
        assert!(db.execute_sql("SELECT FROM").is_err());
        assert!(db.execute_sql("CREATE TABLE T (a int").is_err());
        db.execute_sql("CREATE TABLE T (a int)").unwrap();
        assert!(db.execute_sql("SELECT nope FROM T").is_err());
        assert!(db.execute_sql("SELECT a FROM T WHERE a ? 3").is_err());
        assert!(db.execute_sql("SELECT a FROM T extra junk").is_err());
    }

    #[test]
    fn index_maintained_through_sql_dml() {
        let db = db();
        db.execute_sql("CREATE TABLE T (k int, v int)").unwrap();
        db.execute_sql("CREATE INDEX KI ON T (k)").unwrap();
        for i in 0..50 {
            db.execute_sql(&format!("INSERT INTO T VALUES ({}, {i})", i % 5)).unwrap();
        }
        assert_eq!(db.index_stats("T", "KI").unwrap().entries, 50);
        db.execute_sql("DELETE FROM T WHERE k = 2").unwrap();
        assert_eq!(db.index_stats("T", "KI").unwrap().entries, 40);
    }
}
