//! Heap file: fixed-width row storage with stable row ids.
//!
//! Rows are arrays of `i64` column values.  Pages are chained for full
//! scans; deletes tombstone their slot (space is reclaimed only when a whole
//! page empties — the usual trade-off in slotted storage, irrelevant to the
//! paper's insert/query workloads).
//!
//! Appends and deletes are read-modify-write transactions on the heap's
//! meta page (tail pointer, row count); they run under an exclusive latch
//! on that page from the pool's [`ri_pagestore::LatchManager`], so any
//! number of threads may insert into one table concurrently.  The latch
//! hold is a handful of page accesses — the expensive part of a row
//! insert, the secondary-index maintenance, happens outside it in
//! [`crate::Table::insert`].  Reads (`fetch`, `scan`) take no latch: page
//! accesses are copy-atomic in the buffer pool.

use ri_pagestore::codec::{get_i64, get_u16, get_u32, get_u64, put_i64, put_u16, put_u32, put_u64};
use ri_pagestore::{BufferPool, Error, PageId, Result};
use std::sync::Arc;

const HEAP_MAGIC: u32 = 0x5249_4850; // "RIHP"
const PAGE_HEADER: usize = 16; // tag u8, pad, count u16, pad u32, next u64

// Heap meta page offsets.
const OFF_MAGIC: usize = 0;
const OFF_ARITY: usize = 4;
const OFF_FIRST: usize = 8;
const OFF_LAST: usize = 16;
const OFF_COUNT: usize = 24;

// Data page offsets.
const OFF_TAG: usize = 0;
const OFF_SLOTS: usize = 2;
const OFF_NEXT: usize = 8;
const TAG_DATA: u8 = 0x11;

/// Bits used for the slot number inside a [`RowId`].
const SLOT_BITS: u32 = 12;

/// Stable identifier of a heap row: `(page id << 12) | slot`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RowId(pub u64);

impl RowId {
    fn new(page: PageId, slot: usize) -> RowId {
        debug_assert!(slot < (1 << SLOT_BITS));
        RowId((page.raw() << SLOT_BITS) | slot as u64)
    }

    fn page(self) -> PageId {
        PageId(self.0 >> SLOT_BITS)
    }

    fn slot(self) -> usize {
        (self.0 & ((1 << SLOT_BITS) - 1)) as usize
    }

    /// The raw 64-bit representation (used as index payload).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a row id from its raw representation.
    pub fn from_raw(raw: u64) -> RowId {
        RowId(raw)
    }
}

/// A heap file storing rows of `arity` columns.
pub struct Heap {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    arity: usize,
    slots_per_page: usize,
}

struct HeapMeta {
    first: PageId,
    last: PageId,
    count: u64,
}

impl Heap {
    fn slot_size(arity: usize) -> usize {
        arity * 8 + 1 // columns + live flag
    }

    fn slots_per_page(page_size: usize, arity: usize) -> usize {
        ((page_size - PAGE_HEADER) / Self::slot_size(arity)).min(1 << SLOT_BITS)
    }

    /// Creates an empty heap for rows of `arity` columns.
    pub fn create(pool: Arc<BufferPool>, arity: usize) -> Result<Heap> {
        if arity == 0 || arity > 64 {
            return Err(Error::InvalidArgument(format!("heap arity {arity} out of range")));
        }
        let meta_page = pool.allocate_page()?;
        pool.with_page_mut(meta_page, |buf| {
            put_u32(buf, OFF_MAGIC, HEAP_MAGIC);
            put_u32(buf, OFF_ARITY, arity as u32);
            put_u64(buf, OFF_FIRST, PageId::INVALID.raw());
            put_u64(buf, OFF_LAST, PageId::INVALID.raw());
            put_u64(buf, OFF_COUNT, 0);
        })?;
        let slots = Self::slots_per_page(pool.page_size(), arity);
        Ok(Heap { pool, meta_page, arity, slots_per_page: slots })
    }

    /// Re-opens a heap from its meta page.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Heap> {
        let arity = pool.with_page(meta_page, |buf| {
            if get_u32(buf, OFF_MAGIC) != HEAP_MAGIC {
                return Err(Error::Corrupt(format!("page {meta_page} is not a heap meta page")));
            }
            Ok(get_u32(buf, OFF_ARITY) as usize)
        })??;
        let slots = Self::slots_per_page(pool.page_size(), arity);
        Ok(Heap { pool, meta_page, arity, slots_per_page: slots })
    }

    /// The page identifying this heap in the catalog.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Number of columns per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows.
    pub fn row_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.count)
    }

    fn read_meta(&self) -> Result<HeapMeta> {
        self.pool.with_page(self.meta_page, |buf| HeapMeta {
            first: PageId(get_u64(buf, OFF_FIRST)),
            last: PageId(get_u64(buf, OFF_LAST)),
            count: get_u64(buf, OFF_COUNT),
        })
    }

    fn write_meta(&self, meta: &HeapMeta) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            put_u64(buf, OFF_FIRST, meta.first.raw());
            put_u64(buf, OFF_LAST, meta.last.raw());
            put_u64(buf, OFF_COUNT, meta.count);
        })
    }

    fn slot_offset(&self, slot: usize) -> usize {
        PAGE_HEADER + slot * Self::slot_size(self.arity)
    }

    /// Exclusive latch on this heap's meta page; serializes the heap's own
    /// append/delete read-modify-write sections.
    fn exclusive_latch(&self) -> ri_pagestore::LatchGuard<'_> {
        self.pool.latches().page_exclusive(self.meta_page)
    }

    /// Appends a row, returning its stable id.
    pub fn insert(&self, row: &[i64]) -> Result<RowId> {
        if row.len() != self.arity {
            return Err(Error::InvalidArgument(format!(
                "row has {} columns, heap expects {}",
                row.len(),
                self.arity
            )));
        }
        // Prefetch so the meta read under the latch is a cache hit — the
        // append latch is per-table hot and must not wait on a device
        // read (the pool's miss promotion moves the fetch off the shard
        // lock; this moves it off the latch as well).  Later accesses in
        // the section may still fault: they touch the tail data page,
        // which the next access would need anyway.
        self.pool.prefetch(self.meta_page)?;
        let _latch = self.exclusive_latch();
        let mut meta = self.read_meta()?;
        // Find the insertion page: the chain tail, or a fresh page.
        let (page, slot) = if meta.last.is_invalid() {
            let page = self.pool.allocate_page()?;
            self.init_data_page(page)?;
            meta.first = page;
            meta.last = page;
            (page, 0)
        } else {
            let used = self.pool.with_page(meta.last, |buf| get_u16(buf, OFF_SLOTS) as usize)?;
            if used < self.slots_per_page {
                (meta.last, used)
            } else {
                let page = self.pool.allocate_page()?;
                self.init_data_page(page)?;
                self.pool.with_page_mut(meta.last, |buf| put_u64(buf, OFF_NEXT, page.raw()))?;
                meta.last = page;
                (page, 0)
            }
        };
        let off = self.slot_offset(slot);
        self.pool.with_page_mut(page, |buf| {
            put_u16(buf, OFF_SLOTS, slot as u16 + 1);
            buf[off] = 1; // live
            for (c, v) in row.iter().enumerate() {
                put_i64(buf, off + 1 + c * 8, *v);
            }
        })?;
        meta.count += 1;
        self.write_meta(&meta)?;
        Ok(RowId::new(page, slot))
    }

    fn init_data_page(&self, page: PageId) -> Result<()> {
        self.pool.with_page_mut(page, |buf| {
            buf[OFF_TAG] = TAG_DATA;
            put_u16(buf, OFF_SLOTS, 0);
            put_u64(buf, OFF_NEXT, PageId::INVALID.raw());
        })
    }

    /// Fetches a live row; `Ok(None)` if the row was deleted.
    pub fn fetch(&self, id: RowId) -> Result<Option<Vec<i64>>> {
        let off = self.slot_offset(id.slot());
        self.pool.with_page(id.page(), |buf| {
            if buf[OFF_TAG] != TAG_DATA {
                return Err(Error::Corrupt(format!("row id {} points at a non-heap page", id.0)));
            }
            if id.slot() >= get_u16(buf, OFF_SLOTS) as usize {
                return Err(Error::InvalidArgument(format!("row id {} slot out of range", id.0)));
            }
            if buf[off] == 0 {
                return Ok(None);
            }
            let mut row = Vec::with_capacity(self.arity);
            for c in 0..self.arity {
                row.push(get_i64(buf, off + 1 + c * 8));
            }
            Ok(Some(row))
        })?
    }

    /// Tombstones a row.  Returns `false` if it was already deleted.
    ///
    /// The latched flip of the live byte is atomic, so racing deletes of
    /// one row resolve to exactly one `true` — [`crate::Table::delete`]
    /// uses this as its claim.
    pub fn delete(&self, id: RowId) -> Result<bool> {
        // As in `insert`: the first access under the latch must hit.
        self.pool.prefetch(id.page())?;
        let _latch = self.exclusive_latch();
        let off = self.slot_offset(id.slot());
        let was_live = self.pool.with_page_mut(id.page(), |buf| {
            let live = buf[off] == 1;
            buf[off] = 0;
            live
        })?;
        if was_live {
            let mut meta = self.read_meta()?;
            meta.count -= 1;
            self.write_meta(&meta)?;
        }
        Ok(was_live)
    }

    /// Full scan of all live rows in insertion order.
    pub fn scan(&self) -> Result<Vec<(RowId, Vec<i64>)>> {
        let meta = self.read_meta()?;
        let mut out = Vec::with_capacity(meta.count as usize);
        let mut page = meta.first;
        while !page.is_invalid() {
            let next = self.pool.with_page(page, |buf| {
                let used = get_u16(buf, OFF_SLOTS) as usize;
                for slot in 0..used {
                    let off = self.slot_offset(slot);
                    if buf[off] == 1 {
                        let mut row = Vec::with_capacity(self.arity);
                        for c in 0..self.arity {
                            row.push(get_i64(buf, off + 1 + c * 8));
                        }
                        out.push((RowId::new(page, slot), row));
                    }
                }
                PageId(get_u64(buf, OFF_NEXT))
            })?;
            page = next;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPoolConfig, MemDisk};

    fn heap(arity: usize) -> Heap {
        let pool = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        Heap::create(pool, arity).unwrap()
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let h = heap(3);
        let id = h.insert(&[1, -2, 3]).unwrap();
        assert_eq!(h.fetch(id).unwrap(), Some(vec![1, -2, 3]));
        assert_eq!(h.row_count().unwrap(), 1);
    }

    #[test]
    fn rows_span_many_pages() {
        let h = heap(4);
        let ids: Vec<RowId> =
            (0..500).map(|i| h.insert(&[i, i + 1, i + 2, i + 3]).unwrap()).collect();
        assert_eq!(h.row_count().unwrap(), 500);
        for (i, id) in ids.iter().enumerate() {
            let i = i as i64;
            assert_eq!(h.fetch(*id).unwrap(), Some(vec![i, i + 1, i + 2, i + 3]));
        }
        let scanned = h.scan().unwrap();
        assert_eq!(scanned.len(), 500);
        assert_eq!(scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(), ids);
    }

    #[test]
    fn delete_tombstones() {
        let h = heap(1);
        let a = h.insert(&[10]).unwrap();
        let b = h.insert(&[20]).unwrap();
        assert!(h.delete(a).unwrap());
        assert!(!h.delete(a).unwrap(), "double delete must report false");
        assert_eq!(h.fetch(a).unwrap(), None);
        assert_eq!(h.fetch(b).unwrap(), Some(vec![20]));
        assert_eq!(h.row_count().unwrap(), 1);
        assert_eq!(h.scan().unwrap().len(), 1);
    }

    #[test]
    fn arity_checked() {
        let h = heap(2);
        assert!(h.insert(&[1]).is_err());
        assert!(h.insert(&[1, 2, 3]).is_err());
    }

    #[test]
    fn reopen_preserves_rows() {
        let pool = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        let h = Heap::create(Arc::clone(&pool), 2).unwrap();
        let meta = h.meta_page();
        let id = h.insert(&[5, 6]).unwrap();
        drop(h);
        let h2 = Heap::open(pool, meta).unwrap();
        assert_eq!(h2.arity(), 2);
        assert_eq!(h2.fetch(id).unwrap(), Some(vec![5, 6]));
    }

    #[test]
    fn open_rejects_wrong_page() {
        let pool = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        let junk = pool.allocate_page().unwrap();
        assert!(Heap::open(pool, junk).is_err());
    }
}
