//! Concurrent query façade: execute independent plans from multiple threads.
//!
//! The paper's setting delegates all locking to the host RDBMS; in this
//! reproduction the equivalent rule is **readers scale, writers serialize**.
//! Every structure below the executor is internally synchronized — the
//! buffer pool by lock-striped shards, the catalog by its own mutex, the
//! B+-tree by being immutable during reads — so *independent* read plans
//! can run concurrently with no coordination beyond a scoped thread join.
//!
//! [`Database::execute_parallel`] is the entry point: it partitions a batch
//! of plans over a bounded number of worker threads, executes each plan
//! exactly as [`Database::execute`] would, and returns results in input
//! order with per-plan [`ExecStats`].  Single-plan or single-thread calls
//! take the sequential path, so the façade adds no overhead (and no
//! nondeterminism) to the paper's single-threaded figure experiments.
//!
//! Writers (DDL, `INSERT`, `DELETE`) must still be externally serialized
//! with respect to these readers, exactly as documented on
//! [`ri_btree::BTree`].

use crate::catalog::Database;
use crate::exec::{ExecStats, Plan, Row};
use ri_pagestore::Result;

/// Result of one plan in a parallel batch: the rows it produced plus the
/// executor counters it accumulated.
pub type PlanResult = (Vec<Row>, ExecStats);

impl Database {
    /// Executes every plan in `plans`, fanning the batch out over at most
    /// `threads` worker threads, and returns per-plan results **in input
    /// order**.
    ///
    /// Plans are distributed in contiguous chunks; each worker executes its
    /// chunk sequentially with its own [`ExecStats`].  The first error
    /// encountered (in input order) is returned; a panicking worker
    /// propagates its panic after all workers have been joined.
    ///
    /// With `threads <= 1` or a single plan this degenerates to plain
    /// sequential [`Database::execute`] calls on the caller's thread.
    pub fn execute_parallel(&self, plans: &[Plan], threads: usize) -> Result<Vec<PlanResult>> {
        let workers = threads.clamp(1, plans.len().max(1));
        if workers <= 1 {
            return plans.iter().map(|p| self.run_one(p)).collect();
        }
        let mut slots: Vec<Option<Result<PlanResult>>> = Vec::new();
        slots.resize_with(plans.len(), || None);
        let chunk = plans.len().div_ceil(workers);
        crossbeam::thread::scope(|s| {
            for (plan_chunk, slot_chunk) in plans.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (plan, slot) in plan_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(self.run_one(plan));
                    }
                });
            }
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        slots.into_iter().map(|s| s.expect("every chunk was executed")).collect()
    }

    fn run_one(&self, plan: &Plan) -> Result<PlanResult> {
        let mut stats = ExecStats::default();
        let rows = self.execute(plan, &mut stats)?;
        Ok((rows, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{IndexDef, TableDef};
    use crate::exec::BoundExpr;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
    use std::sync::Arc;

    fn setup(shards: usize) -> Database {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::sharded(64, shards)));
        let db = Database::create(pool).unwrap();
        db.create_table(TableDef {
            name: "T".into(),
            columns: vec!["k".into(), "v".into(), "id".into()],
        })
        .unwrap();
        db.create_index("T", IndexDef { name: "KV".into(), key_cols: vec![0, 1] }).unwrap();
        let t = db.table("T").unwrap();
        for i in 0..400i64 {
            t.insert(&[i % 10, i, 7000 + i]).unwrap();
        }
        db
    }

    fn scan_plan(k: i64) -> Plan {
        Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Const(k), BoundExpr::NegInf],
            hi: vec![BoundExpr::Const(k), BoundExpr::PosInf],
        }
    }

    #[test]
    fn parallel_matches_sequential_in_order() {
        for shards in [1, 4] {
            let db = setup(shards);
            let plans: Vec<Plan> = (0..10).map(scan_plan).collect();
            let sequential = db.execute_parallel(&plans, 1).unwrap();
            for threads in [2, 3, 4, 16] {
                let parallel = db.execute_parallel(&plans, threads).unwrap();
                assert_eq!(parallel.len(), sequential.len());
                for (i, ((rows_p, stats_p), (rows_s, stats_s))) in
                    parallel.iter().zip(sequential.iter()).enumerate()
                {
                    assert_eq!(rows_p, rows_s, "plan {i} rows diverged at {threads} threads");
                    assert_eq!(stats_p, stats_s, "plan {i} stats diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = setup(1);
        assert!(db.execute_parallel(&[], 8).unwrap().is_empty());
    }

    #[test]
    fn errors_surface_from_worker_threads() {
        let db = setup(2);
        let bad = Plan::TableScan { table: "NO_SUCH_TABLE".into() };
        let plans = vec![scan_plan(1), bad, scan_plan(2)];
        assert!(db.execute_parallel(&plans, 3).is_err());
    }
}
