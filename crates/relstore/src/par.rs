//! Concurrent statement façade: execute independent plans — and, since
//! PR 3, writes — from multiple threads.
//!
//! The paper's setting delegates all locking to the host RDBMS; in this
//! reproduction every structure below the executor is internally
//! synchronized — the buffer pool by lock-striped shards, the catalog by
//! its reader-writer lock, the heap by its meta-page latch, the B-link
//! trees by per-node write latches (their readers are latch-free) — so
//! *independent* statements can run concurrently with no coordination
//! beyond a scoped thread join.
//!
//! [`Database::execute_parallel`] fans out a read-only plan batch;
//! [`Database::execute_mixed`] does the same for a mixed batch of
//! queries, row inserts and row deletes ([`Statement`]).  Both partition
//! the batch over a bounded number of worker threads, execute each
//! statement exactly as the sequential API would, and return results in
//! input order.  Single-statement or single-thread calls take the
//! sequential path, so the façade adds no overhead (and no
//! nondeterminism) to the paper's single-threaded figure experiments.

use crate::catalog::Database;
use crate::exec::{ExecStats, Plan, Row};
use crate::heap::RowId;
use ri_pagestore::Result;
use std::collections::HashMap;

/// Result of one plan in a parallel batch: the rows it produced plus the
/// executor counters it accumulated.
pub type PlanResult = (Vec<Row>, ExecStats);

/// One statement of a mixed read/write batch for
/// [`Database::execute_mixed`].
#[derive(Clone, Debug)]
pub enum Statement {
    /// A read-only query plan.
    Query(Plan),
    /// Insert `row` into `table`, maintaining all of its indexes.
    Insert {
        /// Target table name.
        table: String,
        /// Column values in storage order.
        row: Row,
    },
    /// Delete the row `rid` from `table`, maintaining all of its indexes.
    Delete {
        /// Target table name.
        table: String,
        /// Row id, as returned by the insert or found via an index.
        rid: RowId,
    },
}

/// Outcome of one [`Statement`], in batch order.
#[derive(Clone, Debug)]
pub enum StatementOutcome {
    /// Rows and executor counters of a [`Statement::Query`].
    Rows(Vec<Row>, ExecStats),
    /// Row id assigned by a [`Statement::Insert`].
    Inserted(RowId),
    /// Whether a [`Statement::Delete`] found a live row.
    Deleted(bool),
}

/// Fans `items` out over at most `threads` worker threads in contiguous
/// chunks, applying `f` to each and returning the outputs **in input
/// order**.  With `threads <= 1` (or a single item) everything runs
/// sequentially on the caller's thread; a panicking worker propagates its
/// panic after all workers are joined.
///
/// This is the one fan-out scaffold behind [`Database::execute_parallel`],
/// [`Database::execute_mixed`], and `RiTree::insert_batch`.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for (item_chunk, slot_chunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots.into_iter().map(|s| s.expect("every chunk was executed")).collect()
}

impl Database {
    /// Executes every plan in `plans`, fanning the batch out over at most
    /// `threads` worker threads, and returns per-plan results **in input
    /// order**.
    ///
    /// Plans are distributed in contiguous chunks; each worker executes its
    /// chunk sequentially with its own [`ExecStats`].  The first error
    /// encountered (in input order) is returned; a panicking worker
    /// propagates its panic after all workers have been joined.
    ///
    /// With `threads <= 1` or a single plan this degenerates to plain
    /// sequential [`Database::execute`] calls on the caller's thread.
    pub fn execute_parallel(&self, plans: &[Plan], threads: usize) -> Result<Vec<PlanResult>> {
        fan_out(plans, threads, |plan| self.run_one(plan)).into_iter().collect()
    }

    /// Executes a mixed batch of queries, inserts and deletes, fanning it
    /// out over at most `threads` worker threads; outcomes are returned
    /// **in input order**.
    ///
    /// Statements are distributed in contiguous chunks exactly like
    /// [`Database::execute_parallel`].  Writes in the batch rely on the
    /// engine's internal synchronization (heap meta latch, B-link
    /// per-node latches), so no statement needs to know about any other; but as
    /// with any concurrent DML, the *interleaving* of independent
    /// statements is scheduler-chosen — callers that need a specific
    /// order must put the dependent statements in one chunk or run
    /// sequentially.
    pub fn execute_mixed(
        &self,
        stmts: &[Statement],
        threads: usize,
    ) -> Result<Vec<StatementOutcome>> {
        // Resolve each referenced table once for the whole batch (a
        // handle per statement would re-open the heap and every index —
        // redundant meta-page reads that would also pollute the I/O
        // counters the deterministic benches trace).
        let mut tables: HashMap<&str, crate::table::Table> = HashMap::new();
        for stmt in stmts {
            if let Statement::Insert { table, .. } | Statement::Delete { table, .. } = stmt {
                if !tables.contains_key(table.as_str()) {
                    tables.insert(table, self.table(table)?);
                }
            }
        }
        fan_out(stmts, threads, |stmt| self.run_stmt(stmt, &tables)).into_iter().collect()
    }

    fn run_stmt(
        &self,
        stmt: &Statement,
        tables: &HashMap<&str, crate::table::Table>,
    ) -> Result<StatementOutcome> {
        let resolved = |name: &String| {
            tables.get(name.as_str()).expect("every referenced table was resolved up front")
        };
        match stmt {
            Statement::Query(plan) => {
                let (rows, stats) = self.run_one(plan)?;
                Ok(StatementOutcome::Rows(rows, stats))
            }
            Statement::Insert { table, row } => {
                Ok(StatementOutcome::Inserted(resolved(table).insert(row)?))
            }
            Statement::Delete { table, rid } => {
                Ok(StatementOutcome::Deleted(resolved(table).delete(*rid)?))
            }
        }
    }

    fn run_one(&self, plan: &Plan) -> Result<PlanResult> {
        let mut stats = ExecStats::default();
        let rows = self.execute(plan, &mut stats)?;
        Ok((rows, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{IndexDef, TableDef};
    use crate::exec::BoundExpr;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
    use std::sync::Arc;

    fn setup(shards: usize) -> Database {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::sharded(64, shards)));
        let db = Database::create(pool).unwrap();
        db.create_table(TableDef {
            name: "T".into(),
            columns: vec!["k".into(), "v".into(), "id".into()],
        })
        .unwrap();
        db.create_index("T", IndexDef { name: "KV".into(), key_cols: vec![0, 1] }).unwrap();
        let t = db.table("T").unwrap();
        for i in 0..400i64 {
            t.insert(&[i % 10, i, 7000 + i]).unwrap();
        }
        db
    }

    fn scan_plan(k: i64) -> Plan {
        Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Const(k), BoundExpr::NegInf],
            hi: vec![BoundExpr::Const(k), BoundExpr::PosInf],
        }
    }

    #[test]
    fn parallel_matches_sequential_in_order() {
        for shards in [1, 4] {
            let db = setup(shards);
            let plans: Vec<Plan> = (0..10).map(scan_plan).collect();
            let sequential = db.execute_parallel(&plans, 1).unwrap();
            for threads in [2, 3, 4, 16] {
                let parallel = db.execute_parallel(&plans, threads).unwrap();
                assert_eq!(parallel.len(), sequential.len());
                for (i, ((rows_p, stats_p), (rows_s, stats_s))) in
                    parallel.iter().zip(sequential.iter()).enumerate()
                {
                    assert_eq!(rows_p, rows_s, "plan {i} rows diverged at {threads} threads");
                    assert_eq!(stats_p, stats_s, "plan {i} stats diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = setup(1);
        assert!(db.execute_parallel(&[], 8).unwrap().is_empty());
    }

    #[test]
    fn errors_surface_from_worker_threads() {
        let db = setup(2);
        let bad = Plan::TableScan { table: "NO_SUCH_TABLE".into() };
        let plans = vec![scan_plan(1), bad, scan_plan(2)];
        assert!(db.execute_parallel(&plans, 3).is_err());
    }

    #[test]
    fn mixed_batch_inserts_queries_and_deletes() {
        for threads in [1, 4] {
            let db = setup(4);
            // 40 concurrent inserts...
            let inserts: Vec<Statement> = (0..40i64)
                .map(|i| Statement::Insert { table: "T".into(), row: vec![100, 9000 + i, i] })
                .collect();
            let outcomes = db.execute_mixed(&inserts, threads).unwrap();
            let rids: Vec<_> = outcomes
                .iter()
                .map(|o| match o {
                    StatementOutcome::Inserted(rid) => *rid,
                    other => panic!("expected Inserted, got {other:?}"),
                })
                .collect();
            // ...visible to a query in the same facade...
            let q = Statement::Query(scan_plan(100));
            let mixed: Vec<Statement> = rids
                .iter()
                .take(10)
                .map(|&rid| Statement::Delete { table: "T".into(), rid })
                .chain(std::iter::once(q))
                .collect();
            let outcomes = db.execute_mixed(&mixed, threads).unwrap();
            for o in &outcomes[..10] {
                assert!(matches!(o, StatementOutcome::Deleted(true)), "{o:?}");
            }
            let StatementOutcome::Rows(rows, _) = &outcomes[10] else {
                panic!("expected Rows");
            };
            // The query ran concurrently with the deletes: it sees between
            // 30 (all deletes applied first) and 40 rows for key 100.
            assert!((30..=40).contains(&rows.len()), "saw {} rows", rows.len());
            // ...and a second delete of the same rows reports false.
            let again: Vec<Statement> = rids
                .iter()
                .take(10)
                .map(|&rid| Statement::Delete { table: "T".into(), rid })
                .collect();
            for o in db.execute_mixed(&again, threads).unwrap() {
                assert!(matches!(o, StatementOutcome::Deleted(false)), "{o:?}");
            }
            let t = db.table("T").unwrap();
            assert_eq!(t.row_count().unwrap(), 400 + 30);
        }
    }
}
