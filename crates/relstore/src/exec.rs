//! Physical query execution.
//!
//! The plan algebra mirrors the operators appearing in the paper's Oracle
//! execution plan (Figure 10): `COLLECTION ITERATOR` over a transient
//! session-state table, `INDEX RANGE SCAN` with bind variables from the
//! outer row, `NESTED LOOPS`, and `UNION-ALL`; plus `FILTER` and
//! `TABLE ACCESS FULL` which the competitor methods need.
//!
//! Execution is materializing (each operator produces its full row vector):
//! with result sets of at most a few percent of the database this is
//! faithful to the paper's cost profile, which is dominated by index I/O.

use crate::catalog::Database;
use crate::heap::Heap;
use ri_btree::BTree;
use ri_pagestore::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// A materialized row of `i64` values.
pub type Row = Vec<i64>;

/// A bound value for one key column of an index range scan.
///
/// `Outer(i)` is a *bind variable* referencing column `i` of the current
/// outer row of the enclosing nested-loops join — exactly how the paper's
/// SQL query (Figure 9) correlates `leftNodes`/`rightNodes` with the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundExpr {
    /// A literal value.
    Const(i64),
    /// Column `i` of the current outer row.
    Outer(usize),
    /// Negative infinity (`i64::MIN`).
    NegInf,
    /// Positive infinity (`i64::MAX`).
    PosInf,
}

impl BoundExpr {
    fn eval(&self, outer: Option<&Row>) -> Result<i64> {
        match *self {
            BoundExpr::Const(v) => Ok(v),
            BoundExpr::NegInf => Ok(i64::MIN),
            BoundExpr::PosInf => Ok(i64::MAX),
            BoundExpr::Outer(i) => outer
                .and_then(|r| r.get(i).copied())
                .ok_or_else(|| Error::InvalidArgument(format!("unbound outer column {i}"))),
        }
    }
}

/// Comparison operators for [`Predicate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
}

/// Row predicates for the `FILTER` operator.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// Always true.
    True,
    /// `row[col] op value`.
    CmpConst {
        /// Column position in the input row.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: i64,
    },
    /// `row[a] + row[b] op value` — needed for derived-attribute predicates
    /// such as the IST H-ordering's `lower + length >= :lower`.
    CmpSum {
        /// First summand column.
        a: usize,
        /// Second summand column.
        b: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: i64,
    },
    /// `row[a] - row[b] op value` (e.g. interval length on a bounds table).
    CmpDiff {
        /// Minuend column.
        a: usize,
        /// Subtrahend column.
        b: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: i64,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against a row.
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::CmpConst { col, op, value } => cmp(row[*col], *op, *value),
            Predicate::CmpSum { a, b, op, value } => cmp(row[*a] + row[*b], *op, *value),
            Predicate::CmpDiff { a, b, op, value } => cmp(row[*a] - row[*b], *op, *value),
            Predicate::And(ps) => ps.iter().all(|p| p.matches(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(row)),
        }
    }
}

#[inline]
fn cmp(v: i64, op: CmpOp, value: i64) -> bool {
    match op {
        CmpOp::Le => v <= value,
        CmpOp::Ge => v >= value,
        CmpOp::Lt => v < value,
        CmpOp::Gt => v > value,
        CmpOp::Eq => v == value,
    }
}

/// A physical query plan.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Iterates a transient in-memory collection (the paper's session-state
    /// tables `leftNodes` / `rightNodes`); costs no I/O.
    CollectionIterator {
        /// Display name for EXPLAIN output.
        name: String,
        /// The collection rows.
        rows: Vec<Row>,
    },
    /// Inclusive composite-key range scan over a secondary index.
    /// Output rows are the key columns followed by the row id payload.
    IndexRangeScan {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Lower bound, one expression per key column.
        lo: Vec<BoundExpr>,
        /// Upper bound, one expression per key column.
        hi: Vec<BoundExpr>,
    },
    /// For each outer row, evaluates the inner plan with the outer row's
    /// values available as bind variables; emits the inner rows.
    NestedLoops {
        /// Outer (driving) input.
        outer: Box<Plan>,
        /// Inner (parameterized) input.
        inner: Box<Plan>,
    },
    /// Concatenates the results of all inputs (no duplicate elimination —
    /// the paper's Section 4.2 argues the branches are disjoint).
    UnionAll(
        /// The input plans.
        Vec<Plan>,
    ),
    /// Keeps only rows matching the predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Filter predicate.
        pred: Predicate,
    },
    /// Projects the given columns of each input row.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Column positions to keep, in output order.
        cols: Vec<usize>,
    },
    /// Full table scan (`TABLE ACCESS FULL`); output rows are the table
    /// columns.
    TableScan {
        /// Table name.
        table: String,
    },
}

/// Counters accumulated during one [`Database::execute`] call.
///
/// `rows_examined` feeds the response-time model: it counts every row
/// produced by a scan or collection operator, approximating per-row CPU
/// cost of the SQL engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by scan/collection operators.
    pub rows_examined: u64,
    /// Rows in the final result.
    pub result_rows: u64,
    /// Number of index range scans started (search phases).
    pub index_searches: u64,
}

struct ExecCtx<'a> {
    db: &'a Database,
    trees: HashMap<(String, String), (BTree, usize)>, // (table, index) -> (tree, arity)
    heaps: HashMap<String, Heap>,
}

impl ExecCtx<'_> {
    fn prepare(&mut self, plan: &Plan) -> Result<()> {
        match plan {
            Plan::IndexRangeScan { table, index, .. } => {
                let key = (table.clone(), index.clone());
                if !self.trees.contains_key(&key) {
                    let meta = self.db.index_meta(table, index)?;
                    let tree = BTree::open(Arc::clone(self.db.pool()), meta.btree_meta)?;
                    let arity = tree.arity();
                    self.trees.insert(key, (tree, arity));
                }
                Ok(())
            }
            Plan::TableScan { table } => {
                if !self.heaps.contains_key(table) {
                    let meta = self.db.table_meta(table)?;
                    let heap = Heap::open(Arc::clone(self.db.pool()), meta.heap_meta)?;
                    self.heaps.insert(table.clone(), heap);
                }
                Ok(())
            }
            Plan::NestedLoops { outer, inner } => {
                self.prepare(outer)?;
                self.prepare(inner)
            }
            Plan::UnionAll(inputs) => inputs.iter().try_for_each(|p| self.prepare(p)),
            Plan::Filter { input, .. } | Plan::Project { input, .. } => self.prepare(input),
            Plan::CollectionIterator { .. } => Ok(()),
        }
    }

    fn eval(
        &self,
        plan: &Plan,
        outer: Option<&Row>,
        stats: &mut ExecStats,
        out: &mut Vec<Row>,
    ) -> Result<()> {
        match plan {
            Plan::CollectionIterator { rows, .. } => {
                stats.rows_examined += rows.len() as u64;
                out.extend(rows.iter().cloned());
                Ok(())
            }
            Plan::IndexRangeScan { table, index, lo, hi } => {
                let (tree, arity) = self
                    .trees
                    .get(&(table.clone(), index.clone()))
                    .expect("prepare() opened every index");
                if lo.len() != *arity || hi.len() != *arity {
                    return Err(Error::InvalidArgument(format!(
                        "scan bounds have {}..{} columns, index {index} expects {arity}",
                        lo.len(),
                        hi.len()
                    )));
                }
                let lo_vals = lo.iter().map(|b| b.eval(outer)).collect::<Result<Vec<i64>>>()?;
                let hi_vals = hi.iter().map(|b| b.eval(outer)).collect::<Result<Vec<i64>>>()?;
                stats.index_searches += 1;
                for entry in tree.scan_range(&lo_vals, &hi_vals) {
                    let entry = entry?;
                    let mut row: Row = entry.key.as_slice().to_vec();
                    row.push(entry.payload as i64);
                    stats.rows_examined += 1;
                    out.push(row);
                }
                Ok(())
            }
            Plan::NestedLoops { outer: o, inner } => {
                let mut outer_rows = Vec::new();
                self.eval(o, outer, stats, &mut outer_rows)?;
                for orow in &outer_rows {
                    self.eval(inner, Some(orow), stats, out)?;
                }
                Ok(())
            }
            Plan::UnionAll(inputs) => {
                for p in inputs {
                    self.eval(p, outer, stats, out)?;
                }
                Ok(())
            }
            Plan::Filter { input, pred } => {
                let mut rows = Vec::new();
                self.eval(input, outer, stats, &mut rows)?;
                out.extend(rows.into_iter().filter(|r| pred.matches(r)));
                Ok(())
            }
            Plan::Project { input, cols } => {
                let mut rows = Vec::new();
                self.eval(input, outer, stats, &mut rows)?;
                out.extend(rows.into_iter().map(|r| cols.iter().map(|&c| r[c]).collect::<Row>()));
                Ok(())
            }
            Plan::TableScan { table } => {
                let heap = self.heaps.get(table).expect("prepare() opened every heap");
                for (_, row) in heap.scan()? {
                    stats.rows_examined += 1;
                    out.push(row);
                }
                Ok(())
            }
        }
    }
}

impl Database {
    /// Executes a physical plan, accumulating counters into `stats`.
    pub fn execute(&self, plan: &Plan, stats: &mut ExecStats) -> Result<Vec<Row>> {
        let mut ctx = ExecCtx { db: self, trees: HashMap::new(), heaps: HashMap::new() };
        ctx.prepare(plan)?;
        let mut out = Vec::new();
        ctx.eval(plan, None, stats, &mut out)?;
        stats.result_rows += out.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{IndexDef, TableDef};
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};

    fn setup() -> Database {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(64)));
        let db = Database::create(pool).unwrap();
        db.create_table(TableDef {
            name: "T".into(),
            columns: vec!["k".into(), "v".into(), "id".into()],
        })
        .unwrap();
        db.create_index("T", IndexDef { name: "KV".into(), key_cols: vec![0, 1] }).unwrap();
        let t = db.table("T").unwrap();
        for i in 0..100i64 {
            t.insert(&[i % 10, i, 1000 + i]).unwrap();
        }
        db
    }

    #[test]
    fn index_scan_with_const_bounds() {
        let db = setup();
        let plan = Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Const(4), BoundExpr::Const(50)],
            hi: vec![BoundExpr::Const(4), BoundExpr::PosInf],
        };
        let mut stats = ExecStats::default();
        let rows = db.execute(&plan, &mut stats).unwrap();
        // k = 4 and v >= 50: v in {54, 64, 74, 84, 94}.
        let vs: Vec<i64> = rows.iter().map(|r| r[1]).collect();
        assert_eq!(vs, vec![54, 64, 74, 84, 94]);
        assert_eq!(stats.index_searches, 1);
        assert_eq!(stats.result_rows, 5);
    }

    #[test]
    fn nested_loops_binds_outer_columns() {
        let db = setup();
        // Transient collection of (k_min, k_max) pairs, as in Figure 9.
        let plan = Plan::NestedLoops {
            outer: Box::new(Plan::CollectionIterator {
                name: "PROBES".into(),
                rows: vec![vec![2, 2], vec![7, 7]],
            }),
            inner: Box::new(Plan::IndexRangeScan {
                table: "T".into(),
                index: "KV".into(),
                lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf],
                hi: vec![BoundExpr::Outer(1), BoundExpr::PosInf],
            }),
        };
        let mut stats = ExecStats::default();
        let rows = db.execute(&plan, &mut stats).unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r[0] == 2 || r[0] == 7));
        assert_eq!(stats.index_searches, 2, "one search per outer row");
    }

    #[test]
    fn union_all_concatenates_without_dedup() {
        let db = setup();
        let scan = Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Const(1), BoundExpr::NegInf],
            hi: vec![BoundExpr::Const(1), BoundExpr::PosInf],
        };
        let plan = Plan::UnionAll(vec![scan.clone(), scan]);
        let mut stats = ExecStats::default();
        let rows = db.execute(&plan, &mut stats).unwrap();
        assert_eq!(rows.len(), 20, "UNION ALL must keep duplicates");
    }

    #[test]
    fn filter_and_project() {
        let db = setup();
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::TableScan { table: "T".into() }),
                pred: Predicate::And(vec![
                    Predicate::CmpConst { col: 1, op: CmpOp::Ge, value: 95 },
                    Predicate::CmpConst { col: 1, op: CmpOp::Lt, value: 98 },
                ]),
            }),
            cols: vec![2],
        };
        let mut stats = ExecStats::default();
        let rows = db.execute(&plan, &mut stats).unwrap();
        assert_eq!(rows, vec![vec![1095], vec![1096], vec![1097]]);
        assert_eq!(stats.rows_examined, 100, "full scan examines every row");
    }

    #[test]
    fn or_predicate() {
        let p = Predicate::Or(vec![
            Predicate::CmpConst { col: 0, op: CmpOp::Eq, value: 1 },
            Predicate::CmpConst { col: 0, op: CmpOp::Eq, value: 2 },
        ]);
        assert!(p.matches(&vec![1]));
        assert!(p.matches(&vec![2]));
        assert!(!p.matches(&vec![3]));
        assert!(Predicate::True.matches(&vec![]));
    }

    #[test]
    fn scan_bound_arity_is_checked() {
        let db = setup();
        let plan = Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Const(1)],
            hi: vec![BoundExpr::Const(1)],
        };
        assert!(db.execute(&plan, &mut ExecStats::default()).is_err());
    }

    #[test]
    fn unbound_outer_column_errors() {
        let db = setup();
        let plan = Plan::IndexRangeScan {
            table: "T".into(),
            index: "KV".into(),
            lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf],
            hi: vec![BoundExpr::Outer(0), BoundExpr::PosInf],
        };
        assert!(db.execute(&plan, &mut ExecStats::default()).is_err());
    }
}
