//! Table handles: DML that maintains all secondary indexes.

use crate::catalog::TableMeta;
use crate::heap::{Heap, RowId};
use ri_btree::{BTree, Entry};
use ri_pagestore::{BufferPool, Error, Result};
use std::sync::Arc;

/// A handle on a table and its secondary indexes.
///
/// `insert` is the engine-level equivalent of the paper's single SQL
/// statement in Figure 5: one heap append plus one B+-tree insertion per
/// index, each `O(log_b n)` I/Os.
pub struct Table {
    columns: Vec<String>,
    heap: Heap,
    indexes: Vec<OpenIndex>,
}

struct OpenIndex {
    name: String,
    key_cols: Vec<usize>,
    tree: BTree,
}

impl Table {
    pub(crate) fn from_meta(pool: Arc<BufferPool>, meta: &TableMeta) -> Result<Table> {
        let heap = Heap::open(Arc::clone(&pool), meta.heap_meta)?;
        let mut indexes = Vec::with_capacity(meta.indexes.len());
        for idx in &meta.indexes {
            indexes.push(OpenIndex {
                name: idx.name.clone(),
                key_cols: idx.key_cols.clone(),
                tree: BTree::open(Arc::clone(&pool), idx.btree_meta)?,
            });
        }
        Ok(Table { columns: meta.columns.clone(), heap, indexes })
    }

    /// Column names, in storage order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of live rows.
    pub fn row_count(&self) -> Result<u64> {
        self.heap.row_count()
    }

    /// Inserts a row, maintaining every index.
    pub fn insert(&self, row: &[i64]) -> Result<RowId> {
        if row.len() != self.columns.len() {
            return Err(Error::InvalidArgument(format!(
                "row has {} columns, table has {}",
                row.len(),
                self.columns.len()
            )));
        }
        let rid = self.heap.insert(row)?;
        for idx in &self.indexes {
            let key: Vec<i64> = idx.key_cols.iter().map(|&c| row[c]).collect();
            idx.tree.insert(&key, rid.raw())?;
        }
        Ok(rid)
    }

    /// Bulk-loads an **empty** table: appends every row to the heap in
    /// input order, then builds each secondary index bottom-up at full
    /// fill from its sorted run of `(key, row id)` entries — one
    /// sequential write pass per index instead of one root-to-leaf
    /// descent per row (see `ri_btree`'s `builder` module).  Returns
    /// the assigned row ids in input order.
    ///
    /// Errors with `InvalidArgument` if the heap or any index already
    /// holds data (callers fall back to [`Table::insert`] then) or if
    /// any row has the wrong column count.  Like every bulk load, the
    /// caller provides quiescence: concurrent DML on the same table
    /// during the build is unsupported (a lost race surfaces as the
    /// index builder's clean not-empty error, not as corruption).
    pub fn bulk_insert(&self, rows: &[impl AsRef<[i64]>]) -> Result<Vec<RowId>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        if self.heap.row_count()? != 0 {
            return Err(Error::InvalidArgument("bulk_insert requires an empty table".to_string()));
        }
        for idx in &self.indexes {
            if idx.tree.entry_count()? != 0 {
                return Err(Error::InvalidArgument(format!(
                    "bulk_insert requires empty indexes, but {} holds entries",
                    idx.name
                )));
            }
        }
        for row in rows {
            if row.as_ref().len() != self.columns.len() {
                return Err(Error::InvalidArgument(format!(
                    "row has {} columns, table has {}",
                    row.as_ref().len(),
                    self.columns.len()
                )));
            }
        }
        let mut rids = Vec::with_capacity(rows.len());
        for row in rows {
            rids.push(self.heap.insert(row.as_ref())?);
        }
        for idx in &self.indexes {
            let mut entries = Vec::with_capacity(rows.len());
            for (row, rid) in rows.iter().zip(&rids) {
                let row = row.as_ref();
                let mut cols = [0i64; ri_btree::MAX_ARITY];
                for (slot, &c) in cols.iter_mut().zip(&idx.key_cols) {
                    *slot = row[c];
                }
                entries.push(Entry::new(&cols[..idx.key_cols.len()], rid.raw()));
            }
            entries.sort_unstable();
            idx.tree.bulk_build_into(entries, 1.0)?;
        }
        Ok(rids)
    }

    /// Deletes a row by id, maintaining every index.
    ///
    /// Returns `false` if the row no longer exists.
    ///
    /// Claim-then-clean: the tombstone is the atomic claim (one short
    /// hold of the heap meta latch inside [`Heap::delete`]), so exactly
    /// one of any set of racing deletes wins and the losers report
    /// `false`; the winner then removes the index entries without
    /// holding any latch, so deletes scale like inserts.  If an index
    /// entry is not there *yet* — the row was discovered through one
    /// index while its insert was still filling in the others — the
    /// winner briefly waits for the in-flight insert to publish it
    /// (bounded; a truly absent entry is reported as corruption).
    pub fn delete(&self, rid: RowId) -> Result<bool> {
        let Some(row) = self.heap.fetch(rid)? else {
            return Ok(false);
        };
        if !self.heap.delete(rid)? {
            return Ok(false);
        }
        for idx in &self.indexes {
            let key: Vec<i64> = idx.key_cols.iter().map(|&c| row[c]).collect();
            let mut spins = 0u32;
            while !idx.tree.delete(&key, rid.raw())? {
                spins += 1;
                if spins > 100_000 {
                    return Err(Error::Corrupt(format!(
                        "index {} out of sync: missing entry for row {}",
                        idx.name,
                        rid.raw()
                    )));
                }
                std::thread::yield_now();
            }
        }
        Ok(true)
    }

    /// Fetches a row by id.
    pub fn fetch(&self, rid: RowId) -> Result<Option<Vec<i64>>> {
        self.heap.fetch(rid)
    }

    /// Full scan of all live rows.
    pub fn scan(&self) -> Result<Vec<(RowId, Vec<i64>)>> {
        self.heap.scan()
    }

    /// Direct access to an index B+-tree (for hand-written access methods).
    pub fn index(&self, name: &str) -> Result<&BTree> {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .map(|i| &i.tree)
            .ok_or_else(|| Error::InvalidArgument(format!("no such index {name}")))
    }

    /// Key column positions of an index.
    pub fn index_key_cols(&self, name: &str) -> Result<&[usize]> {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .map(|i| i.key_cols.as_slice())
            .ok_or_else(|| Error::InvalidArgument(format!("no such index {name}")))
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog::{Database, IndexDef, TableDef};
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
    use std::sync::Arc;

    fn db_with_indexed_table() -> Database {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(2048), BufferPoolConfig::with_capacity(64)));
        let db = Database::create(pool).unwrap();
        db.create_table(TableDef {
            name: "T".into(),
            columns: vec!["a".into(), "b".into(), "c".into()],
        })
        .unwrap();
        db.create_index("T", IndexDef { name: "AB".into(), key_cols: vec![0, 1] }).unwrap();
        db.create_index("T", IndexDef { name: "C".into(), key_cols: vec![2] }).unwrap();
        db
    }

    #[test]
    fn insert_maintains_all_indexes() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        for i in 0..200i64 {
            t.insert(&[i % 10, i, -i]).unwrap();
        }
        assert_eq!(db.index_stats("T", "AB").unwrap().entries, 200);
        assert_eq!(db.index_stats("T", "C").unwrap().entries, 200);
        // Key extraction respects column order.
        let hits = t.index("AB").unwrap().scan_range(&[3, i64::MIN], &[3, i64::MAX]).count();
        assert_eq!(hits, 20);
    }

    #[test]
    fn delete_maintains_all_indexes() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        let rid = t.insert(&[1, 2, 3]).unwrap();
        let keep = t.insert(&[1, 5, 9]).unwrap();
        assert!(t.delete(rid).unwrap());
        assert!(!t.delete(rid).unwrap());
        assert_eq!(db.index_stats("T", "AB").unwrap().entries, 1);
        assert_eq!(db.index_stats("T", "C").unwrap().entries, 1);
        assert_eq!(t.fetch(keep).unwrap(), Some(vec![1, 5, 9]));
        assert_eq!(t.fetch(rid).unwrap(), None);
    }

    #[test]
    fn index_payloads_are_row_ids() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        let rid = t.insert(&[7, 8, 9]).unwrap();
        let entry = t.index("C").unwrap().scan_range(&[9], &[9]).next().unwrap().unwrap();
        assert_eq!(entry.payload, rid.raw());
        let row = t.fetch(crate::heap::RowId::from_raw(entry.payload)).unwrap();
        assert_eq!(row, Some(vec![7, 8, 9]));
    }

    #[test]
    fn bulk_insert_fills_every_index_at_full_density() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        let rows: Vec<[i64; 3]> = (0..1000i64).map(|i| [i % 10, i, -i]).collect();
        let rids = t.bulk_insert(&rows).unwrap();
        assert_eq!(rids.len(), 1000);
        assert_eq!(t.row_count().unwrap(), 1000);
        assert_eq!(db.index_stats("T", "AB").unwrap().entries, 1000);
        assert_eq!(db.index_stats("T", "C").unwrap().entries, 1000);
        // Fill 1.0 ⇒ each index at its minimum possible page count.
        use ri_btree::layout::{internal_capacity, leaf_capacity};
        assert_eq!(
            db.index_stats("T", "AB").unwrap().pages,
            ri_btree::predicted_pages(1000, leaf_capacity(2048, 2), internal_capacity(2048, 2))
        );
        // Same observable contents as row-at-a-time inserts.
        let hits = t.index("AB").unwrap().scan_range(&[3, i64::MIN], &[3, i64::MAX]).count();
        assert_eq!(hits, 100);
        t.index("AB").unwrap().check_invariants().unwrap();
        t.index("C").unwrap().check_invariants().unwrap();
        // Index payloads are the assigned row ids.
        let entry = t.index("C").unwrap().scan_range(&[0], &[0]).next().unwrap().unwrap();
        let row = t.fetch(crate::heap::RowId::from_raw(entry.payload)).unwrap();
        assert_eq!(row, Some(vec![0, 0, 0]));
        // A second bulk load must be refused — the table is no longer
        // empty — while ordinary DML continues to work.
        assert!(t.bulk_insert(&rows).is_err());
        t.insert(&[99, 99, 99]).unwrap();
        assert_eq!(t.row_count().unwrap(), 1001);
    }

    #[test]
    fn wrong_arity_rejected() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        assert!(t.insert(&[1, 2]).is_err());
    }

    #[test]
    fn unknown_index_name_errors() {
        let db = db_with_indexed_table();
        let t = db.table("T").unwrap();
        assert!(t.index("NOPE").is_err());
        assert!(t.index_key_cols("NOPE").is_err());
    }
}
