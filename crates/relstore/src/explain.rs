//! EXPLAIN-style plan rendering, after the paper's Figure 10.
//!
//! ```text
//! SELECT STATEMENT
//!   UNION-ALL
//!     NESTED LOOPS
//!       COLLECTION ITERATOR LEFT_NODES
//!       INDEX RANGE SCAN UPPER_INDEX
//!     NESTED LOOPS
//!       COLLECTION ITERATOR RIGHT_NODES
//!       INDEX RANGE SCAN LOWER_INDEX
//! ```

use crate::exec::Plan;

/// Renders `plan` as an indented operator tree, one operator per line,
/// mirroring Oracle's `EXPLAIN PLAN` output shown in the paper's Figure 10.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::from("SELECT STATEMENT\n");
    render(plan, 1, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &Plan, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        Plan::CollectionIterator { name, rows } => {
            out.push_str(&format!("COLLECTION ITERATOR {name} ({} rows)\n", rows.len()));
        }
        Plan::IndexRangeScan { index, .. } => {
            out.push_str(&format!("INDEX RANGE SCAN {index}\n"));
        }
        Plan::NestedLoops { outer, inner } => {
            out.push_str("NESTED LOOPS\n");
            render(outer, depth + 1, out);
            render(inner, depth + 1, out);
        }
        Plan::UnionAll(inputs) => {
            out.push_str("UNION-ALL\n");
            for p in inputs {
                render(p, depth + 1, out);
            }
        }
        Plan::Filter { input, .. } => {
            out.push_str("FILTER\n");
            render(input, depth + 1, out);
        }
        Plan::Project { input, cols } => {
            out.push_str(&format!("PROJECTION {cols:?}\n"));
            render(input, depth + 1, out);
        }
        Plan::TableScan { table } => {
            out.push_str(&format!("TABLE ACCESS FULL {table}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BoundExpr;

    #[test]
    fn figure_10_shape() {
        let scan = |index: &str| Plan::IndexRangeScan {
            table: "INTERVALS".into(),
            index: index.into(),
            lo: vec![BoundExpr::Outer(0), BoundExpr::NegInf],
            hi: vec![BoundExpr::Outer(1), BoundExpr::PosInf],
        };
        let plan = Plan::UnionAll(vec![
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "LEFT_NODES".into(),
                    rows: vec![vec![0, 0]],
                }),
                inner: Box::new(scan("UPPER_INDEX")),
            },
            Plan::NestedLoops {
                outer: Box::new(Plan::CollectionIterator {
                    name: "RIGHT_NODES".into(),
                    rows: vec![vec![1, 1]],
                }),
                inner: Box::new(scan("LOWER_INDEX")),
            },
        ]);
        let text = explain(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "SELECT STATEMENT");
        assert_eq!(lines[1], "  UNION-ALL");
        assert_eq!(lines[2], "    NESTED LOOPS");
        assert!(lines[3].contains("COLLECTION ITERATOR LEFT_NODES"));
        assert!(lines[4].contains("INDEX RANGE SCAN UPPER_INDEX"));
        assert_eq!(lines[5], "    NESTED LOOPS");
        assert!(lines[6].contains("COLLECTION ITERATOR RIGHT_NODES"));
        assert!(lines[7].contains("INDEX RANGE SCAN LOWER_INDEX"));
    }

    #[test]
    fn filter_scan_render() {
        let plan = Plan::Filter {
            input: Box::new(Plan::TableScan { table: "T".into() }),
            pred: crate::exec::Predicate::True,
        };
        let text = explain(&plan);
        assert!(text.contains("FILTER"));
        assert!(text.contains("TABLE ACCESS FULL T"));
    }
}
