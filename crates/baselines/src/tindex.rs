//! The Tile Index (T-index) of Oracle8i Spatial [RS 99], re-implemented
//! for one-dimensional data spaces as the paper did for its evaluation:
//! "we have reimplemented the hybrid indexing package for one-dimensional
//! data spaces" (Section 6.1).
//!
//! An interval is decomposed into the **fixed-size tiles** of level `L`
//! (tile width `2^L`) that it overlaps; each tile yields one row carrying
//! the exact bounds (the 1D analogue of the variable-tile refinement).
//! Intersection queries scan the tile range covered by the query via an
//! equijoin-style index range scan, filter on the exact bounds, and
//! eliminate the duplicates caused by the decomposition.
//!
//! The redundancy factor — rows per interval, `1 + length/2^L` on average —
//! is the method's Achilles heel: Figure 12 (storage), Figure 16 (response
//! time vs. interval length) and the fixed-level tuning table all hinge on
//! it.  "Finding a good fixed level for the expected data distribution is
//! crucial"; [`TileIndex::tune_fixed_level`] reproduces the paper's
//! sample-based calibration.

use ri_pagestore::{Error, Result};
use ri_relstore::exec::CmpOp;
use ri_relstore::{
    BoundExpr, Database, ExecStats, IndexDef, IntervalAccessMethod, Plan, Predicate, RowId,
    TableDef,
};
use std::sync::Arc;

/// The T-index access method.
pub struct TileIndex {
    db: Arc<Database>,
    table_name: String,
    index_name: String,
    table: ri_relstore::Table,
    /// Tile width is `2^fixed_level`.
    fixed_level: u32,
}

impl TileIndex {
    /// Creates the schema with the given fixed level (tile width `2^L`).
    pub fn create(db: Arc<Database>, name: &str, fixed_level: u32) -> Result<TileIndex> {
        if fixed_level > 40 {
            return Err(Error::InvalidArgument(format!("fixed level {fixed_level} too large")));
        }
        let table_name = format!("TI_{name}");
        let index_name = format!("TI_{name}_IDX");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["tile".into(), "lower".into(), "upper".into(), "id".into()],
        })?;
        // The covering index: one entry per (interval × tile).
        db.create_index(
            &table_name,
            IndexDef { name: index_name.clone(), key_cols: vec![0, 1, 2, 3] },
        )?;
        db.set_param(&format!("TI_{name}.fixed_level"), fixed_level as i64)?;
        let table = db.table(&table_name)?;
        Ok(TileIndex { db, table_name, index_name, table, fixed_level })
    }

    /// Bulk path: heap first, index afterwards (clustered build).
    pub fn build_bulk(
        db: Arc<Database>,
        name: &str,
        fixed_level: u32,
        data: &[(i64, i64)],
    ) -> Result<TileIndex> {
        let table_name = format!("TI_{name}");
        let index_name = format!("TI_{name}_IDX");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["tile".into(), "lower".into(), "upper".into(), "id".into()],
        })?;
        let table = db.table(&table_name)?;
        let width = 1i64 << fixed_level;
        for (id, &(l, u)) in data.iter().enumerate() {
            for t in l.div_euclid(width)..=u.div_euclid(width) {
                table.insert(&[t, l, u, id as i64])?;
            }
        }
        db.create_index(
            &table_name,
            IndexDef { name: index_name.clone(), key_cols: vec![0, 1, 2, 3] },
        )?;
        db.set_param(&format!("TI_{name}.fixed_level"), fixed_level as i64)?;
        let table = db.table(&table_name)?;
        Ok(TileIndex { db, table_name, index_name, table, fixed_level })
    }

    /// The configured fixed level.
    pub fn fixed_level(&self) -> u32 {
        self.fixed_level
    }

    /// Redundancy factor: index entries per stored interval (Figure 12's
    /// headline number; 10.1 for D4(*, 2k) at the tuned level).
    pub fn redundancy(&self) -> Result<f64> {
        let entries = self.am_index_entries()? as f64;
        let n = self.am_count()? as f64;
        Ok(if n == 0.0 { 1.0 } else { entries / n })
    }

    fn tile_of(&self, x: i64) -> i64 {
        x.div_euclid(1i64 << self.fixed_level)
    }

    /// Query plan: one index range scan over the query's tile range plus
    /// the exact-bound filter (duplicates are eliminated by the caller).
    pub fn intersection_plan(&self, ql: i64, qu: i64) -> Plan {
        Plan::Filter {
            input: Box::new(Plan::IndexRangeScan {
                table: self.table_name.clone(),
                index: self.index_name.clone(),
                lo: vec![
                    BoundExpr::Const(self.tile_of(ql)),
                    BoundExpr::NegInf,
                    BoundExpr::NegInf,
                    BoundExpr::NegInf,
                ],
                hi: vec![
                    BoundExpr::Const(self.tile_of(qu)),
                    BoundExpr::PosInf,
                    BoundExpr::PosInf,
                    BoundExpr::PosInf,
                ],
            }),
            pred: Predicate::And(vec![
                Predicate::CmpConst { col: 1, op: CmpOp::Le, value: qu },
                Predicate::CmpConst { col: 2, op: CmpOp::Ge, value: ql },
            ]),
        }
    }

    /// Intersection with executor statistics; ids are deduplicated.
    pub fn intersection_with_stats(&self, ql: i64, qu: i64) -> Result<(Vec<i64>, ExecStats)> {
        let plan = self.intersection_plan(ql, qu);
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let mut ids: Vec<i64> = rows.iter().map(|r| r[3]).collect();
        ids.sort_unstable();
        ids.dedup(); // decomposition redundancy
        Ok((ids, stats))
    }

    /// Sample-based tuning of the fixed level (Section 6.1): "we took a
    /// representative sample of 1,000 intervals from each individual data
    /// distribution and determined the optimal setting".
    ///
    /// The sample stands in for a database of `target_n` intervals.  For
    /// each candidate level the estimated per-query cost is
    ///
    /// ```text
    /// density · (mean query length + mean interval length + tile width)
    ///         · redundancy(level)
    /// ```
    ///
    /// i.e. the expected number of index entries one query's tile-range
    /// scan touches: redundancy is measured exactly by decomposing the
    /// sample, the remaining factors are moments of sample and queries.
    /// Returns the level minimizing the estimate.  (Our cost surface is
    /// flatter than Oracle's — we have no per-variable-tile overhead — so
    /// the optimum lands a few levels above the paper's 7–9; the figure
    /// harness pins level 8 to mirror the paper's tuned configuration.)
    pub fn tune_fixed_level(
        sample: &[(i64, i64)],
        queries: &[(i64, i64)],
        levels: std::ops::RangeInclusive<u32>,
        target_n: usize,
    ) -> Result<u32> {
        if sample.is_empty() {
            return Ok(*levels.start());
        }
        let span = (sample.iter().map(|&(_, u)| u).max().unwrap()
            - sample.iter().map(|&(l, _)| l).min().unwrap())
        .max(1) as f64;
        let density = target_n as f64 / span;
        let mean_ilen =
            sample.iter().map(|&(l, u)| (u - l) as f64).sum::<f64>() / sample.len() as f64;
        let mean_qlen = if queries.is_empty() {
            0.0
        } else {
            queries.iter().map(|&(l, u)| (u - l) as f64).sum::<f64>() / queries.len() as f64
        };
        let mut best = (*levels.start(), f64::INFINITY);
        for level in levels {
            let width = (1i64 << level) as f64;
            let redundancy = sample
                .iter()
                .map(|&(l, u)| (u.div_euclid(1 << level) - l.div_euclid(1 << level) + 1) as f64)
                .sum::<f64>()
                / sample.len() as f64;
            let cost = density * (mean_qlen + mean_ilen + width) * redundancy;
            if cost < best.1 {
                best = (level, cost);
            }
        }
        Ok(best.0)
    }
}

impl IntervalAccessMethod for TileIndex {
    fn method_name(&self) -> &'static str {
        "T-index"
    }

    fn am_insert(&self, lower: i64, upper: i64, id: i64) -> Result<()> {
        let width = 1i64 << self.fixed_level;
        for t in lower.div_euclid(width)..=upper.div_euclid(width) {
            self.table.insert(&[t, lower, upper, id])?;
        }
        Ok(())
    }

    fn am_delete(&self, lower: i64, upper: i64, id: i64) -> Result<bool> {
        let width = 1i64 << self.fixed_level;
        let index = self.table.index(&self.index_name)?;
        let mut any = false;
        for t in lower.div_euclid(width)..=upper.div_euclid(width) {
            let key = [t, lower, upper, id];
            let rids: Vec<RowId> = index
                .scan_range(&key, &key)
                .map(|e| e.map(|e| RowId::from_raw(e.payload)))
                .collect::<Result<_>>()?;
            // Delete a single decomposition (the first matching row per
            // tile) — duplicates of the same logical interval share bounds
            // and id, so one row per tile disappears.
            if let Some(rid) = rids.first() {
                any |= self.table.delete(*rid)?;
            }
        }
        Ok(any)
    }

    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>> {
        Ok(self.intersection_with_stats(lower, upper)?.0)
    }

    fn am_intersection_with_stats(&self, lower: i64, upper: i64) -> Result<(Vec<i64>, ExecStats)> {
        self.intersection_with_stats(lower, upper)
    }

    fn am_index_entries(&self) -> Result<u64> {
        Ok(self.db.index_stats(&self.table_name, &self.index_name)?.entries)
    }

    fn am_count(&self) -> Result<u64> {
        // Rows are per (interval × tile); count distinct intervals via the
        // per-interval first tile: an interval's first tile contains its
        // lower bound, so rows with tile == tile_of(lower) are unique.
        let rows = self.table.scan()?;
        Ok(rows.iter().filter(|(_, r)| r[0] == self.tile_of(r[1])).count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_mem::NaiveIntervalSet;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn fresh(level: u32) -> TileIndex {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        TileIndex::create(db, "t", level).unwrap()
    }

    #[test]
    fn matches_naive_at_various_levels() {
        for level in [4, 8, 12] {
            let ti = fresh(level);
            let mut naive = NaiveIntervalSet::new();
            let mut x = 0x9999u64;
            for id in 0..400i64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 6000) as i64;
                let len = ((x >> 33) % 700) as i64;
                ti.am_insert(l, l + len, id).unwrap();
                naive.insert(l, l + len, id);
            }
            for q in [(0, 7000), (3000, 3010), (100, 100), (6500, 9000)] {
                assert_eq!(
                    ti.am_intersection(q.0, q.1).unwrap(),
                    naive.intersection(q.0, q.1),
                    "level {level}, query {q:?}"
                );
            }
        }
    }

    #[test]
    fn redundancy_grows_as_level_shrinks() {
        let data: Vec<(i64, i64)> = (0..200).map(|i| (i * 50, i * 50 + 2000)).collect();
        let mut last = 0.0f64;
        for level in [12, 10, 8, 6] {
            let ti = fresh(level);
            for (id, &(l, u)) in data.iter().enumerate() {
                ti.am_insert(l, u, id as i64).unwrap();
            }
            let r = ti.redundancy().unwrap();
            assert!(r > last, "redundancy must grow as tiles shrink: {r} after {last}");
            last = r;
        }
        // At level 8 (width 256), 2000-long intervals span ~9 tiles — the
        // magnitude of the paper's 10.1 factor for D4(*, 2k).
        let ti = fresh(8);
        for (id, &(l, u)) in data.iter().enumerate() {
            ti.am_insert(l, u, id as i64).unwrap();
        }
        let r = ti.redundancy().unwrap();
        assert!((7.0..12.0).contains(&r), "redundancy {r} out of expected band");
    }

    #[test]
    fn points_have_no_redundancy() {
        let ti = fresh(8);
        for i in 0..100 {
            ti.am_insert(i * 3, i * 3, i).unwrap();
        }
        assert_eq!(ti.redundancy().unwrap(), 1.0);
        assert_eq!(ti.am_count().unwrap(), 100);
    }

    #[test]
    fn delete_removes_all_decompositions() {
        let ti = fresh(4); // width 16
        ti.am_insert(0, 100, 1).unwrap(); // spans 7 tiles
        ti.am_insert(50, 60, 2).unwrap();
        assert!(ti.am_delete(0, 100, 1).unwrap());
        assert_eq!(ti.am_intersection(0, 100).unwrap(), vec![2]);
        assert_eq!(ti.am_count().unwrap(), 1);
        assert!(!ti.am_delete(0, 100, 1).unwrap());
    }

    #[test]
    fn tuning_picks_sane_level() {
        // 1000-interval sample with ~2000 mean length, as in the paper.
        let mut x = 0xABCDEFu64;
        let sample: Vec<(i64, i64)> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % (1 << 20)) as i64;
                let len = ((x >> 30) % 4000) as i64;
                (l, (l + len).min((1 << 20) - 1))
            })
            .collect();
        let queries: Vec<(i64, i64)> = (0..20)
            .map(|i| {
                let q = i * 50_000;
                (q, q + 5000)
            })
            .collect();
        let best = TileIndex::tune_fixed_level(&sample, &queries, 6..=14, 100_000).unwrap();
        // The paper found 7..9 optimal for d = 2k distributions; our cost
        // surface is flatter (pure entry counts, no per-variable-tile
        // overhead), so accept a wider plausible band.
        assert!((6..=13).contains(&best), "tuned level {best} implausible");
    }

    #[test]
    fn bulk_build_matches_dynamic() {
        let data: Vec<(i64, i64)> = (0..150).map(|i| (i * 37, i * 37 + 500)).collect();
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let bulk = TileIndex::build_bulk(db, "b", 8, &data).unwrap();
        let dynamic = fresh(8);
        for (id, &(l, u)) in data.iter().enumerate() {
            dynamic.am_insert(l, u, id as i64).unwrap();
        }
        assert_eq!(
            bulk.am_intersection(0, 10_000).unwrap(),
            dynamic.am_intersection(0, 10_000).unwrap()
        );
        assert_eq!(bulk.am_index_entries().unwrap(), dynamic.am_index_entries().unwrap());
    }
}
