//! A static Window-List in the spirit of Ramaswamy [Ram 97].
//!
//! The paper compares against the Window-List as the only other *relational*
//! structure with optimal static bounds (O(n/b) space, O(log_b n + r/b)
//! stabbing queries) and reports a single observation: "queries on
//! Window-Lists produced twice as many I/O operations than on the dynamic
//! RI-tree" (Section 6.1), after which the static structure is dropped from
//! the evaluation.
//!
//! **Substitution note** (see DESIGN.md): Ramaswamy's original windowing
//! construction is not fully specified in the VLDB paper's citation; we
//! implement the classic checkpointed sweep realization with the same
//! asymptotics: the sorted start-point sequence is cut into *windows*, each
//! window stores (a) a snapshot of all intervals alive at its start and
//! (b) the intervals starting inside it.  With the window width chosen so
//! snapshots and starts balance, total space is ≈ 2n rows — which is
//! precisely why its queries cost about twice the I/O of the
//! redundancy-free RI-tree, reproducing the paper's remark.
//!
//! A stabbing query locates the window of the query point (in-memory
//! directory), scans entries with `lower <= q` in that window and filters
//! on `upper >= q`; an interval query adds a range scan of the start-point
//! index over `(ql, qu]`.  Updates are unsupported: the structure is
//! static, which is exactly the paper's complaint about it.

use ri_pagestore::{Error, Result};
use ri_relstore::exec::CmpOp;
use ri_relstore::{
    BoundExpr, Database, ExecStats, IndexDef, IntervalAccessMethod, Plan, Predicate, TableDef,
};
use std::sync::Arc;

/// The static Window-List access method.
pub struct WindowList {
    db: Arc<Database>,
    table_name: String,
    window_index: String,
    start_index: String,
    /// Window start positions, ascending (the in-memory directory).
    boundaries: Vec<i64>,
    /// Stored intervals (not rows; rows include snapshot copies).
    n: u64,
}

impl WindowList {
    /// Builds the static structure from `(lower, upper)` pairs; interval
    /// `i` receives id `i`.
    pub fn build(db: Arc<Database>, name: &str, data: &[(i64, i64)]) -> Result<WindowList> {
        let table_name = format!("WL_{name}");
        let window_index = format!("WL_{name}_WIN");
        let start_index = format!("WL_{name}_START");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["wkey".into(), "lower".into(), "upper".into(), "id".into()],
        })?;
        let table = db.table(&table_name)?;

        let mut sorted: Vec<(i64, i64, i64)> =
            data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)).collect();
        sorted.sort_unstable();

        // Window width: balance snapshot size against starts per window.
        // Mean concurrency (alive intervals) ≈ n · mean_len / span; using
        // that as the starts-per-window count K makes snapshots ≈ starts,
        // i.e. total space ≈ 2n.
        let mut boundaries = Vec::new();
        if !sorted.is_empty() {
            let span = (sorted.last().unwrap().0 - sorted[0].0).max(1);
            let total_len: i64 = sorted.iter().map(|&(l, u, _)| u - l).sum();
            let concurrency = (total_len / span).max(1) as usize;
            let k = concurrency.clamp(16, 4096);
            // Primary copies + per-window snapshots.
            let mut active: Vec<(i64, i64, i64)> = Vec::new(); // (upper, lower, id)
            for (i, &(l, u, id)) in sorted.iter().enumerate() {
                if i % k == 0 {
                    // New window starting at this interval's lower bound.
                    boundaries.push(l);
                    active.retain(|&(au, _, _)| au >= l);
                    let w = boundaries.len() as i64 - 1;
                    for &(au, al, aid) in &active {
                        table.insert(&[w, al, au, aid])?; // snapshot copy
                    }
                }
                let w = boundaries.len() as i64 - 1;
                table.insert(&[w, l, u, id])?; // primary copy
                active.push((u, l, id));
            }
        }
        db.create_index(
            &table_name,
            IndexDef { name: window_index.clone(), key_cols: vec![0, 1, 2, 3] },
        )?;
        db.create_index(
            &table_name,
            IndexDef { name: start_index.clone(), key_cols: vec![1, 2, 3] },
        )?;
        Ok(WindowList {
            db,
            table_name,
            window_index,
            start_index,
            boundaries,
            n: data.len() as u64,
        })
    }

    /// Window containing `q`: the last boundary `<= q`, if any.
    fn window_of(&self, q: i64) -> Option<i64> {
        match self.boundaries.partition_point(|&b| b <= q) {
            0 => None,
            i => Some(i as i64 - 1),
        }
    }

    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Rows stored per interval (≈ 2 by construction).
    pub fn duplication_factor(&self) -> Result<f64> {
        let rows = self.db.table(&self.table_name)?.row_count()? as f64;
        Ok(if self.n == 0 { 1.0 } else { rows / self.n as f64 })
    }

    /// Intersection query with executor statistics; ids deduplicated.
    pub fn intersection_with_stats(&self, ql: i64, qu: i64) -> Result<(Vec<i64>, ExecStats)> {
        let mut branches = Vec::new();
        if let Some(w) = self.window_of(ql) {
            // Stab branch: intervals with lower <= ql alive at ql, found in
            // ql's window (snapshot + in-window starts).
            branches.push(Plan::Filter {
                input: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.window_index.clone(),
                    lo: vec![
                        BoundExpr::Const(w),
                        BoundExpr::NegInf,
                        BoundExpr::NegInf,
                        BoundExpr::NegInf,
                    ],
                    hi: vec![
                        BoundExpr::Const(w),
                        BoundExpr::Const(ql),
                        BoundExpr::PosInf,
                        BoundExpr::PosInf,
                    ],
                }),
                pred: Predicate::CmpConst { col: 2, op: CmpOp::Ge, value: ql },
            });
        }
        if qu > ql {
            // Range branch: intervals starting inside (ql, qu].  Output
            // columns (lower, upper, id, rowid): pad to align id at col 3.
            branches.push(Plan::Project {
                input: Box::new(Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.start_index.clone(),
                    lo: vec![BoundExpr::Const(ql + 1), BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Const(qu), BoundExpr::PosInf, BoundExpr::PosInf],
                }),
                cols: vec![0, 0, 1, 2],
            });
        }
        let plan = Plan::UnionAll(branches);
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let mut ids: Vec<i64> = rows.iter().map(|r| r[3]).collect();
        ids.sort_unstable();
        ids.dedup(); // snapshot copies duplicate ids across branches/windows
        Ok((ids, stats))
    }
}

impl IntervalAccessMethod for WindowList {
    fn method_name(&self) -> &'static str {
        "Window-List"
    }

    fn am_insert(&self, _lower: i64, _upper: i64, _id: i64) -> Result<()> {
        // "The Window-List technique is a static solution ... updates do
        // not seem to have non-trivial upper bounds" (Section 2.3).
        Err(Error::InvalidArgument("Window-List is static: rebuild to add intervals".into()))
    }

    fn am_delete(&self, _lower: i64, _upper: i64, _id: i64) -> Result<bool> {
        Err(Error::InvalidArgument("Window-List is static: rebuild to remove intervals".into()))
    }

    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>> {
        Ok(self.intersection_with_stats(lower, upper)?.0)
    }

    fn am_intersection_with_stats(&self, lower: i64, upper: i64) -> Result<(Vec<i64>, ExecStats)> {
        self.intersection_with_stats(lower, upper)
    }

    fn am_index_entries(&self) -> Result<u64> {
        Ok(self.db.index_stats(&self.table_name, &self.window_index)?.entries)
    }

    fn am_count(&self) -> Result<u64> {
        Ok(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_mem::NaiveIntervalSet;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn build(data: &[(i64, i64)]) -> WindowList {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        WindowList::build(db, "t", data).unwrap()
    }

    fn pseudo_data(n: usize, seed: u64, max_len: u64) -> Vec<(i64, i64)> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % 50_000) as i64;
                let len = ((x >> 33) % max_len.max(1)) as i64;
                (l, l + len)
            })
            .collect()
    }

    #[test]
    fn empty_structure() {
        let wl = build(&[]);
        assert_eq!(wl.am_intersection(0, 100).unwrap(), Vec::<i64>::new());
        assert_eq!(wl.window_count(), 0);
    }

    #[test]
    fn matches_naive() {
        let data = pseudo_data(3000, 0x5151, 3000);
        let wl = build(&data);
        let naive = NaiveIntervalSet::from_triples(
            data.iter().enumerate().map(|(id, &(l, u))| (l, u, id as i64)),
        );
        for q in [(0i64, 60_000i64), (25_000, 25_000), (10_000, 11_000), (49_999, 80_000), (-10, 5)]
        {
            assert_eq!(
                wl.am_intersection(q.0, q.1).unwrap(),
                naive.intersection(q.0, q.1),
                "{q:?}"
            );
        }
    }

    #[test]
    fn duplication_factor_is_bounded() {
        let data = pseudo_data(5000, 0xBEEF, 4000);
        let wl = build(&data);
        let f = wl.duplication_factor().unwrap();
        assert!((1.0..4.0).contains(&f), "duplication factor {f} outside the ~2x design target");
    }

    #[test]
    fn static_structure_rejects_updates() {
        let wl = build(&[(0, 10)]);
        assert!(wl.am_insert(1, 2, 9).is_err());
        assert!(wl.am_delete(0, 10, 0).is_err());
    }

    #[test]
    fn query_before_first_window() {
        let wl = build(&[(100, 200), (150, 250)]);
        assert_eq!(wl.am_intersection(0, 50).unwrap(), Vec::<i64>::new());
        assert_eq!(wl.am_intersection(0, 120).unwrap(), vec![0]);
    }
}
