//! MAP21 of Nascimento & Dunham [ND 99].
//!
//! MAP21 maps an interval to the single value `lower · 10^z + upper` kept
//! in a plain B+-tree — equivalent to a composite `(lower, upper)` index,
//! as the paper notes ("behaves very similar to the IST while the composite
//! index (lower, upper) is implemented by a single-column index") — and
//! adds a **static partitioning by interval length**: each partition `j`
//! holds intervals with `length < 2^(j+1)`, so an intersection query only
//! scans `lower ∈ [ql − maxlen_j, qu]` per partition instead of the whole
//! prefix of the index.
//!
//! With many long intervals the widest partitions still degenerate towards
//! O(n/b), the weakness the RI-tree paper points out in Section 2.3.

use ri_pagestore::Result;
use ri_relstore::exec::CmpOp;
use ri_relstore::{
    BoundExpr, Database, ExecStats, IndexDef, IntervalAccessMethod, Plan, Predicate, RowId,
    TableDef,
};
use std::sync::Arc;

/// Number of length partitions (lengths up to 2^21 − 2 in the paper's
/// 2^20-wide domain).
const PARTITIONS: u32 = 22;

/// The MAP21 access method.
pub struct Map21 {
    db: Arc<Database>,
    name: String,
    table_name: String,
    index_name: String,
    table: ri_relstore::Table,
}

/// Length partition of an interval: `floor(log2(length + 1))`.
fn partition_of(lower: i64, upper: i64) -> i64 {
    let len = upper - lower;
    (63 - (len + 1).leading_zeros()) as i64
}

/// Largest length a partition can hold: `2^(j+1) − 2`.
fn max_len(partition: i64) -> i64 {
    (1i64 << (partition + 1)) - 2
}

impl Map21 {
    /// Creates the partitioned schema.
    pub fn create(db: Arc<Database>, name: &str) -> Result<Map21> {
        let table_name = format!("M21_{name}");
        let index_name = format!("M21_{name}_IDX");
        db.create_table(TableDef {
            name: table_name.clone(),
            columns: vec!["part".into(), "lower".into(), "upper".into(), "id".into()],
        })?;
        db.create_index(
            &table_name,
            IndexDef { name: index_name.clone(), key_cols: vec![0, 1, 2, 3] },
        )?;
        let table = db.table(&table_name)?;
        Ok(Map21 { db, name: name.to_string(), table_name, index_name, table })
    }

    fn parts_mask_key(&self) -> String {
        format!("M21_{}.parts", self.name)
    }

    /// Bitmask of non-empty partitions (kept in the data dictionary so
    /// queries skip empty partitions without probing them).
    fn parts_mask(&self) -> i64 {
        self.db.get_param(&self.parts_mask_key()).unwrap_or(0)
    }

    /// Per-partition query plans for an intersection query.
    pub fn intersection_plans(&self, ql: i64, qu: i64) -> Vec<Plan> {
        let mask = self.parts_mask();
        (0..PARTITIONS as i64)
            .filter(|j| mask & (1 << j) != 0)
            .map(|j| {
                // lower ∈ [ql − maxlen_j, qu] is a superset of the
                // intersecting intervals in partition j; filter on upper.
                Plan::Filter {
                    input: Box::new(Plan::IndexRangeScan {
                        table: self.table_name.clone(),
                        index: self.index_name.clone(),
                        lo: vec![
                            BoundExpr::Const(j),
                            BoundExpr::Const(ql.saturating_sub(max_len(j))),
                            BoundExpr::NegInf,
                            BoundExpr::NegInf,
                        ],
                        hi: vec![
                            BoundExpr::Const(j),
                            BoundExpr::Const(qu),
                            BoundExpr::PosInf,
                            BoundExpr::PosInf,
                        ],
                    }),
                    pred: Predicate::CmpConst { col: 2, op: CmpOp::Ge, value: ql },
                }
            })
            .collect()
    }

    /// Intersection with executor statistics.
    pub fn intersection_with_stats(&self, ql: i64, qu: i64) -> Result<(Vec<i64>, ExecStats)> {
        let plan = Plan::UnionAll(self.intersection_plans(ql, qu));
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let mut ids: Vec<i64> = rows.iter().map(|r| r[3]).collect();
        ids.sort_unstable();
        Ok((ids, stats))
    }
}

impl IntervalAccessMethod for Map21 {
    fn method_name(&self) -> &'static str {
        "MAP21"
    }

    fn am_insert(&self, lower: i64, upper: i64, id: i64) -> Result<()> {
        let j = partition_of(lower, upper);
        self.table.insert(&[j, lower, upper, id])?;
        let mask = self.parts_mask();
        if mask & (1 << j) == 0 {
            self.db.set_param(&self.parts_mask_key(), mask | (1 << j))?;
        }
        Ok(())
    }

    fn am_delete(&self, lower: i64, upper: i64, id: i64) -> Result<bool> {
        let key = [partition_of(lower, upper), lower, upper, id];
        let index = self.table.index(&self.index_name)?;
        let mut found = None;
        if let Some(e) = index.scan_range(&key, &key).next() {
            found = Some(RowId::from_raw(e?.payload));
        }
        match found {
            Some(rid) => self.table.delete(rid),
            None => Ok(false),
        }
    }

    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>> {
        Ok(self.intersection_with_stats(lower, upper)?.0)
    }

    fn am_intersection_with_stats(&self, lower: i64, upper: i64) -> Result<(Vec<i64>, ExecStats)> {
        self.intersection_with_stats(lower, upper)
    }

    fn am_index_entries(&self) -> Result<u64> {
        Ok(self.db.index_stats(&self.table_name, &self.index_name)?.entries)
    }

    fn am_count(&self) -> Result<u64> {
        self.table.row_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_mem::NaiveIntervalSet;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn fresh() -> Map21 {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        Map21::create(db, "t").unwrap()
    }

    #[test]
    fn partition_math() {
        assert_eq!(partition_of(5, 5), 0); // length 0
        assert_eq!(partition_of(0, 1), 1); // length 1
        assert_eq!(partition_of(0, 2), 1); // length 2
        assert_eq!(partition_of(0, 6), 2); // length 6 < 2^3 - 1
        assert!(max_len(1) >= 2);
        for j in 0..20 {
            // Every length in partition j is <= max_len(j).
            assert!(max_len(j) >= (1 << j) - 1);
        }
    }

    #[test]
    fn matches_naive() {
        let m = fresh();
        let mut naive = NaiveIntervalSet::new();
        let mut x = 0xFEDCBAu64;
        for id in 0..500i64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = (x % 10_000) as i64;
            let len = ((x >> 32) % 1500) as i64;
            m.am_insert(l, l + len, id).unwrap();
            naive.insert(l, l + len, id);
        }
        for q in [(0, 12_000), (5000, 5100), (777, 777), (11_000, 20_000)] {
            assert_eq!(m.am_intersection(q.0, q.1).unwrap(), naive.intersection(q.0, q.1));
        }
    }

    #[test]
    fn only_nonempty_partitions_are_probed() {
        let m = fresh();
        for i in 0..50 {
            m.am_insert(i * 10, i * 10 + 5, i).unwrap(); // all partition 2
        }
        let plans = m.intersection_plans(0, 1000);
        assert_eq!(plans.len(), 1, "one non-empty partition expected");
    }

    #[test]
    fn long_intervals_widen_the_scan() {
        let m = fresh();
        // Long intervals: the partition's maxlen forces wide scans even for
        // point queries — the degeneration the paper describes.
        for i in 0..200i64 {
            m.am_insert(i * 100, i * 100 + 60_000, i).unwrap();
        }
        let (ids, stats) = m.intersection_with_stats(10_000, 10_000).unwrap();
        assert!(!ids.is_empty());
        assert!(
            stats.rows_examined as usize >= ids.len(),
            "wide partition scan examines extra rows"
        );
    }

    #[test]
    fn delete_exact() {
        let m = fresh();
        m.am_insert(10, 30, 1).unwrap();
        m.am_insert(10, 30, 2).unwrap();
        assert!(m.am_delete(10, 30, 1).unwrap());
        assert!(!m.am_delete(10, 30, 1).unwrap());
        assert_eq!(m.am_intersection(0, 100).unwrap(), vec![2]);
    }
}
