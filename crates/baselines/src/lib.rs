//! The dynamic relational competitors of the paper's evaluation (Section 6).
//!
//! "Among the wide range of existing interval access methods only the
//! static Window-List approach, the Tile Index and the Interval-Spatial
//! Transformation technique are designed to use existing B+-trees on an
//! as-they-are basis" — so these are the baselines the paper measures the
//! RI-tree against, and these are what this crate provides:
//!
//! * [`ist::Ist`] — the Interval-Spatial Transformation of Goh et al.: a
//!   composite index on the interval bounds.  The D-ordering is equivalent
//!   to an index on `(upper, lower)` (the variant the paper benchmarks,
//!   Figure 11) and the V-ordering to `(lower, upper)`.
//! * [`tindex::TileIndex`] — the Oracle8i Spatial Tile Index: hybrid
//!   fixed/variable tiling re-implemented for one-dimensional data spaces,
//!   including the sample-based tuning of the fixed level (Section 6.1).
//! * [`map21::Map21`] — MAP21 of Nascimento & Dunham: interval bounds in a
//!   single lexicographic key with static partitioning by interval length.
//! * [`windowlist::WindowList`] — a faithful stand-in for Ramaswamy's
//!   static Window-List (see the module docs for the substitution note).
//!
//! All methods run on the same [`ri_relstore`] engine and implement
//! [`ri_relstore::IntervalAccessMethod`], so their physical I/O is measured
//! under exactly the same buffer-pool rules as the RI-tree's.

pub mod ist;
pub mod map21;
pub mod tindex;
pub mod windowlist;

pub use ist::{Ist, IstOrder};
pub use map21::Map21;
pub use tindex::TileIndex;
pub use windowlist::WindowList;

pub use ri_relstore::IntervalAccessMethod;
