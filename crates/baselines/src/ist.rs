//! Interval-Spatial Transformation (IST) of Goh et al. [GLOT 96].
//!
//! "Aside from quantization aspects, the D-ordering is equivalent to a
//! composite index on the interval bounds (upper, lower), and the
//! V-ordering corresponds to an index on (lower, upper)" (paper
//! Section 2.3); "the H-ordering simulates an index on
//! (upper − lower, lower), thus particularly supporting queries referring
//! to the interval length".  All three orderings are implemented; the
//! evaluation benchmarks the D-order variant and its Figure 11 query:
//!
//! ```sql
//! SELECT id FROM Intervals i
//! WHERE (i.upper >= :lower AND i.lower <= :upper);
//! ```
//!
//! On a `(upper, lower)` index this is one range scan over all entries with
//! `upper >= :lower`, filtering on `lower` — which is why the method
//! degenerates to O(n/b) when the query point is far from the upper end of
//! the data space (reproduced in Figure 17).  The H-ordering cannot narrow
//! intersection queries at all (full scan) but answers *length* queries
//! with one tight range scan — see [`Ist::length_with_stats`].

use ri_pagestore::Result;
use ri_relstore::exec::CmpOp;
use ri_relstore::{
    BoundExpr, Database, ExecStats, IndexDef, IntervalAccessMethod, Plan, Predicate, RowId,
    TableDef,
};
use std::sync::Arc;

/// Which space-filling ordering backs the index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IstOrder {
    /// Composite index `(upper, lower)`: the paper's benchmarked variant.
    D,
    /// Composite index `(lower, upper)`.
    V,
    /// Composite index `(upper − lower, lower)`: length-first.
    H,
}

/// The IST access method: one composite index over the interval bounds.
pub struct Ist {
    db: Arc<Database>,
    order: IstOrder,
    table_name: String,
    index_name: String,
    table: ri_relstore::Table,
}

impl IstOrder {
    /// Table columns for this ordering (H carries a materialized length).
    fn columns(self) -> Vec<String> {
        let mut cols = vec!["lower".to_string(), "upper".to_string(), "id".to_string()];
        if self == IstOrder::H {
            cols.push("len".to_string());
        }
        cols
    }

    /// Index key columns over [`IstOrder::columns`].
    fn key_cols(self) -> Vec<usize> {
        match self {
            IstOrder::D => vec![1, 0, 2], // (upper, lower, id)
            IstOrder::V => vec![0, 1, 2], // (lower, upper, id)
            IstOrder::H => vec![3, 0, 2], // (len, lower, id)
        }
    }

    fn row(self, lower: i64, upper: i64, id: i64) -> Vec<i64> {
        match self {
            IstOrder::H => vec![lower, upper, id, upper - lower],
            _ => vec![lower, upper, id],
        }
    }

    fn key(self, lower: i64, upper: i64, id: i64) -> [i64; 3] {
        match self {
            IstOrder::D => [upper, lower, id],
            IstOrder::V => [lower, upper, id],
            IstOrder::H => [upper - lower, lower, id],
        }
    }
}

impl Ist {
    /// Creates the table and its single composite index.
    pub fn create(db: Arc<Database>, name: &str, order: IstOrder) -> Result<Ist> {
        let table_name = format!("IST_{name}");
        let index_name = format!("IST_{name}_IDX");
        db.create_table(TableDef { name: table_name.clone(), columns: order.columns() })?;
        db.create_index(
            &table_name,
            IndexDef { name: index_name.clone(), key_cols: order.key_cols() },
        )?;
        let table = db.table(&table_name)?;
        Ok(Ist { db, order, table_name, index_name, table })
    }

    /// Bulk path: fills the heap first, then builds the index sorted —
    /// giving the "good clustering properties of the bulk loaded indexes"
    /// the paper grants the competitors (Section 6.3).
    pub fn build_bulk(
        db: Arc<Database>,
        name: &str,
        order: IstOrder,
        data: &[(i64, i64)],
    ) -> Result<Ist> {
        let table_name = format!("IST_{name}");
        let index_name = format!("IST_{name}_IDX");
        db.create_table(TableDef { name: table_name.clone(), columns: order.columns() })?;
        let table = db.table(&table_name)?;
        for (id, &(l, u)) in data.iter().enumerate() {
            table.insert(&order.row(l, u, id as i64))?;
        }
        db.create_index(
            &table_name,
            IndexDef { name: index_name.clone(), key_cols: order.key_cols() },
        )?;
        let table = db.table(&table_name)?;
        Ok(Ist { db, order, table_name, index_name, table })
    }

    /// The intersection query (Figure 11) as a physical plan.
    ///
    /// Index scan output rows are (first key col, second key col, id,
    /// rowid); the residual filter references them positionally.
    pub fn intersection_plan(&self, ql: i64, qu: i64) -> Plan {
        let full_scan_from = |lo0: BoundExpr| Plan::IndexRangeScan {
            table: self.table_name.clone(),
            index: self.index_name.clone(),
            lo: vec![lo0, BoundExpr::NegInf, BoundExpr::NegInf],
            hi: vec![BoundExpr::PosInf, BoundExpr::PosInf, BoundExpr::PosInf],
        };
        let (scan, filter) = match self.order {
            IstOrder::D => (
                // upper >= :lower — one contiguous range to the index end.
                full_scan_from(BoundExpr::Const(ql)),
                // ... AND lower <= :upper.
                Predicate::CmpConst { col: 1, op: CmpOp::Le, value: qu },
            ),
            IstOrder::V => (
                // lower <= :upper — range from the index start.
                Plan::IndexRangeScan {
                    table: self.table_name.clone(),
                    index: self.index_name.clone(),
                    lo: vec![BoundExpr::NegInf, BoundExpr::NegInf, BoundExpr::NegInf],
                    hi: vec![BoundExpr::Const(qu), BoundExpr::PosInf, BoundExpr::PosInf],
                },
                // ... AND upper >= :lower.
                Predicate::CmpConst { col: 1, op: CmpOp::Ge, value: ql },
            ),
            IstOrder::H => (
                // Length-first index: no bound helps an intersection query —
                // the whole index is scanned (the worst case of Section 2.3).
                full_scan_from(BoundExpr::NegInf),
                Predicate::And(vec![
                    // lower <= :upper
                    Predicate::CmpConst { col: 1, op: CmpOp::Le, value: qu },
                    // len + lower (= upper) >= :lower
                    Predicate::CmpSum { a: 0, b: 1, op: CmpOp::Ge, value: ql },
                ]),
            ),
        };
        Plan::Filter { input: Box::new(scan), pred: filter }
    }

    /// Intersection query returning executor statistics.
    pub fn intersection_with_stats(&self, ql: i64, qu: i64) -> Result<(Vec<i64>, ExecStats)> {
        let plan = self.intersection_plan(ql, qu);
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let mut ids: Vec<i64> = rows.iter().map(|r| r[2]).collect();
        ids.sort_unstable();
        Ok((ids, stats))
    }

    /// Length query: ids of intervals with `min_len <= length <= max_len` —
    /// the query class the H-ordering exists for.  One tight range scan
    /// under H; a full scan with a residual length predicate under D/V.
    pub fn length_with_stats(&self, min_len: i64, max_len: i64) -> Result<(Vec<i64>, ExecStats)> {
        let full_scan = || Plan::IndexRangeScan {
            table: self.table_name.clone(),
            index: self.index_name.clone(),
            lo: vec![BoundExpr::NegInf; 3],
            hi: vec![BoundExpr::PosInf; 3],
        };
        let plan = match self.order {
            IstOrder::H => Plan::IndexRangeScan {
                table: self.table_name.clone(),
                index: self.index_name.clone(),
                lo: vec![BoundExpr::Const(min_len), BoundExpr::NegInf, BoundExpr::NegInf],
                hi: vec![BoundExpr::Const(max_len), BoundExpr::PosInf, BoundExpr::PosInf],
            },
            // D: key (upper, lower): length = col0 - col1.
            IstOrder::D => Plan::Filter {
                input: Box::new(full_scan()),
                pred: Predicate::And(vec![
                    Predicate::CmpDiff { a: 0, b: 1, op: CmpOp::Ge, value: min_len },
                    Predicate::CmpDiff { a: 0, b: 1, op: CmpOp::Le, value: max_len },
                ]),
            },
            // V: key (lower, upper): length = col1 - col0.
            IstOrder::V => Plan::Filter {
                input: Box::new(full_scan()),
                pred: Predicate::And(vec![
                    Predicate::CmpDiff { a: 1, b: 0, op: CmpOp::Ge, value: min_len },
                    Predicate::CmpDiff { a: 1, b: 0, op: CmpOp::Le, value: max_len },
                ]),
            },
        };
        let mut stats = ExecStats::default();
        let rows = self.db.execute(&plan, &mut stats)?;
        let mut ids: Vec<i64> = rows.iter().map(|r| r[2]).collect();
        ids.sort_unstable();
        Ok((ids, stats))
    }
}

impl IntervalAccessMethod for Ist {
    fn method_name(&self) -> &'static str {
        match self.order {
            IstOrder::D => "IST(D)",
            IstOrder::V => "IST(V)",
            IstOrder::H => "IST(H)",
        }
    }

    fn am_insert(&self, lower: i64, upper: i64, id: i64) -> Result<()> {
        self.table.insert(&self.order.row(lower, upper, id))?;
        Ok(())
    }

    fn am_delete(&self, lower: i64, upper: i64, id: i64) -> Result<bool> {
        let key = self.order.key(lower, upper, id);
        let index = self.table.index(&self.index_name)?;
        let mut found = None;
        if let Some(e) = index.scan_range(&key, &key).next() {
            found = Some(RowId::from_raw(e?.payload));
        }
        match found {
            Some(rid) => self.table.delete(rid),
            None => Ok(false),
        }
    }

    fn am_intersection(&self, lower: i64, upper: i64) -> Result<Vec<i64>> {
        Ok(self.intersection_with_stats(lower, upper)?.0)
    }

    fn am_intersection_with_stats(&self, lower: i64, upper: i64) -> Result<(Vec<i64>, ExecStats)> {
        self.intersection_with_stats(lower, upper)
    }

    fn am_index_entries(&self) -> Result<u64> {
        Ok(self.db.index_stats(&self.table_name, &self.index_name)?.entries)
    }

    fn am_count(&self) -> Result<u64> {
        self.table.row_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_mem::NaiveIntervalSet;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk, DEFAULT_PAGE_SIZE};

    fn fresh(order: IstOrder) -> Ist {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        Ist::create(db, "t", order).unwrap()
    }

    fn check_against_naive(ist: &Ist) {
        let mut naive = NaiveIntervalSet::new();
        let mut x = 0x1234_5678u64;
        for id in 0..500i64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = (x % 8000) as i64;
            let len = ((x >> 35) % 400) as i64;
            ist.am_insert(l, l + len, id).unwrap();
            naive.insert(l, l + len, id);
        }
        for q in [(0, 9000), (100, 120), (4000, 4000), (7900, 8500)] {
            assert_eq!(ist.am_intersection(q.0, q.1).unwrap(), naive.intersection(q.0, q.1));
        }
    }

    #[test]
    fn d_order_matches_naive() {
        check_against_naive(&fresh(IstOrder::D));
    }

    #[test]
    fn v_order_matches_naive() {
        check_against_naive(&fresh(IstOrder::V));
    }

    #[test]
    fn h_order_matches_naive() {
        check_against_naive(&fresh(IstOrder::H));
    }

    #[test]
    fn no_redundancy_one_entry_per_interval() {
        let ist = fresh(IstOrder::D);
        for i in 0..100 {
            ist.am_insert(i, i + 50, i).unwrap();
        }
        assert_eq!(ist.am_index_entries().unwrap(), 100);
    }

    #[test]
    fn delete_exact_entry_every_order() {
        for order in [IstOrder::D, IstOrder::V, IstOrder::H] {
            let ist = fresh(order);
            ist.am_insert(1, 5, 10).unwrap();
            ist.am_insert(1, 5, 11).unwrap();
            assert!(ist.am_delete(1, 5, 10).unwrap(), "{order:?}");
            assert!(!ist.am_delete(1, 5, 10).unwrap(), "{order:?}");
            assert_eq!(ist.am_intersection(0, 10).unwrap(), vec![11], "{order:?}");
        }
    }

    #[test]
    fn bulk_build_equals_dynamic() {
        let data: Vec<(i64, i64)> = (0..300).map(|i| (i * 11 % 997, i * 11 % 997 + 30)).collect();
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(DEFAULT_PAGE_SIZE),
            BufferPoolConfig::with_capacity(200),
        ));
        let db = Arc::new(Database::create(pool).unwrap());
        let bulk = Ist::build_bulk(db, "b", IstOrder::D, &data).unwrap();
        let dynamic = fresh(IstOrder::D);
        for (id, &(l, u)) in data.iter().enumerate() {
            dynamic.am_insert(l, u, id as i64).unwrap();
        }
        for q in [(0, 2000), (500, 510)] {
            assert_eq!(
                bulk.am_intersection(q.0, q.1).unwrap(),
                dynamic.am_intersection(q.0, q.1).unwrap()
            );
        }
    }

    #[test]
    fn wrong_bound_scan_cost_asymmetry() {
        // The Section 2.3 argument: a D-order index answers queries near
        // the top of the data space cheaply but scans almost everything for
        // queries near the bottom.
        let ist = fresh(IstOrder::D);
        for i in 0..2000i64 {
            ist.am_insert(i * 4, i * 4 + 10, i).unwrap();
        }
        let (_, near_top) = ist.intersection_with_stats(7990, 7995).unwrap();
        let (_, near_bottom) = ist.intersection_with_stats(5, 10).unwrap();
        assert!(
            near_bottom.rows_examined > 10 * near_top.rows_examined.max(1),
            "expected wrong-bound degeneration: top {} vs bottom {}",
            near_top.rows_examined,
            near_bottom.rows_examined
        );
    }

    #[test]
    fn h_order_wins_length_queries() {
        let h = fresh(IstOrder::H);
        let d = fresh(IstOrder::D);
        let mut expected = Vec::new();
        for i in 0..2000i64 {
            let len = i % 100;
            h.am_insert(i * 5, i * 5 + len, i).unwrap();
            d.am_insert(i * 5, i * 5 + len, i).unwrap();
            if (40..=45).contains(&len) {
                expected.push(i);
            }
        }
        expected.sort_unstable();
        let (ids_h, stats_h) = h.length_with_stats(40, 45).unwrap();
        let (ids_d, stats_d) = d.length_with_stats(40, 45).unwrap();
        assert_eq!(ids_h, expected);
        assert_eq!(ids_d, expected);
        assert!(
            stats_h.rows_examined * 5 < stats_d.rows_examined,
            "H-order length query should scan far less: {} vs {}",
            stats_h.rows_examined,
            stats_d.rows_examined
        );
    }
}
