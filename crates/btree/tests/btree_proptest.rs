//! Property-based tests: the B+-tree must behave exactly like an ordered
//! set of `(key, payload)` pairs under arbitrary operation sequences, with
//! structural invariants holding after every operation.

use proptest::prelude::*;
use ri_btree::BTree;
use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, i64, u64),
    Delete(i64, i64, u64),
    Scan(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A narrow key domain maximizes duplicate keys and delete hits.
    let small = -20i64..20i64;
    prop_oneof![
        4 => (small.clone(), small.clone(), 0u64..4).prop_map(|(a, b, p)| Op::Insert(a, b, p)),
        2 => (small.clone(), small.clone(), 0u64..4).prop_map(|(a, b, p)| Op::Delete(a, b, p)),
        1 => (small.clone(), small).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tree_equals_model_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..250)) {
        // A 4-frame pool over 128-byte pages forces constant splits and
        // evictions — the most hostile configuration for structural bugs.
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(128),
            BufferPoolConfig::with_capacity(4),
        ));
        let tree = BTree::create(pool, 2).unwrap();
        let mut model: BTreeSet<(i64, i64, u64)> = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(a, b, p) => {
                    if model.insert((a, b, p)) {
                        tree.insert(&[a, b], p).unwrap();
                    }
                }
                Op::Delete(a, b, p) => {
                    let existed = model.remove(&(a, b, p));
                    prop_assert_eq!(tree.delete(&[a, b], p).unwrap(), existed);
                }
                Op::Scan(lo, hi) => {
                    let got: Vec<(i64, i64, u64)> = tree
                        .scan_range(&[lo, i64::MIN], &[hi, i64::MAX])
                        .map(|r| r.unwrap())
                        .map(|e| (e.key.col(0), e.key.col(1), e.payload))
                        .collect();
                    let want: Vec<(i64, i64, u64)> = model
                        .iter()
                        .copied()
                        .filter(|&(a, _, _)| a >= lo && a <= hi)
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants().unwrap();
        let got: Vec<(i64, i64, u64)> = tree
            .scan_all()
            .map(|r| r.unwrap())
            .map(|e| (e.key.col(0), e.key.col(1), e.payload))
            .collect();
        let want: Vec<(i64, i64, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_agrees_with_incremental(mut keys in prop::collection::vec((-1000i64..1000, 0u64..3), 0..400), fill in 0.3f64..1.0) {
        keys.sort();
        keys.dedup();
        let sorted: Vec<(Vec<i64>, u64)> = keys.iter().map(|&(k, p)| (vec![k], p)).collect();
        let pool_a = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        let bulk = BTree::bulk_load(pool_a, 1, sorted.clone(), fill).unwrap();
        bulk.check_invariants().unwrap();
        let pool_b = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        let incr = BTree::create(pool_b, 1).unwrap();
        for (cols, p) in &sorted {
            incr.insert(cols, *p).unwrap();
        }
        let a: Vec<_> = bulk.scan_all().map(|r| r.unwrap()).collect();
        let b: Vec<_> = incr.scan_all().map(|r| r.unwrap()).collect();
        prop_assert_eq!(a, b);
    }

    /// PR 5 satellite: the move-right protocol under a live cursor.  A
    /// cursor walks the leaf chain (= the right links) while inserts
    /// split leaves ahead of, behind, and around it — legal since B-link
    /// cursors are latch-free.  Splits only move entries *right*, so the
    /// cursor must still yield every originally-present entry exactly
    /// once, in order, and never fabricate one.
    #[test]
    fn cursor_survives_splits_driven_around_it(
        initial in prop::collection::vec((-50i64..50, 0u64..4), 10..120),
        extra in prop::collection::vec((-50i64..50, 0u64..4), 20..150),
        pause_at in 1usize..40,
    ) {
        // 128-byte pages (leaf capacity 5 at arity 1) over 4 frames:
        // the extra inserts split constantly while the cursor is live.
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(128),
            BufferPoolConfig::with_capacity(4),
        ));
        let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
        let original: BTreeSet<(i64, u64)> = initial.into_iter().collect();
        for &(k, p) in &original {
            tree.insert(&[k], p).unwrap();
        }
        let mut cursor = tree.scan_all();
        let mut yielded: Vec<(i64, u64)> = Vec::new();
        for _ in 0..pause_at.min(original.len()) {
            let e = cursor.next().unwrap().unwrap();
            yielded.push((e.key.col(0), e.payload));
        }
        // Splits fire under the paused cursor (same thread: cursors are
        // latch-free, so writing through the tree is legal).
        let mut inserted = original.clone();
        for &(k, p) in &extra {
            if inserted.insert((k, p)) {
                tree.insert(&[k], p).unwrap();
            }
        }
        yielded.extend(cursor.map(|e| e.unwrap()).map(|e| (e.key.col(0), e.payload)));
        prop_assert!(
            yielded.windows(2).all(|w| w[0] < w[1]),
            "cursor left order or yielded a duplicate: {yielded:?}"
        );
        for &(k, p) in &original {
            prop_assert!(
                yielded.contains(&(k, p)),
                "original entry ({k},{p}) lost while splits moved entries right"
            );
        }
        for e in &yielded {
            prop_assert!(inserted.contains(e), "cursor fabricated {e:?}");
        }
        tree.check_invariants().unwrap();
    }

    /// PR 3 satellite: after any *concurrent* batch, the structural
    /// invariants hold and `entry_count` equals the oracle's cardinality.
    /// Each worker owns a disjoint payload space and deletes only its own
    /// earlier inserts, so every interleaving nets the same entry set.
    #[test]
    fn concurrent_batches_preserve_invariants(per_thread in prop::collection::vec(
        prop::collection::vec((-20i64..20, -20i64..20, 0u64..3), 4..40),
        2..5,
    )) {
        let pool = Arc::new(BufferPool::new(
            MemDisk::new(128),
            BufferPoolConfig::sharded(8, 2),
        ));
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        // Worker t turns its triples into inserts with unique payloads,
        // deleting every third one again.
        let scripts: Vec<Vec<(i64, i64, u64, bool)>> = per_thread
            .iter()
            .enumerate()
            .map(|(t, keys)| {
                keys.iter()
                    .enumerate()
                    .map(|(i, &(a, b, _))| {
                        (a, b, (t as u64) * 100_000 + i as u64, i % 3 == 2)
                    })
                    .collect()
            })
            .collect();
        crossbeam::thread::scope(|s| {
            for script in &scripts {
                let tree = &tree;
                s.spawn(move |_| {
                    for &(a, b, p, delete_again) in script {
                        tree.insert(&[a, b], p).unwrap();
                        if delete_again {
                            assert!(tree.delete(&[a, b], p).unwrap());
                        }
                    }
                });
            }
        })
        .unwrap();
        let oracle: BTreeSet<(i64, i64, u64)> = scripts
            .iter()
            .flatten()
            .filter(|&&(_, _, _, deleted)| !deleted)
            .map(|&(a, b, p, _)| (a, b, p))
            .collect();
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.entry_count().unwrap(), oracle.len() as u64);
        let got: Vec<(i64, i64, u64)> = tree
            .scan_all()
            .map(|r| r.unwrap())
            .map(|e| (e.key.col(0), e.key.col(1), e.payload))
            .collect();
        prop_assert_eq!(got, oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn contains_agrees_with_scan(keys in prop::collection::vec(-100i64..100, 0..200), probe in -110i64..110) {
        let pool = Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(8)));
        let tree = BTree::create(pool, 1).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(&[k], i as u64).unwrap();
        }
        let via_scan = tree.scan_range(&[probe], &[probe]).count() > 0;
        let via_contains = keys.iter().enumerate().any(|(i, &k)| {
            k == probe && tree.contains(&[k], i as u64).unwrap()
        });
        // contains() needs the payload too, so derive expectation from keys.
        let expected = keys.contains(&probe);
        prop_assert_eq!(via_scan, expected);
        prop_assert_eq!(via_contains, expected);
    }
}
