//! Behavioural and stress tests for the B+-tree, including comparisons
//! against `std::collections::BTreeSet` as a model.

use ri_btree::{BTree, Entry};
use ri_pagestore::{BufferPool, BufferPoolConfig, FileDisk, MemDisk, PageId};
use std::collections::BTreeSet;
use std::sync::Arc;

fn pool_with(page_size: usize, frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(page_size), BufferPoolConfig::with_capacity(frames)))
}

#[test]
fn thousand_inserts_then_full_order() {
    let pool = pool_with(2048, 200);
    let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
    // Insert in a scrambled deterministic order.
    let mut keys: Vec<(i64, i64)> = (0..1000).map(|i| ((i * 37) % 100, i)).collect();
    keys.sort_by_key(|&(a, b)| (b * 7919) % 1000 + a);
    for (i, &(a, b)) in keys.iter().enumerate() {
        tree.insert(&[a, b], i as u64).unwrap();
    }
    tree.check_invariants().unwrap();
    let all: Vec<Entry> = tree.scan_all().map(|r| r.unwrap()).collect();
    assert_eq!(all.len(), 1000);
    assert!(all.windows(2).all(|w| w[0] < w[1]), "full scan must be ordered");
}

#[test]
fn duplicates_with_distinct_payloads() {
    let pool = pool_with(512, 50);
    let tree = BTree::create(pool, 1).unwrap();
    for p in 0..300u64 {
        tree.insert(&[42], p).unwrap();
    }
    tree.check_invariants().unwrap();
    let payloads: Vec<u64> = tree.scan_range(&[42], &[42]).map(|r| r.unwrap().payload).collect();
    assert_eq!(payloads, (0..300).collect::<Vec<_>>());
    // Delete a middle duplicate only.
    assert!(tree.delete(&[42], 150).unwrap());
    assert!(!tree.delete(&[42], 150).unwrap());
    assert_eq!(tree.entry_count().unwrap(), 299);
    tree.check_invariants().unwrap();
}

#[test]
fn delete_everything_empties_the_tree() {
    let pool = pool_with(512, 50);
    let tree = BTree::create(pool, 1).unwrap();
    let n = 500i64;
    for i in 0..n {
        tree.insert(&[i], i as u64).unwrap();
    }
    // Delete in an interleaved order to exercise chain unlinking.
    for i in (0..n).step_by(2).chain((0..n).skip(1).step_by(2)) {
        assert!(tree.delete(&[i], i as u64).unwrap(), "delete {i}");
        tree.check_invariants().unwrap();
    }
    assert_eq!(tree.entry_count().unwrap(), 0);
    assert_eq!(tree.scan_all().count(), 0);
    // The tree remains usable after being emptied.
    tree.insert(&[7], 7).unwrap();
    assert!(tree.contains(&[7], 7).unwrap());
    tree.check_invariants().unwrap();
}

#[test]
fn emptied_pages_are_refilled_in_place() {
    let pool = pool_with(512, 50);
    let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
    for i in 0..2000i64 {
        tree.insert(&[i], i as u64).unwrap();
    }
    let pages_full = pool.num_pages();
    for i in 0..2000i64 {
        tree.delete(&[i], i as u64).unwrap();
    }
    for i in 0..2000i64 {
        tree.insert(&[i], i as u64).unwrap();
    }
    tree.check_invariants().unwrap();
    // The B-link tree never frees pages: the drained leaves stay in the
    // tree with their high keys, so refilling the same keys routes back
    // into them and the file must not grow (a couple of extra
    // allocations are tolerated for boundary splits).
    assert!(
        pool.num_pages() <= pages_full + 2,
        "file grew from {pages_full} to {} pages despite in-place refill",
        pool.num_pages()
    );
}

#[test]
fn mirror_btreeset_under_mixed_ops() {
    let pool = pool_with(256, 20); // tiny pages: splits everywhere
    let tree = BTree::create(pool, 2).unwrap();
    let mut model: BTreeSet<(i64, i64, u64)> = BTreeSet::new();
    // Deterministic pseudo-random op stream.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for step in 0..4000 {
        let a = (next() % 50) as i64;
        let b = (next() % 50) as i64;
        let p = next() % 8;
        if next() % 3 != 0 {
            if model.insert((a, b, p)) {
                tree.insert(&[a, b], p).unwrap();
            }
        } else {
            let existed = model.remove(&(a, b, p));
            assert_eq!(tree.delete(&[a, b], p).unwrap(), existed, "step {step}");
        }
    }
    tree.check_invariants().unwrap();
    let got: Vec<(i64, i64, u64)> = tree
        .scan_all()
        .map(|r| r.unwrap())
        .map(|e| (e.key.col(0), e.key.col(1), e.payload))
        .collect();
    let want: Vec<(i64, i64, u64)> = model.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn range_scan_matches_model_on_random_data() {
    let pool = pool_with(256, 20);
    let tree = BTree::create(pool, 1).unwrap();
    let mut model = BTreeSet::new();
    let mut x = 1u64;
    for i in 0..3000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let k = (x % 1000) as i64;
        tree.insert(&[k], i).unwrap();
        model.insert((k, i));
    }
    for (lo, hi) in [(0, 999), (100, 100), (250, 260), (-5, 3), (990, 2000), (500, 499)] {
        let got: Vec<(i64, u64)> = tree
            .scan_range(&[lo], &[hi])
            .map(|r| r.unwrap())
            .map(|e| (e.key.col(0), e.payload))
            .collect();
        let want: Vec<(i64, u64)> =
            model.iter().copied().filter(|&(k, _)| k >= lo && k <= hi).collect();
        assert_eq!(got, want, "range [{lo}, {hi}]");
    }
}

#[test]
fn bulk_load_equals_incremental_build() {
    let pool = pool_with(512, 64);
    let entries: Vec<(Vec<i64>, u64)> = (0..5000i64).map(|i| (vec![i / 3, i], i as u64)).collect();
    let bulk = BTree::bulk_load(Arc::clone(&pool), 2, entries.iter().cloned(), 0.9).unwrap();
    bulk.check_invariants().unwrap();
    let incr = BTree::create(pool, 2).unwrap();
    for (cols, p) in &entries {
        incr.insert(cols, *p).unwrap();
    }
    let a: Vec<Entry> = bulk.scan_all().map(|r| r.unwrap()).collect();
    let b: Vec<Entry> = incr.scan_all().map(|r| r.unwrap()).collect();
    assert_eq!(a, b);
    assert_eq!(bulk.entry_count().unwrap(), 5000);
}

#[test]
fn bulk_load_rejects_unsorted_input() {
    let pool = pool_with(512, 64);
    let entries = vec![(vec![5i64], 0u64), (vec![3], 1)];
    assert!(BTree::bulk_load(pool, 1, entries, 0.9).is_err());
}

#[test]
fn bulk_load_is_denser_than_incremental() {
    let entries: Vec<(Vec<i64>, u64)> = (0..20000i64).map(|i| (vec![i], i as u64)).collect();
    let pool_a = pool_with(2048, 100);
    let bulk = BTree::bulk_load(Arc::clone(&pool_a), 1, entries.iter().cloned(), 1.0).unwrap();
    let pool_b = pool_with(2048, 100);
    let incr = BTree::create(Arc::clone(&pool_b), 1).unwrap();
    for (cols, p) in &entries {
        incr.insert(cols, *p).unwrap();
    }
    let (bp, ip) = (bulk.stats().unwrap().pages, incr.stats().unwrap().pages);
    assert!(bp < ip, "bulk-loaded tree ({bp} pages) should be denser than incremental ({ip})");
}

#[test]
fn open_existing_tree_from_meta_page() {
    let pool = pool_with(512, 32);
    let meta: PageId;
    {
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        meta = tree.meta_page();
        for i in 0..100i64 {
            tree.insert(&[i, -i], i as u64).unwrap();
        }
    }
    let tree = BTree::open(Arc::clone(&pool), meta).unwrap();
    assert_eq!(tree.arity(), 2);
    assert_eq!(tree.entry_count().unwrap(), 100);
    assert!(tree.contains(&[99, -99], 99).unwrap());
}

#[test]
fn open_rejects_non_meta_page() {
    let pool = pool_with(512, 32);
    let junk = pool.allocate_page().unwrap();
    pool.with_page_mut(junk, |b| b[0] = 0xFF).unwrap();
    assert!(BTree::open(pool, junk).is_err());
}

#[test]
fn persists_across_file_reopen() {
    let dir = std::env::temp_dir().join(format!("ri-btree-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.db");
    let _ = std::fs::remove_file(&path);
    let meta: PageId;
    {
        let disk = FileDisk::open(&path, 512).unwrap();
        let pool = Arc::new(BufferPool::new(disk, BufferPoolConfig::with_capacity(16)));
        let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
        meta = tree.meta_page();
        for i in 0..500i64 {
            tree.insert(&[i], i as u64).unwrap();
        }
        pool.flush_all().unwrap();
    }
    let disk = FileDisk::open(&path, 512).unwrap();
    let pool = Arc::new(BufferPool::new(disk, BufferPoolConfig::with_capacity(16)));
    let tree = BTree::open(pool, meta).unwrap();
    assert_eq!(tree.entry_count().unwrap(), 500);
    tree.check_invariants().unwrap();
    let got: Vec<u64> = tree.scan_range(&[100], &[110]).map(|r| r.unwrap().payload).collect();
    assert_eq!(got, (100..=110).collect::<Vec<_>>());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn logarithmic_io_for_point_lookup() {
    // With 200k entries and ~85-entry leaves the tree has height 3; a point
    // lookup from a cold cache must touch only root + internal + leaf (+
    // meta), i.e. far fewer pages than a scan would.
    let pool = pool_with(2048, 400);
    let entries: Vec<(Vec<i64>, u64)> = (0..200_000i64).map(|i| (vec![i], i as u64)).collect();
    let tree = BTree::bulk_load(Arc::clone(&pool), 1, entries, 1.0).unwrap();
    pool.clear_cache().unwrap();
    let before = pool.stats().snapshot();
    assert!(tree.contains(&[123_456], 123_456).unwrap());
    let delta = pool.stats().snapshot().since(&before);
    assert!(
        delta.physical_reads <= 5,
        "point lookup took {} physical reads; expected O(log_b n) ~ 4",
        delta.physical_reads
    );
}

#[test]
fn arity_mismatch_errors() {
    let pool = pool_with(512, 16);
    let tree = BTree::create(pool, 2).unwrap();
    assert!(tree.insert(&[1], 0).is_err());
    assert!(tree.delete(&[1, 2, 3], 0).is_err());
    assert!(tree.contains(&[1], 0).is_err());
}

#[test]
fn extreme_key_values() {
    let pool = pool_with(512, 16);
    let tree = BTree::create(pool, 2).unwrap();
    let keys = [
        [i64::MIN, i64::MIN],
        [i64::MIN, i64::MAX],
        [-1, 0],
        [0, 0],
        [i64::MAX, i64::MIN],
        [i64::MAX, i64::MAX],
    ];
    for (p, k) in keys.iter().enumerate() {
        tree.insert(k, p as u64).unwrap();
    }
    tree.check_invariants().unwrap();
    let all: Vec<Entry> = tree.scan_all().map(|r| r.unwrap()).collect();
    assert_eq!(all.len(), keys.len());
    assert!(all.windows(2).all(|w| w[0] < w[1]));
    for (p, k) in keys.iter().enumerate() {
        assert!(tree.contains(k, p as u64).unwrap());
    }
}
