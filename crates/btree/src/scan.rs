//! Range scan cursor over the leaf chain.

use crate::key::{Entry, Key};
use crate::tree::BTree;
use ri_pagestore::{LatchGuard, PageId, Result};

/// Iterator over all entries whose key columns lie in `[lo, hi]`
/// (inclusive, lexicographic).
///
/// The cursor materializes one leaf at a time: the search phase costs
/// `O(log_b n)` page accesses and the scan phase one access per leaf — the
/// cost model of the paper's Theorem in Section 4.4.
///
/// A live cursor holds the tree latch *shared*, so the structure it walks
/// cannot be split, merged, or freed underneath it; concurrent leaf-only
/// writers proceed (each leaf load is copy-atomic).  Consequently the
/// owning thread must drop the cursor before writing through the same
/// tree — a structure modification would wait on its own cursor.
pub struct RangeScan<'t> {
    tree: &'t BTree,
    /// Shared tree latch pinning the structure for the cursor's lifetime.
    _latch: LatchGuard<'t>,
    hi: Key,
    state: State,
}

enum State {
    /// Initialization failed; the error is yielded once, then `Done`.
    Failed(Option<ri_pagestore::Error>),
    /// Actively scanning `buf[idx..]`, then following `next`.
    Active { buf: Vec<Entry>, idx: usize, next: PageId },
    /// Scan exhausted.
    Done,
}

impl<'t> RangeScan<'t> {
    pub(crate) fn new(tree: &'t BTree, lo: &[i64], hi: &[i64]) -> RangeScan<'t> {
        assert_eq!(lo.len(), tree.arity(), "lo bound arity mismatch");
        assert_eq!(hi.len(), tree.arity(), "hi bound arity mismatch");
        let latch = tree.reader_latch();
        let hi = Key::new(hi);
        // Position at the first entry >= (lo, payload 0): payloads are
        // unsigned, so payload 0 sorts before every entry with equal columns.
        let target = Entry { key: Key::new(lo), payload: 0 };
        let state = match Self::position(tree, &target) {
            Ok(Some((buf, idx, next))) => State::Active { buf, idx, next },
            Ok(None) => State::Done,
            Err(e) => State::Failed(Some(e)),
        };
        RangeScan { tree, _latch: latch, hi, state }
    }

    /// Finds the starting leaf and offset for `target`.
    #[allow(clippy::type_complexity)]
    fn position(tree: &BTree, target: &Entry) -> Result<Option<(Vec<Entry>, usize, PageId)>> {
        let Some(page) = tree.descend_to_leaf(target)? else {
            return Ok(None);
        };
        let leaf = tree.load_leaf(page)?;
        let idx = leaf.entries.partition_point(|e| e < target);
        Ok(Some((leaf.entries, idx, leaf.next)))
    }

    /// Drains the scan, panicking on I/O errors (test convenience).
    pub fn collect_payloads(self) -> Vec<u64> {
        self.map(|r| r.expect("scan I/O error").payload).collect()
    }
}

impl Iterator for RangeScan<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &mut self.state {
                State::Failed(err) => {
                    let e = err.take();
                    self.state = State::Done;
                    return e.map(Err);
                }
                State::Done => return None,
                State::Active { buf, idx, next } => {
                    if *idx < buf.len() {
                        let entry = buf[*idx];
                        *idx += 1;
                        if entry.key > self.hi {
                            self.state = State::Done;
                            return None;
                        }
                        return Some(Ok(entry));
                    }
                    if next.is_invalid() {
                        self.state = State::Done;
                        return None;
                    }
                    match self.tree.load_leaf(*next) {
                        Ok(leaf) => {
                            self.state =
                                State::Active { buf: leaf.entries, idx: 0, next: leaf.next };
                        }
                        Err(e) => {
                            self.state = State::Done;
                            return Some(Err(e));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
    use std::sync::Arc;

    fn tree_with(n: i64) -> (Arc<BufferPool>, BTree) {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(16)));
        let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
        for i in 0..n {
            tree.insert(&[i], i as u64 + 1000).unwrap();
        }
        (pool, tree)
    }

    #[test]
    fn empty_tree_scan_is_empty() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(256)));
        let tree = BTree::create(pool, 1).unwrap();
        assert_eq!(tree.scan_all().count(), 0);
    }

    #[test]
    fn inclusive_bounds() {
        let (_pool, tree) = tree_with(100);
        let got: Vec<u64> = tree.scan_range(&[10], &[20]).collect_payloads();
        assert_eq!(got, (1010..=1020).collect::<Vec<_>>());
    }

    #[test]
    fn bounds_outside_data() {
        let (_pool, tree) = tree_with(10);
        assert_eq!(tree.scan_range(&[-100], &[-1]).count(), 0);
        assert_eq!(tree.scan_range(&[50], &[99]).count(), 0);
        assert_eq!(tree.scan_range(&[-5], &[200]).count(), 10);
    }

    #[test]
    fn point_scan() {
        let (_pool, tree) = tree_with(64);
        let got: Vec<u64> = tree.scan_range(&[7], &[7]).collect_payloads();
        assert_eq!(got, vec![1007]);
    }

    #[test]
    fn scan_crosses_many_leaves_in_order() {
        let (_pool, tree) = tree_with(2000);
        let got: Vec<u64> = tree.scan_all().collect_payloads();
        assert_eq!(got.len(), 2000);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
