//! Range scan cursor over the leaf chain.

use crate::key::{Entry, Key};
use crate::tree::BTree;
use ri_pagestore::{PageId, Result};

/// Iterator over all entries whose key columns lie in `[lo, hi]`
/// (inclusive, lexicographic).
///
/// The cursor materializes one leaf at a time: the search phase costs
/// `O(log_b n)` page accesses and the scan phase one access per leaf — the
/// cost model of the paper's Theorem in Section 4.4.
///
/// Cursors are **latch-free** (B-link protocol): each leaf is loaded as a
/// copy-atomic snapshot and the cursor follows right links, so concurrent
/// writers — including splits — proceed freely, and the owning thread may
/// even write through the same tree while the cursor is live (the
/// pre-B-link "no DML under an open cursor" rule is gone).  Guarantee:
/// every entry committed before the scan started and not concurrently
/// deleted is yielded exactly once, in order — splits only move entries
/// *right*, and the cursor moves right with them.  Entries inserted or
/// deleted concurrently may or may not appear, as with any non-snapshot
/// index scan.
pub struct RangeScan<'t> {
    tree: &'t BTree,
    hi: Key,
    state: State,
}

enum State {
    /// Initialization failed; the error is yielded once, then `Done`.
    Failed(Option<ri_pagestore::Error>),
    /// Actively scanning `buf[idx..]`, then following `next`.
    Active { buf: Vec<Entry>, idx: usize, next: PageId },
    /// Scan exhausted.
    Done,
}

impl<'t> RangeScan<'t> {
    pub(crate) fn new(tree: &'t BTree, lo: &[i64], hi: &[i64]) -> RangeScan<'t> {
        assert_eq!(lo.len(), tree.arity(), "lo bound arity mismatch");
        assert_eq!(hi.len(), tree.arity(), "hi bound arity mismatch");
        let hi = Key::new(hi);
        // Position at the first entry >= (lo, payload 0): payloads are
        // unsigned, so payload 0 sorts before every entry with equal columns.
        let target = Entry { key: Key::new(lo), payload: 0 };
        let state = match tree.position_leaf(&target) {
            Ok(Some((_, leaf))) => {
                let idx = leaf.entries.partition_point(|e| e < &target);
                State::Active { buf: leaf.entries, idx, next: leaf.next }
            }
            Ok(None) => State::Done,
            Err(e) => State::Failed(Some(e)),
        };
        RangeScan { tree, hi, state }
    }

    /// Drains the scan, panicking on I/O errors (test convenience).
    pub fn collect_payloads(self) -> Vec<u64> {
        self.map(|r| r.expect("scan I/O error").payload).collect()
    }
}

impl Iterator for RangeScan<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &mut self.state {
                State::Failed(err) => {
                    let e = err.take();
                    self.state = State::Done;
                    return e.map(Err);
                }
                State::Done => return None,
                State::Active { buf, idx, next } => {
                    if *idx < buf.len() {
                        let entry = buf[*idx];
                        *idx += 1;
                        if entry.key > self.hi {
                            self.state = State::Done;
                            return None;
                        }
                        return Some(Ok(entry));
                    }
                    if next.is_invalid() {
                        self.state = State::Done;
                        return None;
                    }
                    match self.tree.load_leaf(*next) {
                        Ok(leaf) => {
                            self.state =
                                State::Active { buf: leaf.entries, idx: 0, next: leaf.next };
                        }
                        Err(e) => {
                            self.state = State::Done;
                            return Some(Err(e));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, BufferPoolConfig, MemDisk};
    use std::sync::Arc;

    fn tree_with(n: i64) -> (Arc<BufferPool>, BTree) {
        let pool =
            Arc::new(BufferPool::new(MemDisk::new(256), BufferPoolConfig::with_capacity(16)));
        let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
        for i in 0..n {
            tree.insert(&[i], i as u64 + 1000).unwrap();
        }
        (pool, tree)
    }

    #[test]
    fn empty_tree_scan_is_empty() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(256)));
        let tree = BTree::create(pool, 1).unwrap();
        assert_eq!(tree.scan_all().count(), 0);
    }

    #[test]
    fn inclusive_bounds() {
        let (_pool, tree) = tree_with(100);
        let got: Vec<u64> = tree.scan_range(&[10], &[20]).collect_payloads();
        assert_eq!(got, (1010..=1020).collect::<Vec<_>>());
    }

    #[test]
    fn bounds_outside_data() {
        let (_pool, tree) = tree_with(10);
        assert_eq!(tree.scan_range(&[-100], &[-1]).count(), 0);
        assert_eq!(tree.scan_range(&[50], &[99]).count(), 0);
        assert_eq!(tree.scan_range(&[-5], &[200]).count(), 10);
    }

    #[test]
    fn point_scan() {
        let (_pool, tree) = tree_with(64);
        let got: Vec<u64> = tree.scan_range(&[7], &[7]).collect_payloads();
        assert_eq!(got, vec![1007]);
    }

    #[test]
    fn scan_crosses_many_leaves_in_order() {
        let (_pool, tree) = tree_with(2000);
        let got: Vec<u64> = tree.scan_all().collect_payloads();
        assert_eq!(got.len(), 2000);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scan_skips_emptied_leaves() {
        // Delete a whole leaf's worth in the middle: the empty leaf stays
        // linked (deletes do not restructure) and the scan skips it.
        let (_pool, tree) = tree_with(64);
        for i in 20..30 {
            assert!(tree.delete(&[i], i as u64 + 1000).unwrap());
        }
        let got: Vec<u64> = tree.scan_all().collect_payloads();
        let want: Vec<u64> =
            (0..64).filter(|i| !(20..30).contains(i)).map(|i| i as u64 + 1000).collect();
        assert_eq!(got, want);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn writes_under_a_live_cursor_are_legal() {
        // The B-link cursor holds no latch: inserting (and splitting)
        // while a cursor is mid-scan must neither deadlock nor lose any
        // entry that existed when the scan began.
        let (_pool, tree) = tree_with(50);
        let mut scan = tree.scan_all();
        let mut seen: Vec<u64> = (0..10).map(|_| scan.next().unwrap().unwrap().payload).collect();
        for i in 100..160 {
            tree.insert(&[i], i as u64 + 1000).unwrap(); // splits ahead of the cursor
        }
        seen.extend(scan.map(|e| e.unwrap().payload));
        let original: Vec<u64> = (0..50).map(|i| i + 1000).collect();
        for p in original {
            assert!(seen.contains(&p), "entry {p} lost under concurrent splits");
        }
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "cursor stays ordered");
    }
}
