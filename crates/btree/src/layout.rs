//! On-page layout of B-link tree nodes (format version 2).
//!
//! Every node occupies exactly one page.  The layout is fixed-width: a 24
//! byte header, densely packed entries, and — on every node that is not
//! the rightmost of its level — a *high key* in the last separator-sized
//! slot of the page.
//!
//! ```text
//! offset  size  field
//! 0       1     node type (1 = leaf, 2 = internal, 3 = free-list page)
//! 1       1     key arity
//! 2       2     entry count (u16)
//! 4       1     page format version (2; version 1 had no right links)
//! 5       1     flags (bit 0: node stores a high key)
//! 6       2     reserved
//! 8       8     leaf: right link (= next leaf in key order) | internal:
//!               leftmost child (child0) | free page: next free page id
//! 16      8     internal: right link (right sibling on the same level) |
//!               leaf: reserved, zero (format 1 kept a previous-leaf
//!               pointer here; the B-link protocol has no backward chain)
//! 24      ...   entries
//! tail    k+8   high key (one separator-sized slot), present iff flag 0
//! ```
//!
//! * Leaf entry: `arity` × `i64` key columns, then the `u64` payload.
//! * Internal entry: a full separator entry (key columns + payload) followed
//!   by the `u64` page id of the child holding entries `>=` the separator.
//!   Entries `<` the first separator live under `child0`.
//!
//! # Right links and high keys (Lehman–Yao)
//!
//! The *high key* is an exclusive upper bound: every entry `e` stored in
//! (or below) the node satisfies `e < high`.  A node without a high key is
//! the rightmost of its level and bounds `+∞`.  The *right link* points to
//! the sibling holding `[high, …)`; the two are set together when a node
//! splits, so `high.is_some() == right link is valid` is an invariant.
//! Any traversal that finds its target at or past a node's high key simply
//! *moves right* — which is what lets splits publish the new sibling
//! before the parent's separator exists, and lets readers descend with no
//! latches at all (see `tree`'s module docs).
//!
//! Format version 1 pages (no version byte, a `prev` pointer instead of a
//! high key) are **not readable**; [`read_node`] rejects them.  The write
//! path's golden counters were re-captured for format 2 via
//! `scripts/recapture-goldens.sh`.

use crate::key::{Entry, Key};
use ri_pagestore::codec::{get_i64, get_u16, get_u64, put_i64, put_u16, put_u64};
use ri_pagestore::{Error, PageId, Result};

/// Node type tag for leaves.
pub const NODE_LEAF: u8 = 1;
/// Node type tag for internal nodes.
pub const NODE_INTERNAL: u8 = 2;
/// Node type tag for pages on the free list.
pub const NODE_FREE: u8 = 3;

/// On-page format version written into (and required of) every node.
pub const FORMAT_VERSION: u8 = 2;

const OFF_TYPE: usize = 0;
const OFF_ARITY: usize = 1;
const OFF_COUNT: usize = 2;
const OFF_VERSION: usize = 4;
const OFF_FLAGS: usize = 5;
const OFF_LINK: usize = 8;
/// Internal nodes keep `child0` in the primary link slot, so their right
/// link lives in the second one (a leaf's is reserved, written zero).
const OFF_INTERNAL_NEXT: usize = 16;
/// First byte of the entry area.
pub const HEADER_SIZE: usize = 24;

/// Flag bit: the node stores a high key in the page's tail slot.
const FLAG_HIGH_KEY: u8 = 1;

/// Size in bytes of a leaf entry for the given arity.
#[inline]
pub fn leaf_entry_size(arity: usize) -> usize {
    arity * 8 + 8
}

/// Size in bytes of an internal entry (separator + child pointer).
#[inline]
pub fn internal_entry_size(arity: usize) -> usize {
    leaf_entry_size(arity) + 8
}

/// Maximum number of entries a leaf page can hold (one separator-sized
/// slot at the page tail is reserved for the high key).
#[inline]
pub fn leaf_capacity(page_size: usize, arity: usize) -> usize {
    (page_size - HEADER_SIZE - leaf_entry_size(arity)) / leaf_entry_size(arity)
}

/// Maximum number of separator entries an internal page can hold
/// (an internal page with `k` entries has `k + 1` children; the high-key
/// slot is reserved exactly as on leaves).
#[inline]
pub fn internal_capacity(page_size: usize, arity: usize) -> usize {
    (page_size - HEADER_SIZE - leaf_entry_size(arity)) / internal_entry_size(arity)
}

/// Parsed form of a leaf page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafNode {
    /// Sorted entries, all `< high` (when a high key is present).
    pub entries: Vec<Entry>,
    /// Right sibling (= next leaf in key order), or [`PageId::INVALID`].
    pub next: PageId,
    /// Exclusive upper bound of this node's key range; `None` = +∞
    /// (rightmost leaf).
    pub high: Option<Entry>,
}

impl LeafNode {
    /// An empty, unlinked, unbounded leaf.
    pub fn empty() -> LeafNode {
        LeafNode { entries: Vec::new(), next: PageId::INVALID, high: None }
    }

    /// `true` when `target` lies inside this node's key range, i.e. below
    /// the high key.  `false` means the traversal must *move right*.
    #[inline]
    pub fn covers(&self, target: &Entry) -> bool {
        self.high.is_none_or(|h| *target < h)
    }
}

/// Parsed form of an internal page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternalNode {
    /// Child holding entries strictly below the first separator.
    pub child0: PageId,
    /// `(separator, child)` pairs: `child` holds entries `>= separator`
    /// (and below the following separator, if any).
    pub entries: Vec<(Entry, PageId)>,
    /// Right sibling on the same level, or [`PageId::INVALID`].
    pub next: PageId,
    /// Exclusive upper bound of this subtree's key range; `None` = +∞
    /// (rightmost node of its level).
    pub high: Option<Entry>,
}

impl InternalNode {
    /// Returns the index of the child that must contain `target`:
    /// `0` for `child0`, `i + 1` for `entries[i].1`.
    pub fn route(&self, target: &Entry) -> usize {
        // partition_point returns the number of separators <= target.
        self.entries.partition_point(|(sep, _)| sep <= target)
    }

    /// The child page at routing slot `slot` (as returned by [`route`](Self::route)).
    pub fn child_at(&self, slot: usize) -> PageId {
        if slot == 0 {
            self.child0
        } else {
            self.entries[slot - 1].1
        }
    }

    /// `true` when `target` lies inside this subtree's key range (below
    /// the high key).  `false` means the traversal must *move right*.
    #[inline]
    pub fn covers(&self, target: &Entry) -> bool {
        self.high.is_none_or(|h| *target < h)
    }
}

/// Parsed form of any node page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// A leaf page.
    Leaf(LeafNode),
    /// An internal page.
    Internal(InternalNode),
}

fn read_entry(buf: &[u8], off: usize, arity: usize) -> Entry {
    let mut cols = [0i64; crate::key::MAX_ARITY];
    for (c, slot) in cols.iter_mut().enumerate().take(arity) {
        *slot = get_i64(buf, off + c * 8);
    }
    Entry { key: Key::new(&cols[..arity]), payload: get_u64(buf, off + arity * 8) }
}

fn write_entry(buf: &mut [u8], off: usize, e: &Entry) {
    let arity = e.key.arity();
    for (c, v) in e.key.as_slice().iter().enumerate() {
        put_i64(buf, off + c * 8, *v);
    }
    put_u64(buf, off + arity * 8, e.payload);
}

fn read_high(buf: &[u8], arity: usize) -> Option<Entry> {
    if buf[OFF_FLAGS] & FLAG_HIGH_KEY == 0 {
        None
    } else {
        Some(read_entry(buf, buf.len() - leaf_entry_size(arity), arity))
    }
}

fn write_header(buf: &mut [u8], tag: u8, arity: usize, count: usize, high: &Option<Entry>) {
    buf[OFF_TYPE] = tag;
    buf[OFF_ARITY] = arity as u8;
    put_u16(buf, OFF_COUNT, count as u16);
    buf[OFF_VERSION] = FORMAT_VERSION;
    buf[OFF_FLAGS] = if high.is_some() { FLAG_HIGH_KEY } else { 0 };
    if let Some(h) = high {
        debug_assert_eq!(h.key.arity(), arity);
        let off = buf.len() - leaf_entry_size(arity);
        write_entry(buf, off, h);
    }
}

/// Decodes a node page.  `arity` must match the tree's arity.
pub fn read_node(buf: &[u8], arity: usize) -> Result<Node> {
    let tag = buf[OFF_TYPE];
    if buf[OFF_VERSION] != FORMAT_VERSION {
        return Err(Error::Corrupt(format!(
            "node format version {} (expected {FORMAT_VERSION}; pre-B-link pages are not readable)",
            buf[OFF_VERSION]
        )));
    }
    let stored_arity = buf[OFF_ARITY] as usize;
    if stored_arity != arity {
        return Err(Error::Corrupt(format!(
            "node arity {stored_arity} does not match tree arity {arity}"
        )));
    }
    let count = get_u16(buf, OFF_COUNT) as usize;
    match tag {
        NODE_LEAF => {
            let esz = leaf_entry_size(arity);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                entries.push(read_entry(buf, HEADER_SIZE + i * esz, arity));
            }
            Ok(Node::Leaf(LeafNode {
                entries,
                next: PageId(get_u64(buf, OFF_LINK)),
                high: read_high(buf, arity),
            }))
        }
        NODE_INTERNAL => {
            let esz = internal_entry_size(arity);
            let sep_sz = leaf_entry_size(arity);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = HEADER_SIZE + i * esz;
                let sep = read_entry(buf, off, arity);
                let child = PageId(get_u64(buf, off + sep_sz));
                entries.push((sep, child));
            }
            Ok(Node::Internal(InternalNode {
                child0: PageId(get_u64(buf, OFF_LINK)),
                entries,
                next: PageId(get_u64(buf, OFF_INTERNAL_NEXT)),
                high: read_high(buf, arity),
            }))
        }
        other => Err(Error::Corrupt(format!("unexpected node tag {other}"))),
    }
}

/// Encodes a leaf page.
pub fn write_leaf(buf: &mut [u8], node: &LeafNode, arity: usize) {
    let cap = leaf_capacity(buf.len(), arity);
    assert!(node.entries.len() <= cap, "leaf overflow: {} > {cap}", node.entries.len());
    write_header(buf, NODE_LEAF, arity, node.entries.len(), &node.high);
    put_u64(buf, OFF_LINK, node.next.raw());
    put_u64(buf, OFF_INTERNAL_NEXT, PageId::INVALID.raw());
    let esz = leaf_entry_size(arity);
    for (i, e) in node.entries.iter().enumerate() {
        debug_assert_eq!(e.key.arity(), arity);
        write_entry(buf, HEADER_SIZE + i * esz, e);
    }
}

/// Encodes an internal page.
pub fn write_internal(buf: &mut [u8], node: &InternalNode, arity: usize) {
    let cap = internal_capacity(buf.len(), arity);
    assert!(node.entries.len() <= cap, "internal overflow: {} > {cap}", node.entries.len());
    write_header(buf, NODE_INTERNAL, arity, node.entries.len(), &node.high);
    put_u64(buf, OFF_LINK, node.child0.raw());
    put_u64(buf, OFF_INTERNAL_NEXT, node.next.raw());
    let esz = internal_entry_size(arity);
    let sep_sz = leaf_entry_size(arity);
    for (i, (sep, child)) in node.entries.iter().enumerate() {
        let off = HEADER_SIZE + i * esz;
        write_entry(buf, off, sep);
        put_u64(buf, off + sep_sz, child.raw());
    }
}

/// Marks a page as free and links it into the free list.
///
/// The B-link tree currently never frees pages (deletion leaves empty
/// nodes in place — reclaiming one would require right-to-left latching
/// or a reader-visible unlink; see `tree`'s module docs), but the format
/// and this encoder are retained for an explicit vacuum operation.
pub fn write_free(buf: &mut [u8], next_free: PageId, arity: usize) {
    buf[OFF_TYPE] = NODE_FREE;
    buf[OFF_ARITY] = arity as u8;
    put_u16(buf, OFF_COUNT, 0);
    buf[OFF_VERSION] = FORMAT_VERSION;
    buf[OFF_FLAGS] = 0;
    put_u64(buf, OFF_LINK, next_free.raw());
}

/// Reads the next-free link of a free page.
pub fn read_free_link(buf: &[u8]) -> Result<PageId> {
    if buf[OFF_TYPE] != NODE_FREE {
        return Err(Error::Corrupt(format!("page tag {} is not a free page", buf[OFF_TYPE])));
    }
    Ok(PageId(get_u64(buf, OFF_LINK)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let mut buf = vec![0u8; 512];
        let node = LeafNode {
            entries: vec![Entry::new(&[1, -2], 10), Entry::new(&[3, 4], 11)],
            next: PageId(7),
            high: Some(Entry::new(&[5, 0], 12)),
        };
        write_leaf(&mut buf, &node, 2);
        match read_node(&buf, 2).unwrap() {
            Node::Leaf(l) => assert_eq!(l, node),
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn rightmost_leaf_has_no_high_key() {
        let mut buf = vec![0u8; 512];
        let node =
            LeafNode { entries: vec![Entry::new(&[9], 1)], next: PageId::INVALID, high: None };
        write_leaf(&mut buf, &node, 1);
        match read_node(&buf, 1).unwrap() {
            Node::Leaf(l) => {
                assert_eq!(l, node);
                assert!(l.covers(&Entry::new(&[i64::MAX], u64::MAX)), "no high key bounds +inf");
            }
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn internal_roundtrip_routing_and_coverage() {
        let mut buf = vec![0u8; 512];
        let node = InternalNode {
            child0: PageId(1),
            entries: vec![(Entry::new(&[10], 0), PageId(2)), (Entry::new(&[20], 0), PageId(3))],
            next: PageId(8),
            high: Some(Entry::new(&[30], 0)),
        };
        write_internal(&mut buf, &node, 1);
        let parsed = match read_node(&buf, 1).unwrap() {
            Node::Internal(n) => n,
            _ => panic!("expected internal"),
        };
        assert_eq!(parsed, node);
        assert_eq!(parsed.route(&Entry::new(&[5], 0)), 0);
        assert_eq!(parsed.route(&Entry::new(&[10], 0)), 1); // >= separator goes right
        assert_eq!(parsed.route(&Entry::new(&[15], 99)), 1);
        assert_eq!(parsed.route(&Entry::new(&[20], 0)), 2);
        assert_eq!(parsed.route(&Entry::new(&[29], 0)), 2);
        assert_eq!(parsed.child_at(0), PageId(1));
        assert_eq!(parsed.child_at(2), PageId(3));
        assert!(parsed.covers(&Entry::new(&[29], u64::MAX)));
        assert!(!parsed.covers(&Entry::new(&[30], 0)), "at the high key means move right");
    }

    #[test]
    fn high_key_comparison_is_exclusive_and_payload_aware() {
        let leaf =
            LeafNode { entries: Vec::new(), next: PageId(4), high: Some(Entry::new(&[7, 7], 3)) };
        assert!(leaf.covers(&Entry::new(&[7, 7], 2)), "payload below the high key's stays");
        assert!(!leaf.covers(&Entry::new(&[7, 7], 3)), "exactly the high key moves right");
        assert!(!leaf.covers(&Entry::new(&[8, 0], 0)));
    }

    #[test]
    fn arity_mismatch_is_corrupt() {
        let mut buf = vec![0u8; 256];
        write_leaf(&mut buf, &LeafNode::empty(), 2);
        assert!(matches!(read_node(&buf, 3), Err(Error::Corrupt(_))));
    }

    #[test]
    fn unknown_format_version_is_corrupt() {
        let mut buf = vec![0u8; 256];
        write_leaf(&mut buf, &LeafNode::empty(), 2);
        buf[4] = 1; // format 1: pre-B-link
        let err = read_node(&buf, 2).unwrap_err();
        assert!(err.to_string().contains("format version 1"), "{err}");
    }

    #[test]
    fn free_page_roundtrip() {
        let mut buf = vec![0u8; 256];
        write_free(&mut buf, PageId(42), 1);
        assert_eq!(read_free_link(&buf).unwrap(), PageId(42));
        assert!(read_node(&buf, 1).is_err());
    }

    #[test]
    fn capacities_match_paper_block_size() {
        // 2 KB blocks, arity-2 keys (node, bound) + payload = 24-byte
        // entries; one entry-sized slot per page is the high key's.
        assert_eq!(leaf_capacity(2048, 2), (2048 - 24) / 24 - 1);
        assert!(internal_capacity(2048, 2) >= 60, "healthy fan-out expected");
    }
}
