//! On-page layout of B+-tree nodes.
//!
//! Every node occupies exactly one page.  The layout is fixed-width: a 24
//! byte header followed by densely packed entries.
//!
//! ```text
//! offset  size  field
//! 0       1     node type (1 = leaf, 2 = internal, 3 = free-list page)
//! 1       1     key arity
//! 2       2     entry count (u16)
//! 4       4     reserved
//! 8       8     leaf: next-leaf page id | internal: leftmost child (child0)
//!               | free page: next free page id
//! 16      8     leaf: previous-leaf page id | otherwise unused
//! 24      ...   entries
//! ```
//!
//! * Leaf entry: `arity` × `i64` key columns, then the `u64` payload.
//! * Internal entry: a full separator entry (key columns + payload) followed
//!   by the `u64` page id of the child holding entries `>=` the separator.
//!   Entries `<` the first separator live under `child0`.

use crate::key::{Entry, Key};
use ri_pagestore::codec::{get_i64, get_u16, get_u64, put_i64, put_u16, put_u64};
use ri_pagestore::{Error, PageId, Result};

/// Node type tag for leaves.
pub const NODE_LEAF: u8 = 1;
/// Node type tag for internal nodes.
pub const NODE_INTERNAL: u8 = 2;
/// Node type tag for pages on the free list.
pub const NODE_FREE: u8 = 3;

const OFF_TYPE: usize = 0;
const OFF_ARITY: usize = 1;
const OFF_COUNT: usize = 2;
const OFF_LINK: usize = 8;
const OFF_PREV: usize = 16;
/// First byte of the entry area.
pub const HEADER_SIZE: usize = 24;

/// Size in bytes of a leaf entry for the given arity.
#[inline]
pub fn leaf_entry_size(arity: usize) -> usize {
    arity * 8 + 8
}

/// Size in bytes of an internal entry (separator + child pointer).
#[inline]
pub fn internal_entry_size(arity: usize) -> usize {
    leaf_entry_size(arity) + 8
}

/// Maximum number of entries a leaf page can hold.
#[inline]
pub fn leaf_capacity(page_size: usize, arity: usize) -> usize {
    (page_size - HEADER_SIZE) / leaf_entry_size(arity)
}

/// Maximum number of separator entries an internal page can hold
/// (an internal page with `k` entries has `k + 1` children).
#[inline]
pub fn internal_capacity(page_size: usize, arity: usize) -> usize {
    (page_size - HEADER_SIZE) / internal_entry_size(arity)
}

/// Parsed form of a leaf page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafNode {
    /// Sorted entries.
    pub entries: Vec<Entry>,
    /// Next leaf in key order, or [`PageId::INVALID`].
    pub next: PageId,
    /// Previous leaf in key order, or [`PageId::INVALID`].
    pub prev: PageId,
}

impl LeafNode {
    /// An empty, unlinked leaf.
    pub fn empty() -> LeafNode {
        LeafNode { entries: Vec::new(), next: PageId::INVALID, prev: PageId::INVALID }
    }
}

/// Parsed form of an internal page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternalNode {
    /// Child holding entries strictly below the first separator.
    pub child0: PageId,
    /// `(separator, child)` pairs: `child` holds entries `>= separator`
    /// (and below the following separator, if any).
    pub entries: Vec<(Entry, PageId)>,
}

impl InternalNode {
    /// Returns the index of the child that must contain `target`:
    /// `0` for `child0`, `i + 1` for `entries[i].1`.
    pub fn route(&self, target: &Entry) -> usize {
        // partition_point returns the number of separators <= target.
        self.entries.partition_point(|(sep, _)| sep <= target)
    }

    /// The child page at routing slot `slot` (as returned by [`route`](Self::route)).
    pub fn child_at(&self, slot: usize) -> PageId {
        if slot == 0 {
            self.child0
        } else {
            self.entries[slot - 1].1
        }
    }
}

/// Parsed form of any node page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// A leaf page.
    Leaf(LeafNode),
    /// An internal page.
    Internal(InternalNode),
}

fn read_entry(buf: &[u8], off: usize, arity: usize) -> Entry {
    let mut cols = [0i64; crate::key::MAX_ARITY];
    for (c, slot) in cols.iter_mut().enumerate().take(arity) {
        *slot = get_i64(buf, off + c * 8);
    }
    Entry { key: Key::new(&cols[..arity]), payload: get_u64(buf, off + arity * 8) }
}

fn write_entry(buf: &mut [u8], off: usize, e: &Entry) {
    let arity = e.key.arity();
    for (c, v) in e.key.as_slice().iter().enumerate() {
        put_i64(buf, off + c * 8, *v);
    }
    put_u64(buf, off + arity * 8, e.payload);
}

/// Decodes a node page.  `arity` must match the tree's arity.
pub fn read_node(buf: &[u8], arity: usize) -> Result<Node> {
    let tag = buf[OFF_TYPE];
    let stored_arity = buf[OFF_ARITY] as usize;
    if stored_arity != arity {
        return Err(Error::Corrupt(format!(
            "node arity {stored_arity} does not match tree arity {arity}"
        )));
    }
    let count = get_u16(buf, OFF_COUNT) as usize;
    match tag {
        NODE_LEAF => {
            let esz = leaf_entry_size(arity);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                entries.push(read_entry(buf, HEADER_SIZE + i * esz, arity));
            }
            Ok(Node::Leaf(LeafNode {
                entries,
                next: PageId(get_u64(buf, OFF_LINK)),
                prev: PageId(get_u64(buf, OFF_PREV)),
            }))
        }
        NODE_INTERNAL => {
            let esz = internal_entry_size(arity);
            let sep_sz = leaf_entry_size(arity);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = HEADER_SIZE + i * esz;
                let sep = read_entry(buf, off, arity);
                let child = PageId(get_u64(buf, off + sep_sz));
                entries.push((sep, child));
            }
            Ok(Node::Internal(InternalNode { child0: PageId(get_u64(buf, OFF_LINK)), entries }))
        }
        other => Err(Error::Corrupt(format!("unexpected node tag {other}"))),
    }
}

/// Encodes a leaf page.
pub fn write_leaf(buf: &mut [u8], node: &LeafNode, arity: usize) {
    let cap = leaf_capacity(buf.len(), arity);
    assert!(node.entries.len() <= cap, "leaf overflow: {} > {cap}", node.entries.len());
    buf[OFF_TYPE] = NODE_LEAF;
    buf[OFF_ARITY] = arity as u8;
    put_u16(buf, OFF_COUNT, node.entries.len() as u16);
    put_u64(buf, OFF_LINK, node.next.raw());
    put_u64(buf, OFF_PREV, node.prev.raw());
    let esz = leaf_entry_size(arity);
    for (i, e) in node.entries.iter().enumerate() {
        debug_assert_eq!(e.key.arity(), arity);
        write_entry(buf, HEADER_SIZE + i * esz, e);
    }
}

/// Encodes an internal page.
pub fn write_internal(buf: &mut [u8], node: &InternalNode, arity: usize) {
    let cap = internal_capacity(buf.len(), arity);
    assert!(node.entries.len() <= cap, "internal overflow: {} > {cap}", node.entries.len());
    buf[OFF_TYPE] = NODE_INTERNAL;
    buf[OFF_ARITY] = arity as u8;
    put_u16(buf, OFF_COUNT, node.entries.len() as u16);
    put_u64(buf, OFF_LINK, node.child0.raw());
    put_u64(buf, OFF_PREV, PageId::INVALID.raw());
    let esz = internal_entry_size(arity);
    let sep_sz = leaf_entry_size(arity);
    for (i, (sep, child)) in node.entries.iter().enumerate() {
        let off = HEADER_SIZE + i * esz;
        write_entry(buf, off, sep);
        put_u64(buf, off + sep_sz, child.raw());
    }
}

/// Marks a page as free and links it into the free list.
pub fn write_free(buf: &mut [u8], next_free: PageId, arity: usize) {
    buf[OFF_TYPE] = NODE_FREE;
    buf[OFF_ARITY] = arity as u8;
    put_u16(buf, OFF_COUNT, 0);
    put_u64(buf, OFF_LINK, next_free.raw());
}

/// Reads the next-free link of a free page.
pub fn read_free_link(buf: &[u8]) -> Result<PageId> {
    if buf[OFF_TYPE] != NODE_FREE {
        return Err(Error::Corrupt(format!("page tag {} is not a free page", buf[OFF_TYPE])));
    }
    Ok(PageId(get_u64(buf, OFF_LINK)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let mut buf = vec![0u8; 512];
        let node = LeafNode {
            entries: vec![Entry::new(&[1, -2], 10), Entry::new(&[3, 4], 11)],
            next: PageId(7),
            prev: PageId(9),
        };
        write_leaf(&mut buf, &node, 2);
        match read_node(&buf, 2).unwrap() {
            Node::Leaf(l) => assert_eq!(l, node),
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn internal_roundtrip_and_routing() {
        let mut buf = vec![0u8; 512];
        let node = InternalNode {
            child0: PageId(1),
            entries: vec![(Entry::new(&[10], 0), PageId(2)), (Entry::new(&[20], 0), PageId(3))],
        };
        write_internal(&mut buf, &node, 1);
        let parsed = match read_node(&buf, 1).unwrap() {
            Node::Internal(n) => n,
            _ => panic!("expected internal"),
        };
        assert_eq!(parsed, node);
        assert_eq!(parsed.route(&Entry::new(&[5], 0)), 0);
        assert_eq!(parsed.route(&Entry::new(&[10], 0)), 1); // >= separator goes right
        assert_eq!(parsed.route(&Entry::new(&[15], 99)), 1);
        assert_eq!(parsed.route(&Entry::new(&[20], 0)), 2);
        assert_eq!(parsed.route(&Entry::new(&[99], 0)), 2);
        assert_eq!(parsed.child_at(0), PageId(1));
        assert_eq!(parsed.child_at(2), PageId(3));
    }

    #[test]
    fn arity_mismatch_is_corrupt() {
        let mut buf = vec![0u8; 256];
        write_leaf(&mut buf, &LeafNode::empty(), 2);
        assert!(matches!(read_node(&buf, 3), Err(Error::Corrupt(_))));
    }

    #[test]
    fn free_page_roundtrip() {
        let mut buf = vec![0u8; 256];
        write_free(&mut buf, PageId(42), 1);
        assert_eq!(read_free_link(&buf).unwrap(), PageId(42));
        assert!(read_node(&buf, 1).is_err());
    }

    #[test]
    fn capacities_match_paper_block_size() {
        // 2 KB blocks, arity-2 keys (node, bound) + payload = 24-byte entries.
        assert_eq!(leaf_capacity(2048, 2), (2048 - 24) / 24);
        assert!(internal_capacity(2048, 2) >= 60, "healthy fan-out expected");
    }
}
