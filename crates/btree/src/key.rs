//! Composite keys and index entries.

/// Maximum number of key columns a composite index supports.
///
/// The reproduction needs at most three — e.g. `(node, lower, id)` when the
/// row id is included in the index as in the paper's Figure 10 setup — but
/// four keeps a little headroom without bloating entries.
pub const MAX_ARITY: usize = 4;

/// A composite key: up to [`MAX_ARITY`] `i64` columns compared
/// lexicographically.
///
/// Stored inline (no heap allocation) so that scans can shuttle thousands of
/// keys around without touching the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Key {
    vals: [i64; MAX_ARITY],
    arity: u8,
}

impl Key {
    /// Builds a key from `cols`.
    ///
    /// # Panics
    /// Panics if `cols` is empty or longer than [`MAX_ARITY`].
    pub fn new(cols: &[i64]) -> Key {
        assert!(
            !cols.is_empty() && cols.len() <= MAX_ARITY,
            "key arity must be 1..={MAX_ARITY}, got {}",
            cols.len()
        );
        let mut vals = [0i64; MAX_ARITY];
        vals[..cols.len()].copy_from_slice(cols);
        Key { vals, arity: cols.len() as u8 }
    }

    /// Number of columns in this key.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// The columns as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.vals[..self.arity as usize]
    }

    /// The value of column `i`.
    #[inline]
    pub fn col(&self, i: usize) -> i64 {
        self.as_slice()[i]
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert_eq!(self.arity, other.arity, "comparing keys of different arity");
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// One index entry: a composite key plus the `u64` payload (row id).
///
/// The payload participates in ordering *after* the key columns, which makes
/// every entry unique and lets deletes address an exact `(key, payload)`
/// pair — the standard way relational secondary indexes disambiguate
/// duplicate keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Entry {
    /// The composite key columns.
    pub key: Key,
    /// The associated payload, usually a heap row id.
    pub payload: u64,
}

impl Entry {
    /// Convenience constructor.
    pub fn new(cols: &[i64], payload: u64) -> Entry {
        Entry { key: Key::new(cols), payload }
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.payload.cmp(&other.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_ordering() {
        let a = Key::new(&[1, 5]);
        let b = Key::new(&[1, 6]);
        let c = Key::new(&[2, 0]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert_eq!(a, Key::new(&[1, 5]));
    }

    #[test]
    fn payload_breaks_ties() {
        let e1 = Entry::new(&[7, 7], 1);
        let e2 = Entry::new(&[7, 7], 2);
        assert!(e1 < e2);
    }

    #[test]
    fn negative_columns_order_correctly() {
        let a = Key::new(&[-10]);
        let b = Key::new(&[-2]);
        let c = Key::new(&[3]);
        assert!(a < b && b < c);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn oversized_key_panics() {
        let _ = Key::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(Key::new(&[3, -4]).to_string(), "(3, -4)");
    }
}
