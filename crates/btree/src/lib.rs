//! Disk-based B+-tree with composite integer keys.
//!
//! This crate is the reproduction's stand-in for the *built-in* B+-tree
//! index of a commercial RDBMS — the only primitive the Relational Interval
//! Tree requires from its host system.  The paper's core design rule is that
//! indexes are used **"on an as-they-are basis without any augmentation of
//! the internal data structure"** (Section 1); accordingly, nothing in this
//! crate knows anything about intervals.  The RI-tree, the Tile Index, the
//! IST and MAP21 baselines all build on these same unmodified trees, exactly
//! as they would on Oracle's B+-trees.
//!
//! Features:
//! * composite keys of 1–4 `i64` columns (relational *composite indexes*
//!   such as `(node, lower)` from the paper's Figure 2),
//! * duplicate keys disambiguated by a `u64` payload (the row id),
//! * ordered range scans over leaf chains ([`BTree::scan_range`]),
//! * logarithmic insert and delete; empty pages are reclaimed through a
//!   free list (lazy structural shrinking, as in most production systems),
//! * sorted [`bulk loading`](BTree::bulk_load) with a configurable fill
//!   factor (the paper bulk-loads the competitors' indexes in Section 6),
//! * an exhaustive [`BTree::check_invariants`] used by the property tests.
//!
//! All I/O goes through [`ri_pagestore::BufferPool`], so every page this
//! tree touches is visible in the experiment I/O counters.
//!
//! # Concurrency contract
//!
//! A [`BTree`] handle is `Send + Sync` (asserted at compile time below):
//! any number of threads may read **and write** one tree concurrently —
//! the paper delegates locking to the host RDBMS, and since PR 3 this
//! crate plays that host: writers synchronize through the buffer pool's
//! latch manager with *optimistic latch crabbing* (shared latches down
//! the inner nodes, exclusive on the leaf, an epoch-validated upgrade to
//! the exclusive tree latch for splits and merges — see `tree`'s module
//! docs and ARCHITECTURE.md).  Readers hold the tree latch shared, so
//! leaf-only writers overlap them freely while structure modifications
//! wait.  Two caller-side rules remain: a thread must not write through
//! a tree while holding one of that tree's scan cursors, and
//! single-threaded workloads pay no new I/O — the page-access sequence
//! is bit-for-bit the pre-latching one (`tests/pool_determinism.rs`).

pub mod key;
pub mod layout;
pub mod scan;
pub mod tree;

pub use key::{Entry, Key, MAX_ARITY};
pub use scan::RangeScan;
pub use tree::{BTree, TreeStats};

pub use ri_pagestore::{Error, Result};

/// Compile-time proof of the concurrency contract: a `BTree` (and its
/// borrowing scan cursor) can be shared across reader threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BTree>();
    assert_send_sync::<RangeScan<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, MemDisk};
    use std::sync::Arc;

    #[test]
    fn crate_level_smoke() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(512)));
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        for i in 0..500i64 {
            tree.insert(&[i % 10, i], i as u64).unwrap();
        }
        let hits: Vec<_> =
            tree.scan_range(&[3, i64::MIN], &[3, i64::MAX]).map(|e| e.unwrap().payload).collect();
        assert_eq!(hits.len(), 50);
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_descents_over_sharded_pool() {
        use ri_pagestore::BufferPoolConfig;
        let pool = Arc::new(BufferPool::new(MemDisk::new(512), BufferPoolConfig::sharded(64, 8)));
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        for i in 0..2000i64 {
            tree.insert(&[i % 16, i], i as u64).unwrap();
        }
        let expected: Vec<Vec<u64>> = (0..16)
            .map(|k| {
                tree.scan_range(&[k, i64::MIN], &[k, i64::MAX])
                    .map(|e| e.unwrap().payload)
                    .collect()
            })
            .collect();
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let tree = &tree;
                let expected = &expected;
                s.spawn(move |_| {
                    for round in 0..20 {
                        let k = (t + round) % 16;
                        let got: Vec<u64> = tree
                            .scan_range(&[k, i64::MIN], &[k, i64::MAX])
                            .map(|e| e.unwrap().payload)
                            .collect();
                        assert_eq!(&got, &expected[k as usize]);
                    }
                });
            }
        })
        .unwrap();
    }
}
