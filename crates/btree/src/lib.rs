//! Disk-based B+-tree with composite integer keys.
//!
//! This crate is the reproduction's stand-in for the *built-in* B+-tree
//! index of a commercial RDBMS — the only primitive the Relational Interval
//! Tree requires from its host system.  The paper's core design rule is that
//! indexes are used **"on an as-they-are basis without any augmentation of
//! the internal data structure"** (Section 1); accordingly, nothing in this
//! crate knows anything about intervals.  The RI-tree, the Tile Index, the
//! IST and MAP21 baselines all build on these same unmodified trees, exactly
//! as they would on Oracle's B+-trees.
//!
//! Features:
//! * composite keys of 1–4 `i64` columns (relational *composite indexes*
//!   such as `(node, lower)` from the paper's Figure 2),
//! * duplicate keys disambiguated by a `u64` payload (the row id),
//! * ordered range scans over leaf chains ([`BTree::scan_range`]),
//! * logarithmic insert and delete; deletion never restructures (emptied
//!   pages stay linked and absorb later inserts — the price of latch-free
//!   readers, see `tree`'s module docs),
//! * sorted [`bulk loading`](BTree::bulk_load) with a configurable fill
//!   factor (the paper bulk-loads the competitors' indexes in Section 6) —
//!   since PR 7 a streaming bottom-up build (`builder` module): one
//!   sequential write pass, every page stored exactly once, `O(height)`
//!   memory, so million-entry loads cost `O(pages)` writes instead of
//!   per-entry descents ([`BTree::bulk_build_into`] /
//!   [`BTree::bulk_load_entries`]),
//! * an exhaustive [`BTree::check_invariants`] used by the property tests.
//!
//! All I/O goes through [`ri_pagestore::BufferPool`], so every page this
//! tree touches is visible in the experiment I/O counters.
//!
//! # Concurrency contract
//!
//! A [`BTree`] handle is `Send + Sync` (asserted at compile time below):
//! any number of threads may read **and write** one tree concurrently —
//! the paper delegates locking to the host RDBMS, and this crate plays
//! that host.  Since PR 5 the tree is a **B-link tree** (Lehman–Yao:
//! every node carries a right-sibling link and a high key): readers
//! descend with *no latches at all*, writers hold one exclusive node
//! latch at a time, and splits are two-phase — publish the right
//! sibling under the splitting node's latch, then post the separator to
//! the parent in a separate latched step — so structure modifications
//! never exclude readers or leaf-disjoint writers (see `tree`'s module
//! docs and ARCHITECTURE.md).  There are **no caller-side rules**: even
//! writing through a tree while holding one of its scan cursors is
//! legal now.  Single-threaded page-access sequences are deterministic
//! and pinned by goldens (`tests/pool_determinism.rs`, re-captured for
//! the B-link page format via `scripts/recapture-goldens.sh`).

pub mod builder;
pub mod key;
pub mod layout;
pub mod scan;
pub mod tree;

pub use builder::predicted_pages;
pub use key::{Entry, Key, MAX_ARITY};
pub use scan::RangeScan;
pub use tree::{BTree, SmoPhase, TreeStats};

pub use ri_pagestore::{Error, Result};

/// Compile-time proof of the concurrency contract: a `BTree` (and its
/// borrowing scan cursor) can be shared across reader threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BTree>();
    assert_send_sync::<RangeScan<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pagestore::{BufferPool, MemDisk};
    use std::sync::Arc;

    #[test]
    fn crate_level_smoke() {
        let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(512)));
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        for i in 0..500i64 {
            tree.insert(&[i % 10, i], i as u64).unwrap();
        }
        let hits: Vec<_> =
            tree.scan_range(&[3, i64::MIN], &[3, i64::MAX]).map(|e| e.unwrap().payload).collect();
        assert_eq!(hits.len(), 50);
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_descents_over_sharded_pool() {
        use ri_pagestore::BufferPoolConfig;
        let pool = Arc::new(BufferPool::new(MemDisk::new(512), BufferPoolConfig::sharded(64, 8)));
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        for i in 0..2000i64 {
            tree.insert(&[i % 16, i], i as u64).unwrap();
        }
        let expected: Vec<Vec<u64>> = (0..16)
            .map(|k| {
                tree.scan_range(&[k, i64::MIN], &[k, i64::MAX])
                    .map(|e| e.unwrap().payload)
                    .collect()
            })
            .collect();
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let tree = &tree;
                let expected = &expected;
                s.spawn(move |_| {
                    for round in 0..20 {
                        let k = (t + round) % 16;
                        let got: Vec<u64> = tree
                            .scan_range(&[k, i64::MIN], &[k, i64::MAX])
                            .map(|e| e.unwrap().payload)
                            .collect();
                        assert_eq!(&got, &expected[k as usize]);
                    }
                });
            }
        })
        .unwrap();
    }
}
