//! The B+-tree proper: create/open, insert, delete, bulk load, invariants.

use crate::key::Entry;
use crate::layout::{self, internal_capacity, leaf_capacity, InternalNode, LeafNode, Node};
use crate::scan::RangeScan;
use ri_pagestore::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use ri_pagestore::{BufferPool, Error, PageId, Result};
use std::sync::Arc;

const META_MAGIC: u32 = 0x5249_4254; // "RIBT"

const OFF_MAGIC: usize = 0;
const OFF_ARITY: usize = 4;
const OFF_HEIGHT: usize = 6;
const OFF_ROOT: usize = 8;
const OFF_COUNT: usize = 16;
const OFF_FREE: usize = 24;
const OFF_FIRST_LEAF: usize = 32;
const OFF_PAGES: usize = 40;

/// Persistent tree metadata, stored in the tree's meta page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta {
    root: PageId,
    /// Number of levels; 0 = empty tree, 1 = root is a leaf.
    height: u16,
    count: u64,
    free_head: PageId,
    first_leaf: PageId,
    /// Pages currently owned by the tree (excluding the meta page and
    /// free-listed pages).
    pages: u64,
}

/// Size and shape statistics, used by the storage experiments (Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of entries stored.
    pub entries: u64,
    /// Tree height in levels (0 = empty).
    pub height: u16,
    /// Pages in use (leaves + internal nodes).
    pub pages: u64,
}

/// A disk-based B+-tree over a shared [`BufferPool`].
///
/// A tree is identified by its *meta page*; [`BTree::create`] allocates one
/// and [`BTree::open`] re-attaches to it, which is how the relational
/// catalog persists indexes across database restarts.
///
/// Writers must be externally serialized (one writer at a time, no
/// concurrent readers during a write); the relational layer above wraps
/// statements accordingly.  This matches the paper's setting, where all
/// locking is delegated to the host RDBMS.
pub struct BTree {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    arity: usize,
    leaf_cap: usize,
    internal_cap: usize,
}

impl BTree {
    /// Creates a new empty tree with keys of `arity` columns.
    pub fn create(pool: Arc<BufferPool>, arity: usize) -> Result<BTree> {
        if arity == 0 || arity > crate::key::MAX_ARITY {
            return Err(Error::InvalidArgument(format!(
                "index arity must be 1..={}, got {arity}",
                crate::key::MAX_ARITY
            )));
        }
        let meta_page = pool.allocate_page()?;
        let tree = BTree::attach(pool, meta_page, arity);
        tree.write_meta(&Meta {
            root: PageId::INVALID,
            height: 0,
            count: 0,
            free_head: PageId::INVALID,
            first_leaf: PageId::INVALID,
            pages: 0,
        })?;
        Ok(tree)
    }

    /// Re-opens the tree whose metadata lives at `meta_page`.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<BTree> {
        let (magic, arity) =
            pool.with_page(meta_page, |buf| (get_u32(buf, OFF_MAGIC), buf[OFF_ARITY] as usize))?;
        if magic != META_MAGIC {
            return Err(Error::Corrupt(format!("page {meta_page} is not a B+-tree meta page")));
        }
        Ok(BTree::attach(pool, meta_page, arity))
    }

    fn attach(pool: Arc<BufferPool>, meta_page: PageId, arity: usize) -> BTree {
        let ps = pool.page_size();
        BTree {
            pool,
            meta_page,
            arity,
            leaf_cap: leaf_capacity(ps, arity),
            internal_cap: internal_capacity(ps, arity),
        }
    }

    /// The page id identifying this tree (to be recorded in a catalog).
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The buffer pool this tree performs I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.count)
    }

    /// Size and shape statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let meta = self.read_meta()?;
        Ok(TreeStats { entries: meta.count, height: meta.height, pages: meta.pages })
    }

    // ------------------------------------------------------------------
    // Meta page and page allocation
    // ------------------------------------------------------------------

    fn read_meta(&self) -> Result<Meta> {
        self.pool.with_page(self.meta_page, |buf| {
            if get_u32(buf, OFF_MAGIC) != META_MAGIC {
                return Err(Error::Corrupt("meta page magic mismatch".to_string()));
            }
            Ok(Meta {
                root: PageId(get_u64(buf, OFF_ROOT)),
                height: get_u16(buf, OFF_HEIGHT),
                count: get_u64(buf, OFF_COUNT),
                free_head: PageId(get_u64(buf, OFF_FREE)),
                first_leaf: PageId(get_u64(buf, OFF_FIRST_LEAF)),
                pages: get_u64(buf, OFF_PAGES),
            })
        })?
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            put_u32(buf, OFF_MAGIC, META_MAGIC);
            buf[OFF_ARITY] = self.arity as u8;
            put_u16(buf, OFF_HEIGHT, meta.height);
            put_u64(buf, OFF_ROOT, meta.root.raw());
            put_u64(buf, OFF_COUNT, meta.count);
            put_u64(buf, OFF_FREE, meta.free_head.raw());
            put_u64(buf, OFF_FIRST_LEAF, meta.first_leaf.raw());
            put_u64(buf, OFF_PAGES, meta.pages);
        })
    }

    /// Allocates a page for this tree, preferring its free list.
    fn alloc_page(&self, meta: &mut Meta) -> Result<PageId> {
        let page = if meta.free_head.is_invalid() {
            self.pool.allocate_page()?
        } else {
            let head = meta.free_head;
            meta.free_head = self.pool.with_page(head, layout::read_free_link)??;
            head
        };
        meta.pages += 1;
        Ok(page)
    }

    /// Returns a page to this tree's free list.
    fn free_page(&self, meta: &mut Meta, page: PageId) -> Result<()> {
        let next = meta.free_head;
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_free(buf, next, arity))?;
        meta.free_head = page;
        meta.pages -= 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Node I/O helpers
    // ------------------------------------------------------------------

    fn read_any(&self, page: PageId) -> Result<Node> {
        let arity = self.arity;
        self.pool.with_page(page, |buf| layout::read_node(buf, arity))?
    }

    fn read_leaf(&self, page: PageId) -> Result<LeafNode> {
        match self.read_any(page)? {
            Node::Leaf(l) => Ok(l),
            Node::Internal(_) => {
                Err(Error::Corrupt(format!("expected leaf at {page}, found internal node")))
            }
        }
    }

    fn read_internal(&self, page: PageId) -> Result<InternalNode> {
        match self.read_any(page)? {
            Node::Internal(n) => Ok(n),
            Node::Leaf(_) => {
                Err(Error::Corrupt(format!("expected internal node at {page}, found leaf")))
            }
        }
    }

    fn store_leaf(&self, page: PageId, node: &LeafNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_leaf(buf, node, arity))
    }

    fn store_internal(&self, page: PageId, node: &InternalNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_internal(buf, node, arity))
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts `(cols, payload)`.
    ///
    /// Duplicate `(cols, payload)` pairs are permitted (the tree is a
    /// multiset, as a relational index over a multiset table must be).
    pub fn insert(&self, cols: &[i64], payload: u64) -> Result<()> {
        self.check_arity(cols)?;
        let entry = Entry::new(cols, payload);
        let mut meta = self.read_meta()?;
        if meta.root.is_invalid() {
            let root = self.alloc_page(&mut meta)?;
            let leaf = LeafNode { entries: vec![entry], ..LeafNode::empty() };
            self.store_leaf(root, &leaf)?;
            meta.root = root;
            meta.first_leaf = root;
            meta.height = 1;
            meta.count = 1;
            return self.write_meta(&meta);
        }
        let (root, height) = (meta.root, meta.height);
        let split = self.insert_rec(&mut meta, root, height, entry)?;
        if let Some((sep, right)) = split {
            let new_root = self.alloc_page(&mut meta)?;
            let node = InternalNode { child0: meta.root, entries: vec![(sep, right)] };
            self.store_internal(new_root, &node)?;
            meta.root = new_root;
            meta.height += 1;
        }
        meta.count += 1;
        self.write_meta(&meta)
    }

    /// Recursive insert; returns the `(separator, new right sibling)` pair
    /// when the visited node split.
    fn insert_rec(
        &self,
        meta: &mut Meta,
        page: PageId,
        level: u16,
        entry: Entry,
    ) -> Result<Option<(Entry, PageId)>> {
        if level == 1 {
            let mut leaf = self.read_leaf(page)?;
            let pos = leaf.entries.partition_point(|e| e < &entry);
            leaf.entries.insert(pos, entry);
            if leaf.entries.len() <= self.leaf_cap {
                self.store_leaf(page, &leaf)?;
                return Ok(None);
            }
            // Split: right sibling takes the upper half.
            let mid = leaf.entries.len() / 2;
            let right_entries = leaf.entries.split_off(mid);
            let right_page = self.alloc_page(meta)?;
            let right = LeafNode { entries: right_entries, next: leaf.next, prev: page };
            let old_next = leaf.next;
            leaf.next = right_page;
            let sep = right.entries[0];
            self.store_leaf(page, &leaf)?;
            self.store_leaf(right_page, &right)?;
            if !old_next.is_invalid() {
                let mut nn = self.read_leaf(old_next)?;
                nn.prev = right_page;
                self.store_leaf(old_next, &nn)?;
            }
            Ok(Some((sep, right_page)))
        } else {
            let node = self.read_internal(page)?;
            let slot = node.route(&entry);
            let child = node.child_at(slot);
            let Some((sep, new_child)) = self.insert_rec(meta, child, level - 1, entry)? else {
                return Ok(None);
            };
            // Re-read: recursion may not touch this page, but staying
            // disciplined about read-modify-write windows keeps the code
            // obviously correct if that ever changes.
            let mut node = self.read_internal(page)?;
            let pos = node.entries.partition_point(|(s, _)| s < &sep);
            node.entries.insert(pos, (sep, new_child));
            if node.entries.len() <= self.internal_cap {
                self.store_internal(page, &node)?;
                return Ok(None);
            }
            // Split: promote the middle separator.
            let mid = node.entries.len() / 2;
            let mut upper = node.entries.split_off(mid);
            let (promoted, promoted_child) = upper.remove(0);
            let right_page = self.alloc_page(meta)?;
            let right = InternalNode { child0: promoted_child, entries: upper };
            self.store_internal(page, &node)?;
            self.store_internal(right_page, &right)?;
            Ok(Some((promoted, right_page)))
        }
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes the exact `(cols, payload)` entry.
    ///
    /// Returns `false` if no such entry exists.  Underflowing nodes are not
    /// rebalanced (the common production trade-off, cf. PostgreSQL): pages
    /// are reclaimed only once empty, which preserves all search invariants
    /// and keeps deletion logarithmic.
    pub fn delete(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        let mut meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        // Descend, recording (page, routing slot) for each internal level.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(meta.height as usize);
        let mut page = meta.root;
        for _ in 2..=meta.height {
            let node = self.read_internal(page)?;
            let slot = node.route(&target);
            path.push((page, slot));
            page = node.child_at(slot);
        }
        let mut leaf = self.read_leaf(page)?;
        let Ok(pos) = leaf.entries.binary_search(&target) else {
            return Ok(false);
        };
        leaf.entries.remove(pos);
        if !leaf.entries.is_empty() || path.is_empty() {
            // Non-empty leaf, or the leaf *is* the root (an empty root leaf
            // is legal and keeps the metadata simple).
            self.store_leaf(page, &leaf)?;
        } else {
            self.unlink_leaf(&mut meta, page, &leaf)?;
            self.remove_child_upwards(&mut meta, &mut path)?;
            self.collapse_root(&mut meta)?;
        }
        meta.count -= 1;
        self.write_meta(&meta)?;
        Ok(true)
    }

    /// Unlinks an emptied leaf from the leaf chain and frees its page.
    fn unlink_leaf(&self, meta: &mut Meta, page: PageId, leaf: &LeafNode) -> Result<()> {
        if leaf.prev.is_invalid() {
            meta.first_leaf = leaf.next;
        } else {
            let mut p = self.read_leaf(leaf.prev)?;
            p.next = leaf.next;
            self.store_leaf(leaf.prev, &p)?;
        }
        if !leaf.next.is_invalid() {
            let mut n = self.read_leaf(leaf.next)?;
            n.prev = leaf.prev;
            self.store_leaf(leaf.next, &n)?;
        }
        self.free_page(meta, page)
    }

    /// Removes the child pointer recorded at the top of `path` from its
    /// parent, cascading if internal nodes lose their last child.
    fn remove_child_upwards(&self, meta: &mut Meta, path: &mut Vec<(PageId, usize)>) -> Result<()> {
        while let Some((ppage, slot)) = path.pop() {
            let mut pnode = self.read_internal(ppage)?;
            if slot == 0 {
                if pnode.entries.is_empty() {
                    // This internal node just lost its only child.
                    if path.is_empty() {
                        // It was the root: the tree is now empty.
                        self.free_page(meta, ppage)?;
                        meta.root = PageId::INVALID;
                        meta.height = 0;
                        meta.first_leaf = PageId::INVALID;
                        return Ok(());
                    }
                    self.free_page(meta, ppage)?;
                    continue; // cascade: remove it from *its* parent
                }
                let (_, first_child) = pnode.entries.remove(0);
                pnode.child0 = first_child;
            } else {
                pnode.entries.remove(slot - 1);
            }
            self.store_internal(ppage, &pnode)?;
            return Ok(());
        }
        Ok(())
    }

    /// Shrinks the tree while the root is an internal node with one child.
    fn collapse_root(&self, meta: &mut Meta) -> Result<()> {
        while meta.height >= 2 {
            let root = self.read_internal(meta.root)?;
            if !root.entries.is_empty() {
                break;
            }
            let old_root = meta.root;
            meta.root = root.child0;
            meta.height -= 1;
            self.free_page(meta, old_root)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup and scans
    // ------------------------------------------------------------------

    /// Returns `true` if the exact `(cols, payload)` entry is present.
    pub fn contains(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        let mut page = meta.root;
        for _ in 2..=meta.height {
            let node = self.read_internal(page)?;
            page = node.child_at(node.route(&target));
        }
        let leaf = self.read_leaf(page)?;
        Ok(leaf.entries.binary_search(&target).is_ok())
    }

    /// Ordered scan of all entries with `lo <= key columns <= hi`
    /// (inclusive bounds, compared lexicographically).
    ///
    /// This is the *index range scan* of the paper's query plans: a search
    /// phase of `O(log_b n)` page reads followed by a contiguous leaf scan.
    pub fn scan_range(&self, lo: &[i64], hi: &[i64]) -> RangeScan<'_> {
        RangeScan::new(self, lo, hi)
    }

    /// Ordered scan of the entire tree.
    pub fn scan_all(&self) -> RangeScan<'_> {
        let lo = vec![i64::MIN; self.arity];
        let hi = vec![i64::MAX; self.arity];
        RangeScan::new(self, &lo, &hi)
    }

    /// Locates the leaf that must contain the first entry `>= target`,
    /// returning its page id.  Used by the scan cursor.
    pub(crate) fn descend_to_leaf(&self, target: &Entry) -> Result<Option<PageId>> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(None);
        }
        let mut page = meta.root;
        for _ in 2..=meta.height {
            let node = self.read_internal(page)?;
            page = node.child_at(node.route(target));
        }
        Ok(Some(page))
    }

    pub(crate) fn load_leaf(&self, page: PageId) -> Result<LeafNode> {
        self.read_leaf(page)
    }

    fn check_arity(&self, cols: &[i64]) -> Result<()> {
        if cols.len() != self.arity {
            return Err(Error::InvalidArgument(format!(
                "key has {} columns, index expects {}",
                cols.len(),
                self.arity
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Builds a tree from entries that are **already sorted** by
    /// `(key, payload)`, packing leaves to `fill` (0 < fill <= 1).
    ///
    /// The paper bulk-loads the competitor indexes before the query
    /// experiments (Section 6.3 notes their "good clustering properties of
    /// the bulk loaded indexes"); this constructor provides the same for all
    /// access methods in this repository.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        arity: usize,
        entries: impl IntoIterator<Item = (Vec<i64>, u64)>,
        fill: f64,
    ) -> Result<BTree> {
        if !(0.0..=1.0).contains(&fill) || fill <= 0.0 {
            return Err(Error::InvalidArgument(format!("fill factor {fill} not in (0, 1]")));
        }
        let tree = BTree::create(pool, arity)?;
        let mut meta = tree.read_meta()?;
        let leaf_target = ((tree.leaf_cap as f64 * fill).floor() as usize).clamp(1, tree.leaf_cap);

        // Phase 1: write the leaf level.
        let mut leaves: Vec<(Entry, PageId)> = Vec::new(); // (min entry, page)
        let mut current: Vec<Entry> = Vec::with_capacity(leaf_target);
        let mut prev_entry: Option<Entry> = None;
        let mut prev_leaf: Option<PageId> = None;
        let mut total: u64 = 0;

        let flush_leaf = |tree: &BTree,
                          meta: &mut Meta,
                          entries: Vec<Entry>,
                          prev_leaf: &mut Option<PageId>,
                          leaves: &mut Vec<(Entry, PageId)>|
         -> Result<()> {
            let page = tree.alloc_page(meta)?;
            let node = LeafNode {
                entries,
                next: PageId::INVALID,
                prev: prev_leaf.unwrap_or(PageId::INVALID),
            };
            if let Some(prev) = *prev_leaf {
                let mut p = tree.read_leaf(prev)?;
                p.next = page;
                tree.store_leaf(prev, &p)?;
            } else {
                meta.first_leaf = page;
            }
            leaves.push((node.entries[0], page));
            tree.store_leaf(page, &node)?;
            *prev_leaf = Some(page);
            Ok(())
        };

        for (cols, payload) in entries {
            tree.check_arity(&cols)?;
            let e = Entry::new(&cols, payload);
            if let Some(prev) = prev_entry {
                if e < prev {
                    return Err(Error::InvalidArgument(
                        "bulk_load input is not sorted by (key, payload)".to_string(),
                    ));
                }
            }
            prev_entry = Some(e);
            current.push(e);
            total += 1;
            if current.len() == leaf_target {
                flush_leaf(
                    &tree,
                    &mut meta,
                    std::mem::take(&mut current),
                    &mut prev_leaf,
                    &mut leaves,
                )?;
            }
        }
        if !current.is_empty() {
            flush_leaf(&tree, &mut meta, current, &mut prev_leaf, &mut leaves)?;
        }
        if leaves.is_empty() {
            return Ok(tree); // empty input: tree stays empty
        }

        // Phase 2: build internal levels bottom-up.
        let internal_target =
            ((tree.internal_cap as f64 * fill).floor() as usize).clamp(1, tree.internal_cap);
        let mut level: Vec<(Entry, PageId)> = leaves;
        let mut height: u16 = 1;
        while level.len() > 1 {
            let mut next_level: Vec<(Entry, PageId)> = Vec::new();
            // Each internal node takes up to internal_target + 1 children.
            for group in level.chunks(internal_target + 1) {
                let page = tree.alloc_page(&mut meta)?;
                let node = InternalNode { child0: group[0].1, entries: group[1..].to_vec() };
                tree.store_internal(page, &node)?;
                next_level.push((group[0].0, page));
            }
            level = next_level;
            height += 1;
        }
        meta.root = level[0].1;
        meta.height = height;
        meta.count = total;
        tree.write_meta(&meta)?;
        Ok(tree)
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests and debugging)
    // ------------------------------------------------------------------

    /// Exhaustively validates structural invariants; returns a descriptive
    /// error naming the first violation found.
    ///
    /// Checked: node ordering, separator bounds, uniform leaf depth, leaf
    /// chain consistency (forward and backward), capacity limits, and the
    /// metadata entry count.
    pub fn check_invariants(&self) -> Result<()> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            if meta.count != 0 || meta.height != 0 || !meta.first_leaf.is_invalid() {
                return Err(Error::Corrupt("empty tree with non-empty metadata".to_string()));
            }
            return Ok(());
        }
        let mut leaves_in_order = Vec::new();
        let counted =
            self.check_subtree(meta.root, meta.height, None, None, &mut leaves_in_order)?;
        if counted != meta.count {
            return Err(Error::Corrupt(format!(
                "meta count {} but tree holds {counted} entries",
                meta.count
            )));
        }
        // Leaf chain must enumerate exactly the in-order leaves.
        let mut chained = Vec::new();
        let mut page = meta.first_leaf;
        let mut prev = PageId::INVALID;
        while !page.is_invalid() {
            let leaf = self.read_leaf(page)?;
            if leaf.prev != prev {
                return Err(Error::Corrupt(format!("leaf {page} has wrong prev pointer")));
            }
            chained.push(page);
            prev = page;
            page = leaf.next;
        }
        if chained != leaves_in_order {
            return Err(Error::Corrupt(
                "leaf chain disagrees with in-order leaf sequence".to_string(),
            ));
        }
        Ok(())
    }

    fn check_subtree(
        &self,
        page: PageId,
        level: u16,
        lo: Option<Entry>,
        hi: Option<Entry>,
        leaves: &mut Vec<PageId>,
    ) -> Result<u64> {
        let in_bounds = |e: &Entry| lo.is_none_or(|l| *e >= l) && hi.is_none_or(|h| *e < h);
        match self.read_any(page)? {
            Node::Leaf(leaf) => {
                if level != 1 {
                    return Err(Error::Corrupt(format!("leaf {page} at level {level}")));
                }
                if leaf.entries.len() > self.leaf_cap {
                    return Err(Error::Corrupt(format!("leaf {page} over capacity")));
                }
                if !leaf.entries.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("leaf {page} not strictly sorted")));
                }
                if !leaf.entries.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!("leaf {page} violates separator bounds")));
                }
                leaves.push(page);
                Ok(leaf.entries.len() as u64)
            }
            Node::Internal(node) => {
                if level < 2 {
                    return Err(Error::Corrupt(format!("internal node {page} at leaf level")));
                }
                if node.entries.len() > self.internal_cap {
                    return Err(Error::Corrupt(format!("internal {page} over capacity")));
                }
                let seps: Vec<Entry> = node.entries.iter().map(|(s, _)| *s).collect();
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("internal {page} separators unsorted")));
                }
                if !seps.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!(
                        "internal {page} separator violates bounds"
                    )));
                }
                let mut total = 0;
                let mut child_lo = lo;
                for i in 0..=node.entries.len() {
                    let child = node.child_at(i);
                    let child_hi =
                        if i < node.entries.len() { Some(node.entries[i].0) } else { hi };
                    total += self.check_subtree(child, level - 1, child_lo, child_hi, leaves)?;
                    if i < node.entries.len() {
                        child_lo = Some(node.entries[i].0);
                    }
                }
                Ok(total)
            }
        }
    }
}
