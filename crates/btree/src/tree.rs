//! The B-link tree proper: create/open, insert, delete, bulk load,
//! invariants.
//!
//! # Write concurrency: the Lehman–Yao B-link protocol
//!
//! Since PR 5 the tree is a **B-link tree**: every node carries a *right
//! link* to its sibling and a *high key* bounding its key range
//! (`layout`).  That one structural relaxation removes the tree-wide
//! latch entirely — there is no latch under which the whole structure is
//! ever frozen (see ARCHITECTURE.md for the full argument):
//!
//! * **Readers are latch-free.**  A descent reads the meta page (root +
//!   height are written together, so the pair is consistent), walks down
//!   routing by separators, and whenever it finds its target at or past a
//!   node's high key it *moves right* through the right link.  A stale
//!   root is harmless — the root only grows, and an old root's right
//!   chain still covers the whole key space at its level.
//! * **Writers latch one node at a time.**  An insert descends latch-free
//!   (remembering the internal page it routed through at each level as a
//!   *hint stack*), takes the leaf latch exclusive, moves right under the
//!   latch if a concurrent split shifted its key range, and stores in
//!   place.  No crabbing, no shared page latches, no upgrade.
//! * **Splits are two-phase.**  Phase 1, under only the splitting node's
//!   latch: allocate the right sibling, give it the upper half of the
//!   entries plus the old right link and high key, then publish — the
//!   sibling page is stored *before* the left node links it, so a reader
//!   can never follow a link into an unwritten page.  The tree is fully
//!   searchable the moment the left node's store lands (keys past the new
//!   high key are reached by moving right).  Phase 2, after releasing the
//!   leaf latch: post the separator into the parent under the *parent's*
//!   latch (starting from the hint stack and moving right as needed).  A
//!   parent that overflows splits the same way, one level up.  When the
//!   stack runs out, the writer latches the meta page: if the split node
//!   is still the root it installs a new root (*root grow*), otherwise a
//!   concurrent grow won the race and the writer re-descends from the
//!   current root to the correct level and posts there.
//! * **Deletes never restructure.**  An emptied leaf stays in the tree
//!   with its high key and right link intact (it still routes correctly
//!   and can absorb later inserts); pages are never unlinked or freed, so
//!   a latch-free reader can never walk into a recycled page.  This is
//!   the standard production trade-off pushed one step further than the
//!   seed's empty-page reclamation — reclaiming under B-link rules
//!   requires a right-to-left latch order or reader quiescence tracking,
//!   and is left to an explicit future vacuum.
//!
//! **Deadlock freedom.**  Writers acquire node latches one at a time in
//! two monotone directions only: *left to right* along a level (the
//! move-right loops) and *bottom up* across levels (leaf latch released
//! before the parent post).  The meta-page latch is always innermost
//! (taken while holding at most one node latch, released before any other
//! latch is acquired), so every latch-order edge points right, up, or
//! into the meta page — no cycles.  Readers hold no latches at all.
//!
//! The counters telling the story live in the pool's latch manager:
//! `splits`, `right_link_chases` (zero single-threaded — only an
//! in-flight concurrent split makes a traversal land left of its key),
//! `incomplete_smo_completions` (phase-2 separator posts / root grows),
//! and `pending_root_grow_waits` (a top-level sibling split had to wait
//! for a still-pending root grow before its parent level existed).
//!
//! # Latches vs page faults (audit)
//!
//! With the pool's promoted miss path, a fault performs its device read
//! outside the shard lock — but a *latch* held across a fault would still
//! queue that latch's waiters behind the fetch.  Every page is therefore
//! [`BufferPool::prefetch`]ed immediately before its latch is acquired,
//! so the read under a page's own latch is a cache hit.  (Best-effort,
//! not an invariant: under heavy eviction pressure a concurrent fault may
//! evict the page in the prefetch-to-latch window and the latched read
//! then re-faults; the window contains no device I/O, so this is rare,
//! and merely reduces to the pre-prefetch behavior.)  Because writers
//! hold one node latch at a time and readers hold none, no latch's
//! waiters queue behind another page's device *read* on any read or
//! descent path — the residual parent-holds-while-child-prefetches
//! window of the crabbing protocol is gone along with the crabbing.
//! What can still span a fault under a latch: the split paths store
//! freshly allocated sibling/root pages (and `grow_or_relocate` writes
//! the new root under the meta latch) without prefetching them — under
//! eviction pressure such a store can fault its frame in while the
//! latch is held.  Splits are rare and the stored pages are newly
//! allocated (their fill is a device read of a zero page), so this is
//! recorded as a bounded exposure rather than engineered away.

use crate::key::Entry;
use crate::layout::{self, internal_capacity, leaf_capacity, InternalNode, LeafNode, Node};
use crate::scan::RangeScan;
use ri_pagestore::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use ri_pagestore::{BufferPool, Error, LatchGuard, LatchManager, PageId, Result};
use std::sync::{Arc, Mutex};

const META_MAGIC: u32 = 0x5249_4254; // "RIBT"

const OFF_MAGIC: usize = 0;
const OFF_ARITY: usize = 4;
const OFF_HEIGHT: usize = 6;
const OFF_ROOT: usize = 8;
const OFF_COUNT: usize = 16;
const OFF_FREE: usize = 24;
const OFF_FIRST_LEAF: usize = 32;
const OFF_PAGES: usize = 40;

/// Persistent tree metadata, stored in the tree's meta page.
///
/// All structural fields (`root`, `height`, `pages`, `first_leaf`) are
/// read and written only under an exclusive latch on the meta page, and
/// `root`/`height` change together — a reader's unlatched copy is
/// therefore internally consistent, if possibly stale (which the B-link
/// move-right rule absorbs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Meta {
    pub(crate) root: PageId,
    /// Number of levels; 0 = empty tree, 1 = root is a leaf.  Only ever
    /// grows (roots are never collapsed: deletes do not restructure).
    pub(crate) height: u16,
    pub(crate) count: u64,
    /// Head of the free list.  Always invalid since PR 5 — the B-link
    /// tree never frees pages — but the slot is kept for the format's
    /// stability and a future vacuum.
    pub(crate) free_head: PageId,
    pub(crate) first_leaf: PageId,
    /// Pages currently owned by the tree (excluding the meta page).
    pub(crate) pages: u64,
}

/// Size and shape statistics, used by the storage experiments (Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of entries stored.
    pub entries: u64,
    /// Tree height in levels (0 = empty).
    pub height: u16,
    /// Pages in use (leaves + internal nodes).
    pub pages: u64,
}

/// The window of an in-flight structure modification, reported to the
/// test probe installed via [`BTree::set_smo_probe`].
///
/// This exists for the concurrency test suites: it lets a deterministic
/// test run readers *inside* the window between the two phases of a
/// split (sibling published, separator not yet posted) without relying
/// on scheduler timing.  Production code never installs a probe.
#[derive(Clone, Copy, Debug)]
pub enum SmoPhase {
    /// A leaf split published its right sibling; the parent separator is
    /// not posted yet.  The probe runs on the splitting thread, which
    /// holds **no latches** at this point.
    LeafSplitLinked {
        /// The node that split (keeps the lower half).
        left: PageId,
        /// The freshly published right sibling.
        right: PageId,
    },
    /// An internal split published its right sibling; the separator one
    /// level up is not posted yet.  No latches held.
    InternalSplitLinked {
        /// The node that split.
        left: PageId,
        /// The freshly published right sibling.
        right: PageId,
    },
    /// A root grow installed a new root above a completed split.
    RootGrown {
        /// The new root page.
        root: PageId,
    },
}

/// Test probe callback type (see [`BTree::set_smo_probe`]).
pub type SmoProbe = dyn Fn(SmoPhase) + Send + Sync;

/// A disk-based B-link tree over a shared [`BufferPool`].
///
/// A tree is identified by its *meta page*; [`BTree::create`] allocates one
/// and [`BTree::open`] re-attaches to it, which is how the relational
/// catalog persists indexes across database restarts.
///
/// Any number of threads may read and write one tree concurrently — even
/// through *different* handles opened on the same meta page, since all
/// synchronization state lives in the shared pool's latch manager.  There
/// is **no cursor rule**: scans are latch-free, so a thread may freely
/// write through a tree while holding one of its scan cursors (the
/// pre-B-link protocol forbade this).
pub struct BTree {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    arity: usize,
    pub(crate) leaf_cap: usize,
    pub(crate) internal_cap: usize,
    /// Test instrumentation for the split window; `None` in production.
    smo_probe: Mutex<Option<Arc<SmoProbe>>>,
}

/// Outcome of [`BTree::grow_or_relocate`]: either the root grew (the
/// separator is posted in the new root), or the parent at the target
/// level was located and the post must continue there.
enum ParentSearch {
    Grown,
    At(PageId),
}

impl BTree {
    /// Creates a new empty tree with keys of `arity` columns.
    pub fn create(pool: Arc<BufferPool>, arity: usize) -> Result<BTree> {
        if arity == 0 || arity > crate::key::MAX_ARITY {
            return Err(Error::InvalidArgument(format!(
                "index arity must be 1..={}, got {arity}",
                crate::key::MAX_ARITY
            )));
        }
        let meta_page = pool.allocate_page()?;
        let tree = BTree::attach(pool, meta_page, arity);
        tree.write_meta(&Meta {
            root: PageId::INVALID,
            height: 0,
            count: 0,
            free_head: PageId::INVALID,
            first_leaf: PageId::INVALID,
            pages: 0,
        })?;
        Ok(tree)
    }

    /// Re-opens the tree whose metadata lives at `meta_page`.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<BTree> {
        let (magic, arity) =
            pool.with_page(meta_page, |buf| (get_u32(buf, OFF_MAGIC), buf[OFF_ARITY] as usize))?;
        if magic != META_MAGIC {
            return Err(Error::Corrupt(format!("page {meta_page} is not a B+-tree meta page")));
        }
        Ok(BTree::attach(pool, meta_page, arity))
    }

    fn attach(pool: Arc<BufferPool>, meta_page: PageId, arity: usize) -> BTree {
        let ps = pool.page_size();
        BTree {
            pool,
            meta_page,
            arity,
            leaf_cap: leaf_capacity(ps, arity),
            internal_cap: internal_capacity(ps, arity),
            smo_probe: Mutex::new(None),
        }
    }

    #[inline]
    pub(crate) fn latches(&self) -> &LatchManager {
        self.pool.latches()
    }

    /// The page id identifying this tree (to be recorded in a catalog).
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The buffer pool this tree performs I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.count)
    }

    /// Size and shape statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let meta = self.read_meta()?;
        Ok(TreeStats { entries: meta.count, height: meta.height, pages: meta.pages })
    }

    /// Installs (or clears) the structure-modification probe on **this
    /// handle** — a test hook invoked in the window between the two
    /// phases of every split, with no latches held (see [`SmoPhase`]).
    /// The concurrency suites use it to run readers deterministically
    /// *inside* in-flight splits; production code leaves it unset, in
    /// which case the write path never looks at it off the split path.
    pub fn set_smo_probe(&self, probe: Option<Arc<SmoProbe>>) {
        *self.smo_probe.lock().unwrap_or_else(|e| e.into_inner()) = probe;
    }

    fn probe(&self, phase: SmoPhase) {
        let probe = self.smo_probe.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(p) = probe {
            p(phase);
        }
    }

    // ------------------------------------------------------------------
    // Meta page and page allocation
    // ------------------------------------------------------------------

    pub(crate) fn read_meta(&self) -> Result<Meta> {
        self.pool.with_page(self.meta_page, |buf| {
            if get_u32(buf, OFF_MAGIC) != META_MAGIC {
                return Err(Error::Corrupt("meta page magic mismatch".to_string()));
            }
            Ok(Meta {
                root: PageId(get_u64(buf, OFF_ROOT)),
                height: get_u16(buf, OFF_HEIGHT),
                count: get_u64(buf, OFF_COUNT),
                free_head: PageId(get_u64(buf, OFF_FREE)),
                first_leaf: PageId(get_u64(buf, OFF_FIRST_LEAF)),
                pages: get_u64(buf, OFF_PAGES),
            })
        })?
    }

    pub(crate) fn write_meta(&self, meta: &Meta) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            put_u32(buf, OFF_MAGIC, META_MAGIC);
            buf[OFF_ARITY] = self.arity as u8;
            put_u16(buf, OFF_HEIGHT, meta.height);
            put_u64(buf, OFF_ROOT, meta.root.raw());
            put_u64(buf, OFF_COUNT, meta.count);
            put_u64(buf, OFF_FREE, meta.free_head.raw());
            put_u64(buf, OFF_FIRST_LEAF, meta.first_leaf.raw());
            put_u64(buf, OFF_PAGES, meta.pages);
        })
    }

    /// Applies `count += delta` to the meta page in place.  The caller
    /// must hold the meta-page latch; the count is read from the page
    /// rather than from any cached `Meta` because every writer bumps it
    /// concurrently.
    fn bump_count(&self, delta: i64) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            let count = get_u64(buf, OFF_COUNT);
            put_u64(buf, OFF_COUNT, (count as i64 + delta) as u64);
        })
    }

    /// Allocates a page for this tree and charges it to the meta page's
    /// `pages` counter under the meta latch.  Called from split paths
    /// while holding (at most) the splitting node's latch; the meta
    /// latch is always innermost, so this cannot deadlock.
    fn alloc_page_latched(&self) -> Result<PageId> {
        let page = self.pool.allocate_page()?;
        self.pool.prefetch(self.meta_page)?;
        let _meta_latch = self.latches().page_exclusive(self.meta_page);
        self.pool.with_page_mut(self.meta_page, |buf| {
            let pages = get_u64(buf, OFF_PAGES);
            put_u64(buf, OFF_PAGES, pages + 1);
        })?;
        Ok(page)
    }

    // ------------------------------------------------------------------
    // Node I/O helpers
    // ------------------------------------------------------------------

    pub(crate) fn read_any(&self, page: PageId) -> Result<Node> {
        let arity = self.arity;
        self.pool.with_page(page, |buf| layout::read_node(buf, arity))?
    }

    fn read_leaf(&self, page: PageId) -> Result<LeafNode> {
        match self.read_any(page)? {
            Node::Leaf(l) => Ok(l),
            Node::Internal(_) => {
                Err(Error::Corrupt(format!("expected leaf at {page}, found internal node")))
            }
        }
    }

    fn read_internal(&self, page: PageId) -> Result<InternalNode> {
        match self.read_any(page)? {
            Node::Internal(n) => Ok(n),
            Node::Leaf(_) => {
                Err(Error::Corrupt(format!("expected internal node at {page}, found leaf")))
            }
        }
    }

    pub(crate) fn store_leaf(&self, page: PageId, node: &LeafNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_leaf(buf, node, arity))
    }

    pub(crate) fn store_internal(&self, page: PageId, node: &InternalNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_internal(buf, node, arity))
    }

    // ------------------------------------------------------------------
    // Latch-free descent
    // ------------------------------------------------------------------

    /// Descends from `meta.root` to the leaf level, routing toward
    /// `target` and moving right past high keys.  Returns the leaf page
    /// reached plus (when `stack` is wanted) the internal page routed
    /// through at each level, shallowest first — the writer's hint stack
    /// for separator posting.
    ///
    /// `meta` may be stale: `root` and `height` are written together, so
    /// the pair is consistent, and a root that has since grown or split
    /// still covers the key space through its right chain.
    /// Latch-free move-right: reads the internal node at `page`, chasing
    /// right links until the node covers `target`.  The single canonical
    /// chase loop for unlatched internal traversals.
    fn chase_internal(&self, mut page: PageId, target: &Entry) -> Result<(PageId, InternalNode)> {
        loop {
            let node = self.read_internal(page)?;
            if node.covers(target) {
                return Ok((page, node));
            }
            debug_assert!(!node.next.is_invalid(), "missing high key implies no right move");
            self.latches().record_right_link_chase();
            page = node.next;
        }
    }

    /// Latch-free move-right at the leaf level (the canonical unlatched
    /// leaf chase).
    fn chase_leaf(&self, mut page: PageId, target: &Entry) -> Result<(PageId, LeafNode)> {
        loop {
            let leaf = self.read_leaf(page)?;
            if leaf.covers(target) {
                return Ok((page, leaf));
            }
            debug_assert!(!leaf.next.is_invalid(), "missing high key implies no right move");
            self.latches().record_right_link_chase();
            page = leaf.next;
        }
    }

    /// Latched move-right: prefetches and exclusively latches `page`,
    /// re-chasing right links under the latch (release, prefetch, latch
    /// next) until the node read under the latch covers `target`.  The
    /// single canonical chase loop for latched traversals; callers match
    /// the node type they expect.
    fn latch_covering_node(
        &self,
        mut page: PageId,
        target: &Entry,
    ) -> Result<(PageId, Node, LatchGuard<'_>)> {
        self.pool.prefetch(page)?;
        let mut guard = self.latches().page_exclusive(page);
        loop {
            let node = self.read_any(page)?;
            let next = match &node {
                Node::Leaf(l) if l.covers(target) => return Ok((page, node, guard)),
                Node::Internal(n) if n.covers(target) => return Ok((page, node, guard)),
                Node::Leaf(l) => l.next,
                Node::Internal(n) => n.next,
            };
            debug_assert!(!next.is_invalid(), "missing high key implies no right move");
            drop(guard);
            self.latches().record_right_link_chase();
            self.pool.prefetch(next)?;
            guard = self.latches().page_exclusive(next);
            page = next;
        }
    }

    fn descend(
        &self,
        meta: &Meta,
        target: &Entry,
        want_stack: bool,
    ) -> Result<(PageId, Vec<PageId>)> {
        let mut page = meta.root;
        let mut stack =
            if want_stack { Vec::with_capacity(meta.height as usize) } else { Vec::new() };
        for _ in 2..=meta.height {
            let (covering, node) = self.chase_internal(page, target)?;
            if want_stack {
                stack.push(covering);
            }
            page = node.child_at(node.route(target));
        }
        Ok((page, stack))
    }

    /// Exclusively latches the leaf responsible for `target`, starting
    /// from the descent's `page` hint and moving right under the latch if
    /// a concurrent split shifted the key range.  The page is prefetched
    /// before each latch acquisition so the latched read is a cache hit.
    fn latch_leaf_for_write(
        &self,
        page: PageId,
        target: &Entry,
    ) -> Result<(PageId, LeafNode, LatchGuard<'_>)> {
        match self.latch_covering_node(page, target)? {
            (page, Node::Leaf(leaf), guard) => Ok((page, leaf, guard)),
            (page, Node::Internal(_), _) => {
                Err(Error::Corrupt(format!("expected leaf at {page}, found internal node")))
            }
        }
    }

    /// Locates and reads (latch-free) the leaf covering `target`.
    fn find_leaf(&self, meta: &Meta, target: &Entry) -> Result<(PageId, LeafNode)> {
        let (page, _) = self.descend(meta, target, false)?;
        self.chase_leaf(page, target)
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts `(cols, payload)`.
    ///
    /// Duplicate `(cols, payload)` pairs are permitted (the tree is a
    /// multiset, as a relational index over a multiset table must be).
    ///
    /// Concurrency: the descent is latch-free; the write holds only the
    /// leaf latch (plus one meta-page hold for the count).  A split runs
    /// the two-phase B-link protocol described in the module docs and
    /// never excludes readers or leaf-disjoint writers.
    pub fn insert(&self, cols: &[i64], payload: u64) -> Result<()> {
        self.check_arity(cols)?;
        let entry = Entry::new(cols, payload);
        loop {
            let meta = self.read_meta()?;
            if meta.root.is_invalid() {
                if self.try_plant_root(entry)? {
                    return Ok(());
                }
                continue; // lost the empty-tree race; a root exists now
            }
            let (leaf_hint, stack) = self.descend(&meta, &entry, true)?;
            let (leaf_page, mut leaf, guard) = self.latch_leaf_for_write(leaf_hint, &entry)?;
            let pos = leaf.entries.partition_point(|e| e < &entry);
            leaf.entries.insert(pos, entry);
            if leaf.entries.len() <= self.leaf_cap {
                // Safe leaf: one latched in-place store.  This is the
                // parallel path — leaf-disjoint writers never touch.
                self.store_leaf(leaf_page, &leaf)?;
                drop(guard);
            } else {
                let (sep, right_page) = self.split_leaf(leaf_page, leaf)?;
                drop(guard);
                self.probe(SmoPhase::LeafSplitLinked { left: leaf_page, right: right_page });
                self.post_separator(stack, leaf_page, 1, sep, right_page)?;
            }
            // Prefetch so the count bump under the meta latch is a hit —
            // the meta page is the hottest latch in the tree and must
            // never wait on a device read.
            self.pool.prefetch(self.meta_page)?;
            let _meta_latch = self.latches().page_exclusive(self.meta_page);
            return self.bump_count(1);
        }
    }

    /// Creates the first root leaf holding `entry`, unless another writer
    /// planted one first (returns `false`; the caller re-descends).  The
    /// leaf page is stored before the meta page points at it.
    fn try_plant_root(&self, entry: Entry) -> Result<bool> {
        self.pool.prefetch(self.meta_page)?;
        let _meta_latch = self.latches().page_exclusive(self.meta_page);
        let mut meta = self.read_meta()?;
        if !meta.root.is_invalid() {
            return Ok(false);
        }
        let root = self.pool.allocate_page()?;
        meta.pages += 1;
        let node = LeafNode { entries: vec![entry], ..LeafNode::empty() };
        self.store_leaf(root, &node)?;
        meta.root = root;
        meta.first_leaf = root;
        meta.height = 1;
        meta.count += 1;
        self.write_meta(&meta)?;
        Ok(true)
    }

    /// Phase 1 of a leaf split.  Caller holds the leaf latch and passes
    /// the over-full (capacity + 1) in-memory leaf; the right sibling
    /// takes the upper half, the old right link, and the old high key.
    /// The sibling page is stored **before** the left node is relinked,
    /// so the link is never dangling for latch-free readers.  Returns
    /// the separator (the sibling's first entry) and the sibling page.
    fn split_leaf(&self, leaf_page: PageId, mut leaf: LeafNode) -> Result<(Entry, PageId)> {
        let mid = leaf.entries.len() / 2;
        let right_entries = leaf.entries.split_off(mid);
        let right_page = self.alloc_page_latched()?;
        let right = LeafNode { entries: right_entries, next: leaf.next, high: leaf.high };
        let sep = right.entries[0];
        leaf.next = right_page;
        leaf.high = Some(sep);
        self.store_leaf(right_page, &right)?;
        self.store_leaf(leaf_page, &leaf)?;
        self.latches().record_split();
        Ok((sep, right_page))
    }

    /// Phase 2 of the split protocol: post `(sep, right)` — the split of
    /// `left`, a node at `left_level` — into the parent level, cascading
    /// upward while parents overflow.  The caller holds **no latches**.
    /// `stack` holds the descent's per-level routing hints (shallowest
    /// first); a hint that has since split is corrected by moving right
    /// under the parent latch, and an exhausted stack means `left` was
    /// the root when the descent read it (handled by
    /// [`BTree::grow_or_relocate`]).
    fn post_separator(
        &self,
        mut stack: Vec<PageId>,
        mut left: PageId,
        mut left_level: u16,
        mut sep: Entry,
        mut right: PageId,
    ) -> Result<()> {
        loop {
            let hint = match stack.pop() {
                Some(p) => p,
                None => match self.grow_or_relocate(left, left_level, sep, right)? {
                    ParentSearch::Grown => return Ok(()),
                    ParentSearch::At(p) => p,
                },
            };
            let (page, mut node, guard) = match self.latch_covering_node(hint, &sep)? {
                (page, Node::Internal(node), guard) => (page, node, guard),
                (page, Node::Leaf(_), _) => {
                    return Err(Error::Corrupt(format!(
                        "expected internal node at {page}, found leaf"
                    )))
                }
            };
            let pos = node.entries.partition_point(|(s, _)| s < &sep);
            node.entries.insert(pos, (sep, right));
            self.latches().record_smo_completion();
            if node.entries.len() <= self.internal_cap {
                self.store_internal(page, &node)?;
                return Ok(());
            }
            // The parent overflows: split it the same two-phase way and
            // continue posting one level up.  The promoted separator
            // moves to the parent level; the right node's first child is
            // the promoted separator's child, exactly as in the seed.
            let mid = node.entries.len() / 2;
            let mut upper = node.entries.split_off(mid);
            let (promoted, promoted_child) = upper.remove(0);
            let new_right = self.alloc_page_latched()?;
            let rnode = InternalNode {
                child0: promoted_child,
                entries: upper,
                next: node.next,
                high: node.high,
            };
            node.next = new_right;
            node.high = Some(promoted);
            self.store_internal(new_right, &rnode)?;
            self.store_internal(page, &node)?;
            self.latches().record_split();
            drop(guard);
            self.probe(SmoPhase::InternalSplitLinked { left: page, right: new_right });
            left = page;
            left_level += 1;
            sep = promoted;
            right = new_right;
        }
    }

    /// The hint stack is exhausted: `left` (at `left_level`) was at the
    /// top of the tree as this writer's descent saw it.  Under the meta
    /// latch, either it is the current root — install a new root over
    /// `(left, sep, right)` (*root grow*) — or the level above it is (or
    /// will shortly be) owned by someone else: walk down from the
    /// *current* root to the level just above `left` and return the
    /// parent to post into.
    ///
    /// One genuinely pending case exists: `left` is a *right sibling* at
    /// the top level whose own creation's root grow has not landed yet
    /// (old root `R` split into `R → left`, the splitter released its
    /// latch — making `left` reachable — but has not yet installed the
    /// new root).  Then `meta.root != left` **and** `meta.height ==
    /// left_level`: the parent that must absorb this separator does not
    /// exist yet.  The only correct move is to wait for the pending grow
    /// (we hold no latches; the grower needs only the meta latch, which
    /// we release every probe; in-process the grower always completes),
    /// then relocate normally.
    fn grow_or_relocate(
        &self,
        left: PageId,
        left_level: u16,
        sep: Entry,
        right: PageId,
    ) -> Result<ParentSearch> {
        let meta = loop {
            // `Ok(new root)` when this writer grew the tree, `Err(meta)`
            // otherwise.
            let grown: std::result::Result<PageId, Meta> = {
                self.pool.prefetch(self.meta_page)?;
                let _meta_latch = self.latches().page_exclusive(self.meta_page);
                let mut meta = self.read_meta()?;
                if meta.root == left {
                    let new_root = self.pool.allocate_page()?;
                    meta.pages += 1;
                    let node = InternalNode {
                        child0: left,
                        entries: vec![(sep, right)],
                        next: PageId::INVALID,
                        high: None,
                    };
                    self.store_internal(new_root, &node)?;
                    meta.root = new_root;
                    meta.height += 1;
                    self.write_meta(&meta)?;
                    self.latches().record_smo_completion();
                    Ok(new_root)
                } else {
                    Err(meta)
                }
            };
            match grown {
                Ok(new_root) => {
                    self.probe(SmoPhase::RootGrown { root: new_root });
                    return Ok(ParentSearch::Grown);
                }
                Err(meta) if meta.height > left_level => break meta,
                Err(_) => {
                    // The pending-grow window described above: no parent
                    // level exists yet.  Yield and re-check (counted, so
                    // the concurrency tests can observe the wait
                    // deterministically).
                    self.latches().record_pending_grow_wait();
                    std::thread::yield_now();
                }
            }
        };
        // The level above `left` exists: route down to it by `sep`
        // (moving right as needed) to find the parent that must absorb
        // the post.
        let mut page = meta.root;
        let mut level = meta.height;
        while level > left_level + 1 {
            let (_, node) = self.chase_internal(page, &sep)?;
            page = node.child_at(node.route(&sep));
            level -= 1;
        }
        Ok(ParentSearch::At(page))
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes the exact `(cols, payload)` entry.
    ///
    /// Returns `false` if no such entry exists.  Deletion never
    /// restructures: underflowing nodes are not rebalanced (the common
    /// production trade-off, cf. PostgreSQL), and — since the B-link
    /// refactor — an emptied leaf is not even unlinked: it stays in the
    /// tree with its high key and right link, routes correctly, absorbs
    /// later inserts, and costs one page until a future vacuum.  This is
    /// what keeps readers latch-free: a page, once linked, is never
    /// freed, so no traversal can walk into recycled storage.
    ///
    /// Concurrency mirrors [`BTree::insert`]'s leaf path: latch-free
    /// descent, one exclusive leaf latch, one meta hold for the count.
    pub fn delete(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        let (leaf_hint, _) = self.descend(&meta, &target, false)?;
        let (leaf_page, mut leaf, guard) = self.latch_leaf_for_write(leaf_hint, &target)?;
        let Ok(pos) = leaf.entries.binary_search(&target) else {
            return Ok(false);
        };
        leaf.entries.remove(pos);
        self.store_leaf(leaf_page, &leaf)?;
        drop(guard);
        // As in `insert`: the bump under the meta latch must hit.
        self.pool.prefetch(self.meta_page)?;
        let _meta_latch = self.latches().page_exclusive(self.meta_page);
        self.bump_count(-1)?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Lookup and scans
    // ------------------------------------------------------------------

    /// Returns `true` if the exact `(cols, payload)` entry is present.
    ///
    /// Latch-free: the descent routes by separators and moves right past
    /// high keys; no concurrent split, root grow, or writer can make it
    /// miss a committed entry (entries only ever move *right*, and the
    /// traversal moves right with them).
    pub fn contains(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        let (_, leaf) = self.find_leaf(&meta, &target)?;
        Ok(leaf.entries.binary_search(&target).is_ok())
    }

    /// Ordered scan of all entries with `lo <= key columns <= hi`
    /// (inclusive bounds, compared lexicographically).
    ///
    /// This is the *index range scan* of the paper's query plans: a search
    /// phase of `O(log_b n)` page reads followed by a contiguous leaf scan.
    pub fn scan_range(&self, lo: &[i64], hi: &[i64]) -> RangeScan<'_> {
        RangeScan::new(self, lo, hi)
    }

    /// Ordered scan of the entire tree.
    pub fn scan_all(&self) -> RangeScan<'_> {
        let lo = vec![i64::MIN; self.arity];
        let hi = vec![i64::MAX; self.arity];
        RangeScan::new(self, &lo, &hi)
    }

    /// Locates and loads the leaf holding the first entry `>= target`
    /// (used by the scan cursor).  Latch-free, like every read path.
    pub(crate) fn position_leaf(&self, target: &Entry) -> Result<Option<(PageId, LeafNode)>> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(None);
        }
        Ok(Some(self.find_leaf(&meta, target)?))
    }

    pub(crate) fn load_leaf(&self, page: PageId) -> Result<LeafNode> {
        self.read_leaf(page)
    }

    pub(crate) fn check_arity(&self, cols: &[i64]) -> Result<()> {
        if cols.len() != self.arity {
            return Err(Error::InvalidArgument(format!(
                "key has {} columns, index expects {}",
                cols.len(),
                self.arity
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Builds a tree from `(columns, payload)` pairs that are **already
    /// sorted** by `(key, payload)`, packing nodes to `fill`
    /// (0 < fill <= 1).
    ///
    /// The paper bulk-loads the competitor indexes before the query
    /// experiments (Section 6.3 notes their "good clustering properties of
    /// the bulk loaded indexes"); this constructor provides the same for all
    /// access methods in this repository.
    ///
    /// A thin column-vector adapter over the streaming bottom-up builder
    /// (`builder` module): one sequential write pass, every page stored
    /// exactly once, `O(height)` memory.  See [`BTree::bulk_build_into`]
    /// to build into an existing (empty) tree from typed [`Entry`]
    /// values, and [`BTree::bulk_load_entries`] for the create+build
    /// combination without the per-item column vectors.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        arity: usize,
        entries: impl IntoIterator<Item = (Vec<i64>, u64)>,
        fill: f64,
    ) -> Result<BTree> {
        let tree = BTree::create(pool, arity)?;
        let items = entries.into_iter().map(|(cols, payload)| {
            tree.check_arity(&cols)?;
            Ok(Entry::new(&cols, payload))
        });
        tree.bulk_build_checked(items, fill)?;
        Ok(tree)
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests and debugging)
    // ------------------------------------------------------------------

    /// Exhaustively validates structural invariants; returns a descriptive
    /// error naming the first violation found.
    ///
    /// Intended for *quiescent* trees (no in-flight split): with every
    /// separator posted, each node's high key must equal the upper bound
    /// its parent derives for it, every level's right links must chain
    /// its in-order nodes, and the leaf chain must enumerate the in-order
    /// leaves.  Also checked: node ordering, separator bounds, uniform
    /// leaf depth, capacity limits, the `high ⟺ right link` pairing, and
    /// the metadata entry count.  Empty leaves are legal (deletes do not
    /// restructure).
    pub fn check_invariants(&self) -> Result<()> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            if meta.count != 0 || meta.height != 0 || !meta.first_leaf.is_invalid() {
                return Err(Error::Corrupt("empty tree with non-empty metadata".to_string()));
            }
            return Ok(());
        }
        // levels[h - 1] collects the in-order pages of level h.
        let mut levels: Vec<Vec<PageId>> = vec![Vec::new(); meta.height as usize];
        let counted = self.check_subtree(meta.root, meta.height, None, None, &mut levels)?;
        if counted != meta.count {
            return Err(Error::Corrupt(format!(
                "meta count {} but tree holds {counted} entries",
                meta.count
            )));
        }
        let mut page_budget = 0u64;
        for (idx, nodes) in levels.iter().enumerate() {
            page_budget += nodes.len() as u64;
            for pair in nodes.windows(2) {
                if self.right_link_of(pair[0])? != pair[1] {
                    return Err(Error::Corrupt(format!(
                        "level {}: node {} does not link its in-order successor {}",
                        idx + 1,
                        pair[0],
                        pair[1]
                    )));
                }
            }
            let last = *nodes.last().expect("every level has a node");
            if !self.right_link_of(last)?.is_invalid() {
                return Err(Error::Corrupt(format!(
                    "level {}: rightmost node {last} has a right link",
                    idx + 1
                )));
            }
        }
        if page_budget != meta.pages {
            return Err(Error::Corrupt(format!(
                "meta records {} pages but the tree reaches {page_budget}",
                meta.pages
            )));
        }
        // Leaf chain must enumerate exactly the in-order leaves.
        let mut chained = Vec::new();
        let mut page = meta.first_leaf;
        while !page.is_invalid() {
            let leaf = self.read_leaf(page)?;
            chained.push(page);
            page = leaf.next;
        }
        if chained != levels[0] {
            return Err(Error::Corrupt(
                "leaf chain disagrees with in-order leaf sequence".to_string(),
            ));
        }
        Ok(())
    }

    fn right_link_of(&self, page: PageId) -> Result<PageId> {
        Ok(match self.read_any(page)? {
            Node::Leaf(l) => l.next,
            Node::Internal(n) => n.next,
        })
    }

    fn check_subtree(
        &self,
        page: PageId,
        level: u16,
        lo: Option<Entry>,
        hi: Option<Entry>,
        levels: &mut Vec<Vec<PageId>>,
    ) -> Result<u64> {
        let in_bounds = |e: &Entry| lo.is_none_or(|l| *e >= l) && hi.is_none_or(|h| *e < h);
        match self.read_any(page)? {
            Node::Leaf(leaf) => {
                if level != 1 {
                    return Err(Error::Corrupt(format!("leaf {page} at level {level}")));
                }
                if leaf.entries.len() > self.leaf_cap {
                    return Err(Error::Corrupt(format!("leaf {page} over capacity")));
                }
                if leaf.high != hi {
                    return Err(Error::Corrupt(format!(
                        "leaf {page} high key disagrees with its parent separator"
                    )));
                }
                if leaf.high.is_some() == leaf.next.is_invalid() {
                    return Err(Error::Corrupt(format!(
                        "leaf {page}: high key and right link must be set together"
                    )));
                }
                if !leaf.entries.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("leaf {page} not strictly sorted")));
                }
                if !leaf.entries.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!("leaf {page} violates separator bounds")));
                }
                levels[0].push(page);
                Ok(leaf.entries.len() as u64)
            }
            Node::Internal(node) => {
                if level < 2 {
                    return Err(Error::Corrupt(format!("internal node {page} at leaf level")));
                }
                if node.entries.len() > self.internal_cap {
                    return Err(Error::Corrupt(format!("internal {page} over capacity")));
                }
                if node.high != hi {
                    return Err(Error::Corrupt(format!(
                        "internal {page} high key disagrees with its parent separator"
                    )));
                }
                if node.high.is_some() == node.next.is_invalid() {
                    return Err(Error::Corrupt(format!(
                        "internal {page}: high key and right link must be set together"
                    )));
                }
                let seps: Vec<Entry> = node.entries.iter().map(|(s, _)| *s).collect();
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("internal {page} separators unsorted")));
                }
                if !seps.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!(
                        "internal {page} separator violates bounds"
                    )));
                }
                levels[level as usize - 1].push(page);
                let mut total = 0;
                let mut child_lo = lo;
                for i in 0..=node.entries.len() {
                    let child = node.child_at(i);
                    let child_hi =
                        if i < node.entries.len() { Some(node.entries[i].0) } else { hi };
                    total += self.check_subtree(child, level - 1, child_lo, child_hi, levels)?;
                    if i < node.entries.len() {
                        child_lo = Some(node.entries[i].0);
                    }
                }
                Ok(total)
            }
        }
    }
}
