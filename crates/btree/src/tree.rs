//! The B+-tree proper: create/open, insert, delete, bulk load, invariants.
//!
//! # Write concurrency: optimistic latch crabbing
//!
//! Writers synchronize through the pool's [`ri_pagestore::LatchManager`]
//! with a two-level protocol (see ARCHITECTURE.md for the full argument):
//!
//! 1. **Optimistic path** (the common case): take the *tree latch* shared,
//!    crab *shared page latches* down the inner nodes (acquire child,
//!    release parent), take the leaf latch *exclusive*.  If the leaf is
//!    *safe* — the insert fits, or the delete leaves it non-empty — the
//!    write is a single in-place leaf store plus an entry-count bump on
//!    the meta page.  Leaf-disjoint writers proceed fully in parallel.
//! 2. **Structure modifications** (split, merge, root change): release
//!    everything, take the tree latch *exclusive*, and — if the tree's
//!    modification epoch and the leaf's version counter prove the cached
//!    descent is still exact — replay the seed algorithm from the cached
//!    path with no repeated page reads.  A concurrent change forces the
//!    *pessimistic retry*: a fresh descent under exclusive page latches
//!    that releases all latches above the deepest *safe* node.
//!
//! Readers hold the tree latch shared for the duration of a scan and take
//! no page latches (page accesses are copy-atomic in the pool; structure
//! cannot change while any shared holder exists).  Single-threaded, the
//! page-access sequence of every operation is bit-for-bit identical to
//! the pre-latching implementation — pinned by `tests/pool_determinism.rs`.
//!
//! # Latches vs page faults (audit)
//!
//! With the pool's promoted miss path, a fault performs its device read
//! outside the shard lock — but a *latch* held across a fault would still
//! queue that latch's waiters behind the fetch.  The descent paths
//! therefore [`BufferPool::prefetch`] every page immediately before
//! latching it, so the read under a page's own latch — crabbing,
//! exclusive leaf, or meta — is a cache hit.  (Best-effort, not an
//! invariant: under heavy eviction pressure a concurrent fault may evict
//! the page in the prefetch-to-latch window and the latched read then
//! re-faults; the window contains no device I/O, so this is rare, and
//! merely reduces to the pre-prefetch behavior.)  Crabbing order
//! does mean a *parent's* latch is still held while its child prefetches
//! (releasing the parent first would break the crabbing invariant), so a
//! cold child delays waiters of the parent latch by one fetch — but
//! never waiters of the cold page itself, which is the latch queue that
//! used to convoy.  The remaining fault-spanning holders are (a) the
//! shared *tree* latch, which a scan necessarily pins across all of its
//! leaf loads and which blocks only structure modifications, and (b) the
//! exclusive tree latch inside an SMO, whose page accesses must replay
//! the cached descent verbatim (prefetching there would reorder accesses
//! relative to the seed and is deliberately omitted; SMOs are the rare,
//! already-serialized path).

use crate::key::Entry;
use crate::layout::{self, internal_capacity, leaf_capacity, InternalNode, LeafNode, Node};
use crate::scan::RangeScan;
use ri_pagestore::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use ri_pagestore::{BufferPool, Error, LatchGuard, LatchManager, PageId, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const META_MAGIC: u32 = 0x5249_4254; // "RIBT"

const OFF_MAGIC: usize = 0;
const OFF_ARITY: usize = 4;
const OFF_HEIGHT: usize = 6;
const OFF_ROOT: usize = 8;
const OFF_COUNT: usize = 16;
const OFF_FREE: usize = 24;
const OFF_FIRST_LEAF: usize = 32;
const OFF_PAGES: usize = 40;

/// Persistent tree metadata, stored in the tree's meta page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta {
    root: PageId,
    /// Number of levels; 0 = empty tree, 1 = root is a leaf.
    height: u16,
    count: u64,
    free_head: PageId,
    first_leaf: PageId,
    /// Pages currently owned by the tree (excluding the meta page and
    /// free-listed pages).
    pages: u64,
}

/// Size and shape statistics, used by the storage experiments (Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of entries stored.
    pub entries: u64,
    /// Tree height in levels (0 = empty).
    pub height: u16,
    /// Pages in use (leaves + internal nodes).
    pub pages: u64,
}

/// A disk-based B+-tree over a shared [`BufferPool`].
///
/// A tree is identified by its *meta page*; [`BTree::create`] allocates one
/// and [`BTree::open`] re-attaches to it, which is how the relational
/// catalog persists indexes across database restarts.
///
/// Any number of threads may read and write one tree concurrently — even
/// through *different* handles opened on the same meta page, since all
/// synchronization state lives in the shared pool's latch manager.  The
/// one caller-side rule: a thread must not write through a tree while
/// holding one of that tree's scan cursors (a cursor pins the tree latch
/// shared; a structure modification would self-deadlock) — the classic
/// "no DML under an open cursor" contract.
pub struct BTree {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    arity: usize,
    leaf_cap: usize,
    internal_cap: usize,
    /// Structure-modification epoch, shared across all handles on this
    /// meta page via the pool's latch manager.
    epoch: Arc<AtomicU64>,
}

/// A write descent's findings: routing path, the target leaf (with its
/// version-counter handle), and the guard keeping it exclusively latched.
struct WritePath<'m> {
    /// Internal pages on the root→leaf path with the routing slot taken.
    path: Vec<(PageId, usize)>,
    leaf_page: PageId,
    leaf: LeafNode,
    /// The leaf's content version counter and the value seen at read time.
    leaf_version: Arc<AtomicU64>,
    leaf_version_seen: u64,
    leaf_guard: LatchGuard<'m>,
}

/// What an optimistic descent saw, cached for a latch upgrade: enough to
/// replay a structure modification without repeating any page read.
struct Descent {
    epoch: u64,
    meta: Meta,
    /// Internal pages on the root→leaf path with the routing slot taken.
    path: Vec<(PageId, usize)>,
    leaf_page: PageId,
    leaf: LeafNode,
    /// Leaf version handle and value seen; `None` for the empty tree.
    leaf_version: Option<(Arc<AtomicU64>, u64)>,
}

impl BTree {
    /// Creates a new empty tree with keys of `arity` columns.
    pub fn create(pool: Arc<BufferPool>, arity: usize) -> Result<BTree> {
        if arity == 0 || arity > crate::key::MAX_ARITY {
            return Err(Error::InvalidArgument(format!(
                "index arity must be 1..={}, got {arity}",
                crate::key::MAX_ARITY
            )));
        }
        let meta_page = pool.allocate_page()?;
        let tree = BTree::attach(pool, meta_page, arity);
        tree.write_meta(&Meta {
            root: PageId::INVALID,
            height: 0,
            count: 0,
            free_head: PageId::INVALID,
            first_leaf: PageId::INVALID,
            pages: 0,
        })?;
        Ok(tree)
    }

    /// Re-opens the tree whose metadata lives at `meta_page`.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<BTree> {
        let (magic, arity) =
            pool.with_page(meta_page, |buf| (get_u32(buf, OFF_MAGIC), buf[OFF_ARITY] as usize))?;
        if magic != META_MAGIC {
            return Err(Error::Corrupt(format!("page {meta_page} is not a B+-tree meta page")));
        }
        Ok(BTree::attach(pool, meta_page, arity))
    }

    fn attach(pool: Arc<BufferPool>, meta_page: PageId, arity: usize) -> BTree {
        let ps = pool.page_size();
        let epoch = pool.latches().epoch(meta_page);
        BTree {
            pool,
            meta_page,
            arity,
            leaf_cap: leaf_capacity(ps, arity),
            internal_cap: internal_capacity(ps, arity),
            epoch,
        }
    }

    #[inline]
    fn latches(&self) -> &LatchManager {
        self.pool.latches()
    }

    /// The page id identifying this tree (to be recorded in a catalog).
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The buffer pool this tree performs I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> Result<u64> {
        Ok(self.read_meta()?.count)
    }

    /// Size and shape statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let meta = self.read_meta()?;
        Ok(TreeStats { entries: meta.count, height: meta.height, pages: meta.pages })
    }

    // ------------------------------------------------------------------
    // Meta page and page allocation
    // ------------------------------------------------------------------

    fn read_meta(&self) -> Result<Meta> {
        self.pool.with_page(self.meta_page, |buf| {
            if get_u32(buf, OFF_MAGIC) != META_MAGIC {
                return Err(Error::Corrupt("meta page magic mismatch".to_string()));
            }
            Ok(Meta {
                root: PageId(get_u64(buf, OFF_ROOT)),
                height: get_u16(buf, OFF_HEIGHT),
                count: get_u64(buf, OFF_COUNT),
                free_head: PageId(get_u64(buf, OFF_FREE)),
                first_leaf: PageId(get_u64(buf, OFF_FIRST_LEAF)),
                pages: get_u64(buf, OFF_PAGES),
            })
        })?
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            put_u32(buf, OFF_MAGIC, META_MAGIC);
            buf[OFF_ARITY] = self.arity as u8;
            put_u16(buf, OFF_HEIGHT, meta.height);
            put_u64(buf, OFF_ROOT, meta.root.raw());
            put_u64(buf, OFF_COUNT, meta.count);
            put_u64(buf, OFF_FREE, meta.free_head.raw());
            put_u64(buf, OFF_FIRST_LEAF, meta.first_leaf.raw());
            put_u64(buf, OFF_PAGES, meta.pages);
        })
    }

    /// Allocates a page for this tree, preferring its free list.
    fn alloc_page(&self, meta: &mut Meta) -> Result<PageId> {
        let page = if meta.free_head.is_invalid() {
            self.pool.allocate_page()?
        } else {
            let head = meta.free_head;
            meta.free_head = self.pool.with_page(head, layout::read_free_link)??;
            head
        };
        meta.pages += 1;
        Ok(page)
    }

    /// Returns a page to this tree's free list.
    fn free_page(&self, meta: &mut Meta, page: PageId) -> Result<()> {
        let next = meta.free_head;
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_free(buf, next, arity))?;
        meta.free_head = page;
        meta.pages -= 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Node I/O helpers
    // ------------------------------------------------------------------

    fn read_any(&self, page: PageId) -> Result<Node> {
        let arity = self.arity;
        self.pool.with_page(page, |buf| layout::read_node(buf, arity))?
    }

    fn read_leaf(&self, page: PageId) -> Result<LeafNode> {
        match self.read_any(page)? {
            Node::Leaf(l) => Ok(l),
            Node::Internal(_) => {
                Err(Error::Corrupt(format!("expected leaf at {page}, found internal node")))
            }
        }
    }

    fn read_internal(&self, page: PageId) -> Result<InternalNode> {
        match self.read_any(page)? {
            Node::Internal(n) => Ok(n),
            Node::Leaf(_) => {
                Err(Error::Corrupt(format!("expected internal node at {page}, found leaf")))
            }
        }
    }

    fn store_leaf(&self, page: PageId, node: &LeafNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_leaf(buf, node, arity))
    }

    fn store_internal(&self, page: PageId, node: &InternalNode) -> Result<()> {
        let arity = self.arity;
        self.pool.with_page_mut(page, |buf| layout::write_internal(buf, node, arity))
    }

    /// Applies `count += delta` to the meta page in place.  The caller
    /// must hold either the meta-page latch exclusive (optimistic writers)
    /// or the tree latch exclusive (structure modifications); the count is
    /// read from the page rather than from any cached `Meta` because
    /// concurrent leaf writers bump it without bumping the epoch.
    fn bump_count(&self, delta: i64) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            let count = get_u64(buf, OFF_COUNT);
            put_u64(buf, OFF_COUNT, (count as i64 + delta) as u64);
        })
    }

    /// Writes every *structural* meta field from `meta` and applies
    /// `count += delta` from the page's current value, in one page write.
    /// Caller must hold the tree latch exclusive.  Single-threaded this
    /// produces byte-identical pages to the seed's full `write_meta`.
    fn write_meta_smo(&self, meta: &Meta, delta: i64) -> Result<()> {
        self.pool.with_page_mut(self.meta_page, |buf| {
            put_u32(buf, OFF_MAGIC, META_MAGIC);
            buf[OFF_ARITY] = self.arity as u8;
            put_u16(buf, OFF_HEIGHT, meta.height);
            put_u64(buf, OFF_ROOT, meta.root.raw());
            let count = get_u64(buf, OFF_COUNT);
            put_u64(buf, OFF_COUNT, (count as i64 + delta) as u64);
            put_u64(buf, OFF_FREE, meta.free_head.raw());
            put_u64(buf, OFF_FIRST_LEAF, meta.first_leaf.raw());
            put_u64(buf, OFF_PAGES, meta.pages);
        })
    }

    // ------------------------------------------------------------------
    // Optimistic descent (shared crabbing, exclusive leaf)
    // ------------------------------------------------------------------

    /// Descends to the leaf responsible for `target`, crabbing shared page
    /// latches down the inner nodes and taking the leaf latch exclusive.
    /// Returns the routing path, the latched leaf, and its guard; the
    /// caller must hold the tree latch (shared) for the whole call.
    ///
    /// Every page is **prefetched before its latch is acquired** (see
    /// [`BufferPool::prefetch`]): the read that follows under a page's
    /// own latch is a cache hit, so a cold page never stalls the waiters
    /// queued on *its* latch.  (The parent's crabbing latch is
    /// necessarily still held while a child prefetches — see the module
    /// docs.)  Prefetch + adjacent access is counter- and LRU-equivalent
    /// to the plain access, so the goldens in `tests/pool_determinism.rs`
    /// are unaffected.
    fn descend_for_write(&self, meta: &Meta, target: &Entry) -> Result<WritePath<'_>> {
        let mut page = meta.root;
        self.pool.prefetch(page)?;
        let mut guard = if meta.height == 1 {
            self.latches().page_exclusive(page)
        } else {
            self.latches().page_shared(page)
        };
        let mut path = Vec::with_capacity(meta.height as usize);
        for level in (2..=meta.height).rev() {
            let node = self.read_internal(page)?;
            let slot = node.route(target);
            let child = node.child_at(slot);
            // Crab: latch the child before releasing the parent (the
            // assignment drops the parent guard).
            self.pool.prefetch(child)?;
            guard = if level == 2 {
                self.latches().page_exclusive(child)
            } else {
                self.latches().page_shared(child)
            };
            path.push((page, slot));
            page = child;
        }
        let leaf_version = self.latches().page_version(page);
        let leaf_version_seen = leaf_version.load(Ordering::Acquire);
        let leaf = self.read_leaf(page)?;
        Ok(WritePath {
            path,
            leaf_page: page,
            leaf,
            leaf_version,
            leaf_version_seen,
            leaf_guard: guard,
        })
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts `(cols, payload)`.
    ///
    /// Duplicate `(cols, payload)` pairs are permitted (the tree is a
    /// multiset, as a relational index over a multiset table must be).
    ///
    /// Concurrency: leaf-only inserts run under the shared tree latch and
    /// an exclusive leaf latch; an insert that must split upgrades to the
    /// exclusive tree latch (see the module docs).
    pub fn insert(&self, cols: &[i64], payload: u64) -> Result<()> {
        self.check_arity(cols)?;
        let entry = Entry::new(cols, payload);
        let descent = {
            let _tree = self.latches().tree_shared(self.meta_page);
            let epoch = self.epoch.load(Ordering::Acquire);
            let meta = self.read_meta()?;
            if meta.root.is_invalid() {
                Descent {
                    epoch,
                    meta,
                    path: Vec::new(),
                    leaf_page: PageId::INVALID,
                    leaf: LeafNode::empty(),
                    leaf_version: None,
                }
            } else {
                let mut wp = self.descend_for_write(&meta, &entry)?;
                if wp.leaf.entries.len() < self.leaf_cap {
                    // Safe leaf: the whole insert is one latched in-place
                    // store plus a count bump.  This is the parallel path.
                    let pos = wp.leaf.entries.partition_point(|e| e < &entry);
                    wp.leaf.entries.insert(pos, entry);
                    self.store_leaf(wp.leaf_page, &wp.leaf)?;
                    wp.leaf_version.fetch_add(1, Ordering::Release);
                    drop(wp.leaf_guard);
                    // Prefetch so the count bump under the meta latch is a
                    // hit — the meta page is the hottest latch in the tree
                    // and must never wait on a device read.
                    self.pool.prefetch(self.meta_page)?;
                    let _meta_latch = self.latches().page_exclusive(self.meta_page);
                    return self.bump_count(1);
                }
                Descent {
                    epoch,
                    meta,
                    path: wp.path,
                    leaf_page: wp.leaf_page,
                    leaf: wp.leaf,
                    leaf_version: Some((wp.leaf_version, wp.leaf_version_seen)),
                }
            }
        };
        // The leaf must split (or the tree is empty): upgrade.  All
        // latches are released before the exclusive acquisition — holding
        // the leaf latch across it would deadlock against a writer that
        // holds the tree latch shared and wants this leaf.
        self.latches().record_upgrade();
        let _tree = self.latches().tree_exclusive(self.meta_page);
        if self.descent_still_valid(&descent) {
            self.insert_smo(entry, descent.meta, &descent.path, descent.leaf_page, descent.leaf)?;
        } else {
            // A concurrent writer changed the structure or the leaf while
            // we were between latches: pessimistic retry from the root.
            self.latches().record_restart();
            self.insert_pessimistic(entry)?;
        }
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// `true` when a cached descent can be replayed verbatim: no structure
    /// modification happened since (epoch) and the target leaf's content
    /// was not touched by a concurrent leaf-only writer (version).
    fn descent_still_valid(&self, d: &Descent) -> bool {
        self.epoch.load(Ordering::Acquire) == d.epoch
            && d.leaf_version
                .as_ref()
                .is_none_or(|(handle, seen)| handle.load(Ordering::Acquire) == *seen)
    }

    /// Pessimistic insert under the exclusive tree latch: re-descend with
    /// exclusive page latches, releasing every latch above the deepest
    /// *insert-safe* node (one whose separator array still has room), then
    /// run the same structure-modification code.
    ///
    /// Today the exclusive tree latch makes these page latches
    /// uncontended by construction; they exist because they are the part
    /// of the protocol that becomes load-bearing the day the tree latch
    /// is relaxed (B-link-style SMOs, see ROADMAP), and keeping the
    /// retry path honest about its latch footprint costs microseconds on
    /// a path that is already a restart.
    fn insert_pessimistic(&self, entry: Entry) -> Result<()> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return self.insert_smo(entry, meta, &[], PageId::INVALID, LeafNode::empty());
        }
        let mut held: Vec<LatchGuard<'_>> = Vec::new();
        let mut path = Vec::with_capacity(meta.height as usize);
        let mut page = meta.root;
        for _ in 2..=meta.height {
            self.pool.prefetch(page)?;
            held.push(self.latches().page_exclusive(page));
            let node = self.read_internal(page)?;
            if node.entries.len() < self.internal_cap {
                // Safe node: a child split is absorbed here, so no
                // ancestor can be touched — release their latches.
                held.drain(..held.len() - 1);
            }
            let slot = node.route(&entry);
            path.push((page, slot));
            page = node.child_at(slot);
        }
        self.pool.prefetch(page)?;
        held.push(self.latches().page_exclusive(page));
        let leaf = self.read_leaf(page)?;
        self.insert_smo(entry, meta, &path, page, leaf)
    }

    /// The structural insert, shared by the epoch-validated replay and the
    /// pessimistic retry.  Caller holds the tree latch exclusive; `meta`,
    /// `path` and `leaf` come from a descent that is known exact, so no
    /// page is read twice — the page-access sequence is the seed
    /// algorithm's, bit for bit.
    fn insert_smo(
        &self,
        entry: Entry,
        mut meta: Meta,
        path: &[(PageId, usize)],
        leaf_page: PageId,
        mut leaf: LeafNode,
    ) -> Result<()> {
        if meta.root.is_invalid() {
            let root = self.alloc_page(&mut meta)?;
            let node = LeafNode { entries: vec![entry], ..LeafNode::empty() };
            self.store_leaf(root, &node)?;
            meta.root = root;
            meta.first_leaf = root;
            meta.height = 1;
            return self.write_meta_smo(&meta, 1);
        }
        let pos = leaf.entries.partition_point(|e| e < &entry);
        leaf.entries.insert(pos, entry);
        if leaf.entries.len() <= self.leaf_cap {
            // Only reachable from the pessimistic retry: a concurrent
            // split made room while we were between latches.
            self.store_leaf(leaf_page, &leaf)?;
            return self.write_meta_smo(&meta, 1);
        }
        // Leaf split: right sibling takes the upper half.
        let mid = leaf.entries.len() / 2;
        let right_entries = leaf.entries.split_off(mid);
        let right_page = self.alloc_page(&mut meta)?;
        let right = LeafNode { entries: right_entries, next: leaf.next, prev: leaf_page };
        let old_next = leaf.next;
        leaf.next = right_page;
        let mut sep = right.entries[0];
        self.store_leaf(leaf_page, &leaf)?;
        self.store_leaf(right_page, &right)?;
        if !old_next.is_invalid() {
            let mut nn = self.read_leaf(old_next)?;
            nn.prev = right_page;
            self.store_leaf(old_next, &nn)?;
        }
        // Propagate the separator up the cached path, splitting internal
        // nodes as needed.  Each parent is re-read here — the same
        // "second read" the seed's recursive unwinding performed.
        let mut right_child = right_page;
        let mut pending = true;
        for &(page, _) in path.iter().rev() {
            let mut node = self.read_internal(page)?;
            let pos = node.entries.partition_point(|(s, _)| s < &sep);
            node.entries.insert(pos, (sep, right_child));
            if node.entries.len() <= self.internal_cap {
                self.store_internal(page, &node)?;
                pending = false;
                break;
            }
            // Split: promote the middle separator.
            let mid = node.entries.len() / 2;
            let mut upper = node.entries.split_off(mid);
            let (promoted, promoted_child) = upper.remove(0);
            let new_right = self.alloc_page(&mut meta)?;
            let rnode = InternalNode { child0: promoted_child, entries: upper };
            self.store_internal(page, &node)?;
            self.store_internal(new_right, &rnode)?;
            sep = promoted;
            right_child = new_right;
        }
        if pending {
            let new_root = self.alloc_page(&mut meta)?;
            let node = InternalNode { child0: meta.root, entries: vec![(sep, right_child)] };
            self.store_internal(new_root, &node)?;
            meta.root = new_root;
            meta.height += 1;
        }
        self.write_meta_smo(&meta, 1)
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Deletes the exact `(cols, payload)` entry.
    ///
    /// Returns `false` if no such entry exists.  Underflowing nodes are not
    /// rebalanced (the common production trade-off, cf. PostgreSQL): pages
    /// are reclaimed only once empty, which preserves all search invariants
    /// and keeps deletion logarithmic.
    ///
    /// Concurrency mirrors [`BTree::insert`]: a delete that leaves its
    /// leaf non-empty (or empties the root leaf) runs under the shared
    /// tree latch; one that empties a non-root leaf upgrades to the
    /// exclusive tree latch to unlink and free pages.
    pub fn delete(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        let (descent, pos) = {
            let _tree = self.latches().tree_shared(self.meta_page);
            let epoch = self.epoch.load(Ordering::Acquire);
            let meta = self.read_meta()?;
            if meta.root.is_invalid() {
                return Ok(false);
            }
            let mut wp = self.descend_for_write(&meta, &target)?;
            let Ok(pos) = wp.leaf.entries.binary_search(&target) else {
                return Ok(false);
            };
            if wp.leaf.entries.len() > 1 || wp.path.is_empty() {
                // Non-empty leaf after removal, or the leaf *is* the root
                // (an empty root leaf is legal): one in-place store.
                wp.leaf.entries.remove(pos);
                self.store_leaf(wp.leaf_page, &wp.leaf)?;
                wp.leaf_version.fetch_add(1, Ordering::Release);
                drop(wp.leaf_guard);
                // As in `insert`: the bump under the meta latch must hit.
                self.pool.prefetch(self.meta_page)?;
                let _meta_latch = self.latches().page_exclusive(self.meta_page);
                self.bump_count(-1)?;
                return Ok(true);
            }
            (
                Descent {
                    epoch,
                    meta,
                    path: wp.path,
                    leaf_page: wp.leaf_page,
                    leaf: wp.leaf,
                    leaf_version: Some((wp.leaf_version, wp.leaf_version_seen)),
                },
                pos,
            )
        };
        // The leaf empties: the page must be unlinked and freed — upgrade.
        self.latches().record_upgrade();
        let _tree = self.latches().tree_exclusive(self.meta_page);
        let deleted = if self.descent_still_valid(&descent) {
            self.delete_smo(descent.meta, descent.path, descent.leaf_page, descent.leaf, pos)?;
            true
        } else {
            self.latches().record_restart();
            self.delete_pessimistic(&target)?
        };
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(deleted)
    }

    /// Pessimistic delete under the exclusive tree latch: fresh descent
    /// with exclusive page latches, releasing every latch above the
    /// deepest *delete-safe* node (one that keeps ≥ 1 separator after a
    /// child removal, so no cascade can pass it).
    fn delete_pessimistic(&self, target: &Entry) -> Result<bool> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        let mut held: Vec<LatchGuard<'_>> = Vec::new();
        let mut path = Vec::with_capacity(meta.height as usize);
        let mut page = meta.root;
        for _ in 2..=meta.height {
            self.pool.prefetch(page)?;
            held.push(self.latches().page_exclusive(page));
            let node = self.read_internal(page)?;
            if !node.entries.is_empty() {
                held.drain(..held.len() - 1);
            }
            let slot = node.route(target);
            path.push((page, slot));
            page = node.child_at(slot);
        }
        self.pool.prefetch(page)?;
        held.push(self.latches().page_exclusive(page));
        let mut leaf = self.read_leaf(page)?;
        let Ok(pos) = leaf.entries.binary_search(target) else {
            return Ok(false);
        };
        if leaf.entries.len() > 1 || path.is_empty() {
            leaf.entries.remove(pos);
            self.store_leaf(page, &leaf)?;
            self.bump_count(-1)?;
            return Ok(true);
        }
        self.delete_smo(meta, path, page, leaf, pos)?;
        Ok(true)
    }

    /// The structural delete (leaf empties): unlink from the leaf chain,
    /// free the page, cascade the child removal upward, collapse the root.
    /// Caller holds the tree latch exclusive; the page-access sequence is
    /// the seed algorithm's, bit for bit.
    fn delete_smo(
        &self,
        mut meta: Meta,
        mut path: Vec<(PageId, usize)>,
        leaf_page: PageId,
        mut leaf: LeafNode,
        pos: usize,
    ) -> Result<()> {
        leaf.entries.remove(pos);
        debug_assert!(leaf.entries.is_empty() && !path.is_empty());
        self.unlink_leaf(&mut meta, leaf_page, &leaf)?;
        self.remove_child_upwards(&mut meta, &mut path)?;
        self.collapse_root(&mut meta)?;
        self.write_meta_smo(&meta, -1)
    }

    /// Unlinks an emptied leaf from the leaf chain and frees its page.
    fn unlink_leaf(&self, meta: &mut Meta, page: PageId, leaf: &LeafNode) -> Result<()> {
        if leaf.prev.is_invalid() {
            meta.first_leaf = leaf.next;
        } else {
            let mut p = self.read_leaf(leaf.prev)?;
            p.next = leaf.next;
            self.store_leaf(leaf.prev, &p)?;
        }
        if !leaf.next.is_invalid() {
            let mut n = self.read_leaf(leaf.next)?;
            n.prev = leaf.prev;
            self.store_leaf(leaf.next, &n)?;
        }
        self.free_page(meta, page)
    }

    /// Removes the child pointer recorded at the top of `path` from its
    /// parent, cascading if internal nodes lose their last child.
    fn remove_child_upwards(&self, meta: &mut Meta, path: &mut Vec<(PageId, usize)>) -> Result<()> {
        while let Some((ppage, slot)) = path.pop() {
            let mut pnode = self.read_internal(ppage)?;
            if slot == 0 {
                if pnode.entries.is_empty() {
                    // This internal node just lost its only child.
                    if path.is_empty() {
                        // It was the root: the tree is now empty.
                        self.free_page(meta, ppage)?;
                        meta.root = PageId::INVALID;
                        meta.height = 0;
                        meta.first_leaf = PageId::INVALID;
                        return Ok(());
                    }
                    self.free_page(meta, ppage)?;
                    continue; // cascade: remove it from *its* parent
                }
                let (_, first_child) = pnode.entries.remove(0);
                pnode.child0 = first_child;
            } else {
                pnode.entries.remove(slot - 1);
            }
            self.store_internal(ppage, &pnode)?;
            return Ok(());
        }
        Ok(())
    }

    /// Shrinks the tree while the root is an internal node with one child.
    fn collapse_root(&self, meta: &mut Meta) -> Result<()> {
        while meta.height >= 2 {
            let root = self.read_internal(meta.root)?;
            if !root.entries.is_empty() {
                break;
            }
            let old_root = meta.root;
            meta.root = root.child0;
            meta.height -= 1;
            self.free_page(meta, old_root)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup and scans
    // ------------------------------------------------------------------

    /// Returns `true` if the exact `(cols, payload)` entry is present.
    pub fn contains(&self, cols: &[i64], payload: u64) -> Result<bool> {
        self.check_arity(cols)?;
        let target = Entry::new(cols, payload);
        // Readers pin the structure with the shared tree latch and take no
        // page latches: page accesses are copy-atomic in the pool, and no
        // split/merge/free can run while any shared holder exists.
        let _tree = self.latches().tree_shared(self.meta_page);
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(false);
        }
        let mut page = meta.root;
        for _ in 2..=meta.height {
            let node = self.read_internal(page)?;
            page = node.child_at(node.route(&target));
        }
        let leaf = self.read_leaf(page)?;
        Ok(leaf.entries.binary_search(&target).is_ok())
    }

    /// Ordered scan of all entries with `lo <= key columns <= hi`
    /// (inclusive bounds, compared lexicographically).
    ///
    /// This is the *index range scan* of the paper's query plans: a search
    /// phase of `O(log_b n)` page reads followed by a contiguous leaf scan.
    pub fn scan_range(&self, lo: &[i64], hi: &[i64]) -> RangeScan<'_> {
        RangeScan::new(self, lo, hi)
    }

    /// Ordered scan of the entire tree.
    pub fn scan_all(&self) -> RangeScan<'_> {
        let lo = vec![i64::MIN; self.arity];
        let hi = vec![i64::MAX; self.arity];
        RangeScan::new(self, &lo, &hi)
    }

    /// Acquires the shared tree latch for a reader; scan cursors hold the
    /// returned guard for their whole lifetime so the structure they walk
    /// cannot be modified underneath them.
    pub(crate) fn reader_latch(&self) -> LatchGuard<'_> {
        self.latches().tree_shared(self.meta_page)
    }

    /// Locates the leaf that must contain the first entry `>= target`,
    /// returning its page id.  Used by the scan cursor, which holds the
    /// [`BTree::reader_latch`] across this call and all leaf loads.
    pub(crate) fn descend_to_leaf(&self, target: &Entry) -> Result<Option<PageId>> {
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            return Ok(None);
        }
        let mut page = meta.root;
        for _ in 2..=meta.height {
            let node = self.read_internal(page)?;
            page = node.child_at(node.route(target));
        }
        Ok(Some(page))
    }

    pub(crate) fn load_leaf(&self, page: PageId) -> Result<LeafNode> {
        self.read_leaf(page)
    }

    fn check_arity(&self, cols: &[i64]) -> Result<()> {
        if cols.len() != self.arity {
            return Err(Error::InvalidArgument(format!(
                "key has {} columns, index expects {}",
                cols.len(),
                self.arity
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Builds a tree from entries that are **already sorted** by
    /// `(key, payload)`, packing leaves to `fill` (0 < fill <= 1).
    ///
    /// The paper bulk-loads the competitor indexes before the query
    /// experiments (Section 6.3 notes their "good clustering properties of
    /// the bulk loaded indexes"); this constructor provides the same for all
    /// access methods in this repository.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        arity: usize,
        entries: impl IntoIterator<Item = (Vec<i64>, u64)>,
        fill: f64,
    ) -> Result<BTree> {
        if !(0.0..=1.0).contains(&fill) || fill <= 0.0 {
            return Err(Error::InvalidArgument(format!("fill factor {fill} not in (0, 1]")));
        }
        let tree = BTree::create(pool, arity)?;
        // The whole build is one big structure modification.  The guard
        // borrows a pool handle rather than `tree` so the finished tree
        // can be moved out while the latch is still held.
        let pool_handle = Arc::clone(&tree.pool);
        let _tree_latch = pool_handle.latches().tree_exclusive(tree.meta_page);
        tree.epoch.fetch_add(1, Ordering::Release);
        let mut meta = tree.read_meta()?;
        let leaf_target = ((tree.leaf_cap as f64 * fill).floor() as usize).clamp(1, tree.leaf_cap);

        // Phase 1: write the leaf level.
        let mut leaves: Vec<(Entry, PageId)> = Vec::new(); // (min entry, page)
        let mut current: Vec<Entry> = Vec::with_capacity(leaf_target);
        let mut prev_entry: Option<Entry> = None;
        let mut prev_leaf: Option<PageId> = None;
        let mut total: u64 = 0;

        let flush_leaf = |tree: &BTree,
                          meta: &mut Meta,
                          entries: Vec<Entry>,
                          prev_leaf: &mut Option<PageId>,
                          leaves: &mut Vec<(Entry, PageId)>|
         -> Result<()> {
            let page = tree.alloc_page(meta)?;
            let node = LeafNode {
                entries,
                next: PageId::INVALID,
                prev: prev_leaf.unwrap_or(PageId::INVALID),
            };
            if let Some(prev) = *prev_leaf {
                let mut p = tree.read_leaf(prev)?;
                p.next = page;
                tree.store_leaf(prev, &p)?;
            } else {
                meta.first_leaf = page;
            }
            leaves.push((node.entries[0], page));
            tree.store_leaf(page, &node)?;
            *prev_leaf = Some(page);
            Ok(())
        };

        for (cols, payload) in entries {
            tree.check_arity(&cols)?;
            let e = Entry::new(&cols, payload);
            if let Some(prev) = prev_entry {
                if e < prev {
                    return Err(Error::InvalidArgument(
                        "bulk_load input is not sorted by (key, payload)".to_string(),
                    ));
                }
            }
            prev_entry = Some(e);
            current.push(e);
            total += 1;
            if current.len() == leaf_target {
                flush_leaf(
                    &tree,
                    &mut meta,
                    std::mem::take(&mut current),
                    &mut prev_leaf,
                    &mut leaves,
                )?;
            }
        }
        if !current.is_empty() {
            flush_leaf(&tree, &mut meta, current, &mut prev_leaf, &mut leaves)?;
        }
        if leaves.is_empty() {
            return Ok(tree); // empty input: tree stays empty
        }

        // Phase 2: build internal levels bottom-up.
        let internal_target =
            ((tree.internal_cap as f64 * fill).floor() as usize).clamp(1, tree.internal_cap);
        let mut level: Vec<(Entry, PageId)> = leaves;
        let mut height: u16 = 1;
        while level.len() > 1 {
            let mut next_level: Vec<(Entry, PageId)> = Vec::new();
            // Each internal node takes up to internal_target + 1 children.
            for group in level.chunks(internal_target + 1) {
                let page = tree.alloc_page(&mut meta)?;
                let node = InternalNode { child0: group[0].1, entries: group[1..].to_vec() };
                tree.store_internal(page, &node)?;
                next_level.push((group[0].0, page));
            }
            level = next_level;
            height += 1;
        }
        meta.root = level[0].1;
        meta.height = height;
        meta.count = total;
        tree.write_meta(&meta)?;
        Ok(tree)
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests and debugging)
    // ------------------------------------------------------------------

    /// Exhaustively validates structural invariants; returns a descriptive
    /// error naming the first violation found.
    ///
    /// Checked: node ordering, separator bounds, uniform leaf depth, leaf
    /// chain consistency (forward and backward), capacity limits, and the
    /// metadata entry count.
    pub fn check_invariants(&self) -> Result<()> {
        let _tree = self.latches().tree_shared(self.meta_page);
        let meta = self.read_meta()?;
        if meta.root.is_invalid() {
            if meta.count != 0 || meta.height != 0 || !meta.first_leaf.is_invalid() {
                return Err(Error::Corrupt("empty tree with non-empty metadata".to_string()));
            }
            return Ok(());
        }
        let mut leaves_in_order = Vec::new();
        let counted =
            self.check_subtree(meta.root, meta.height, None, None, &mut leaves_in_order)?;
        if counted != meta.count {
            return Err(Error::Corrupt(format!(
                "meta count {} but tree holds {counted} entries",
                meta.count
            )));
        }
        // Leaf chain must enumerate exactly the in-order leaves.
        let mut chained = Vec::new();
        let mut page = meta.first_leaf;
        let mut prev = PageId::INVALID;
        while !page.is_invalid() {
            let leaf = self.read_leaf(page)?;
            if leaf.prev != prev {
                return Err(Error::Corrupt(format!("leaf {page} has wrong prev pointer")));
            }
            chained.push(page);
            prev = page;
            page = leaf.next;
        }
        if chained != leaves_in_order {
            return Err(Error::Corrupt(
                "leaf chain disagrees with in-order leaf sequence".to_string(),
            ));
        }
        Ok(())
    }

    fn check_subtree(
        &self,
        page: PageId,
        level: u16,
        lo: Option<Entry>,
        hi: Option<Entry>,
        leaves: &mut Vec<PageId>,
    ) -> Result<u64> {
        let in_bounds = |e: &Entry| lo.is_none_or(|l| *e >= l) && hi.is_none_or(|h| *e < h);
        match self.read_any(page)? {
            Node::Leaf(leaf) => {
                if level != 1 {
                    return Err(Error::Corrupt(format!("leaf {page} at level {level}")));
                }
                if leaf.entries.len() > self.leaf_cap {
                    return Err(Error::Corrupt(format!("leaf {page} over capacity")));
                }
                if !leaf.entries.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("leaf {page} not strictly sorted")));
                }
                if !leaf.entries.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!("leaf {page} violates separator bounds")));
                }
                leaves.push(page);
                Ok(leaf.entries.len() as u64)
            }
            Node::Internal(node) => {
                if level < 2 {
                    return Err(Error::Corrupt(format!("internal node {page} at leaf level")));
                }
                if node.entries.len() > self.internal_cap {
                    return Err(Error::Corrupt(format!("internal {page} over capacity")));
                }
                let seps: Vec<Entry> = node.entries.iter().map(|(s, _)| *s).collect();
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::Corrupt(format!("internal {page} separators unsorted")));
                }
                if !seps.iter().all(in_bounds) {
                    return Err(Error::Corrupt(format!(
                        "internal {page} separator violates bounds"
                    )));
                }
                let mut total = 0;
                let mut child_lo = lo;
                for i in 0..=node.entries.len() {
                    let child = node.child_at(i);
                    let child_hi =
                        if i < node.entries.len() { Some(node.entries[i].0) } else { hi };
                    total += self.check_subtree(child, level - 1, child_lo, child_hi, leaves)?;
                    if i < node.entries.len() {
                        child_lo = Some(node.entries[i].0);
                    }
                }
                Ok(total)
            }
        }
    }
}
