//! Bottom-up bulk construction of B-link trees from sorted runs.
//!
//! # Builder vs. insert: two ways to grow a tree, one set of invariants
//!
//! The *insert* path ([`BTree::insert`]) grows a tree top-down: descend,
//! latch one leaf, split upward when full.  It maintains the B-link
//! invariants (`high.is_some() == right link valid`, every entry `<`
//! its node's high key, parents route by first-entry separators) at
//! *every* intermediate state, because concurrent readers may observe
//! any of them — that is what the two-phase split protocol buys.
//!
//! The *builder* grows a tree bottom-up in one streaming pass: pack
//! leaves left-to-right at the target fill, and whenever a node of any
//! level is complete, emit its `(first entry, page)` pair to the level
//! above, which packs its own nodes the same way.  The same invariants
//! hold, but only have to hold at the *end*, because nothing can
//! observe the build in flight:
//!
//! * **No latching.**  The pages being packed are freshly allocated and
//!   unreachable — no root points at them until the final metadata
//!   install — so no reader or writer can traverse into the
//!   construction.  On a tree created by the builder's own entry points
//!   the whole build is latch-free; [`BTree::bulk_build_into`] installs
//!   the finished `(root, height, count)` under the meta latch only to
//!   turn a concurrent-insert race into a clean error instead of a lost
//!   tree.
//! * **One sequential write pass.**  Every node page is stored exactly
//!   once, the moment it is known complete (its successor's first entry
//!   is in hand, which becomes the high key).  Loading `n` entries
//!   costs `O(pages)` page writes and `O(1)` page reads — no
//!   per-entry root-to-leaf descent.  On a durable pool each packed
//!   page therefore logs exactly one WAL `FirstMod` record.
//! * **O(height) memory.**  The builder holds one pending (partially
//!   packed) node per level; levels above the leaves are discovered on
//!   demand.  A million-entry load carries three pending nodes, not a
//!   million entries.
//!
//! Packing at fill 1.0 produces the minimum possible page count: every
//! node except the rightmost of its level holds exactly its capacity.
//! (Inserting the same entries in key order instead leaves every leaf
//! half full — the classic ascending-split pattern — at roughly twice
//! the pages.)  Lower fills trade density for headroom: a tree that
//! will absorb random inserts right after loading wants slack in every
//! leaf, one that serves a read-mostly workload wants fill 1.0.

use crate::key::Entry;
use crate::layout::{InternalNode, LeafNode};
use crate::tree::{BTree, Meta};
use ri_pagestore::{BufferPool, Error, PageId, Result};
use std::sync::Arc;

/// The leaf currently being packed: its pre-allocated page and the
/// entries accumulated so far (never more than the leaf target).
struct LeafState {
    page: PageId,
    entries: Vec<Entry>,
}

/// An internal node currently being packed at some level: its page, the
/// first entry of its leftmost descendant (`min`, the separator this
/// node will be registered under in *its* parent), its leftmost child,
/// and the separator entries accumulated so far.
struct InnerState {
    page: PageId,
    min: Entry,
    child0: PageId,
    entries: Vec<(Entry, PageId)>,
}

/// What a completed build hands back for the metadata install.
struct Built {
    root: PageId,
    height: u16,
    first_leaf: PageId,
    count: u64,
    pages: u64,
}

/// The streaming bottom-up builder.  One pending node per level; pages
/// are written exactly once, left to right, bottom levels interleaved
/// with the upper levels as nodes complete.
struct BulkBuilder<'t> {
    tree: &'t BTree,
    leaf_target: usize,
    internal_target: usize,
    leaf: Option<LeafState>,
    /// Pending node per internal level; `inner[0]` is the leaves'
    /// parent level (tree level 2).  Levels appear when their first
    /// node is emitted from below.
    inner: Vec<Option<InnerState>>,
    first_leaf: PageId,
    count: u64,
    pages: u64,
    prev: Option<Entry>,
}

impl<'t> BulkBuilder<'t> {
    fn new(tree: &'t BTree, fill: f64) -> BulkBuilder<'t> {
        let leaf_cap = tree.leaf_cap;
        let internal_cap = tree.internal_cap;
        BulkBuilder {
            tree,
            leaf_target: ((leaf_cap as f64 * fill).floor() as usize).clamp(1, leaf_cap),
            internal_target: ((internal_cap as f64 * fill).floor() as usize).clamp(1, internal_cap),
            leaf: None,
            inner: Vec::new(),
            first_leaf: PageId::INVALID,
            count: 0,
            pages: 0,
            prev: None,
        }
    }

    /// Allocates a page for the node being started.  Plain pool
    /// allocation, no meta latch: the page is unreachable until the
    /// final install publishes the root, and the page total is charged
    /// to the metadata in that same install.
    fn alloc(&mut self) -> Result<PageId> {
        let page = self.tree.pool().allocate_page()?;
        self.pages += 1;
        Ok(page)
    }

    fn push(&mut self, e: Entry) -> Result<()> {
        if let Some(prev) = self.prev {
            if e < prev {
                return Err(Error::InvalidArgument(
                    "bulk_load input is not sorted by (key, payload)".to_string(),
                ));
            }
        }
        self.prev = Some(e);
        self.count += 1;
        match &mut self.leaf {
            None => {
                let page = self.alloc()?;
                self.first_leaf = page;
                self.leaf = Some(LeafState { page, entries: vec![e] });
            }
            Some(state) if state.entries.len() == self.leaf_target => {
                // The pending leaf is complete: its successor starts at
                // `e`, which is exactly its high key.  Store it (its
                // one and only write) and register it with the parent
                // level.
                let succ = self.alloc()?;
                let state = self.leaf.take().expect("checked above");
                let node = LeafNode { entries: state.entries, next: succ, high: Some(e) };
                let min = node.entries[0];
                self.tree.store_leaf(state.page, &node)?;
                self.leaf = Some(LeafState { page: succ, entries: vec![e] });
                self.emit(0, min, state.page)?;
            }
            Some(state) => state.entries.push(e),
        }
        Ok(())
    }

    /// Registers a completed node `(min, child)` with internal level
    /// `li` (0 = the leaves' parent), cascading upward when that
    /// level's pending node is itself complete.
    fn emit(&mut self, mut li: usize, mut min: Entry, mut child: PageId) -> Result<()> {
        loop {
            if self.inner.len() == li {
                self.inner.push(None);
            }
            match self.inner[li].take() {
                None => {
                    let page = self.alloc()?;
                    self.inner[li] =
                        Some(InnerState { page, min, child0: child, entries: Vec::new() });
                    return Ok(());
                }
                Some(mut state) if state.entries.len() == self.internal_target => {
                    // Complete: `min` (the first entry under the newly
                    // arrived child) bounds this node from above.
                    let succ = self.alloc()?;
                    let node = InternalNode {
                        child0: state.child0,
                        entries: std::mem::take(&mut state.entries),
                        next: succ,
                        high: Some(min),
                    };
                    self.tree.store_internal(state.page, &node)?;
                    self.inner[li] =
                        Some(InnerState { page: succ, min, child0: child, entries: Vec::new() });
                    // The flushed node itself now registers one level up.
                    li += 1;
                    min = state.min;
                    child = state.page;
                }
                Some(mut state) => {
                    state.entries.push((min, child));
                    self.inner[li] = Some(state);
                    return Ok(());
                }
            }
        }
    }

    /// Flushes every level's rightmost pending node (no right link, no
    /// high key — they bound `+∞`) bottom-up.  The single node of the
    /// topmost level is the root.  Returns `None` for an empty input.
    fn finish(mut self) -> Result<Option<Built>> {
        let Some(state) = self.leaf.take() else {
            return Ok(None);
        };
        let node = LeafNode { entries: state.entries, next: PageId::INVALID, high: None };
        let min = node.entries[0];
        self.tree.store_leaf(state.page, &node)?;
        if self.inner.is_empty() {
            // Single-leaf tree: the leaf is the root.
            return Ok(Some(Built {
                root: state.page,
                height: 1,
                first_leaf: self.first_leaf,
                count: self.count,
                pages: self.pages,
            }));
        }
        self.emit(0, min, state.page)?;
        let mut li = 0;
        loop {
            let state = self.inner[li].take().expect("every created level has a pending node");
            let node = InternalNode {
                child0: state.child0,
                entries: state.entries,
                next: PageId::INVALID,
                high: None,
            };
            self.tree.store_internal(state.page, &node)?;
            if li + 1 == self.inner.len() {
                // A level with no level above it holds exactly one
                // node (a second node would have created the parent
                // when the first was emitted): the root.
                return Ok(Some(Built {
                    root: state.page,
                    height: li as u16 + 2,
                    first_leaf: self.first_leaf,
                    count: self.count,
                    pages: self.pages,
                }));
            }
            self.emit(li + 1, state.min, state.page)?;
            li += 1;
        }
    }
}

impl BTree {
    /// Bulk-builds this **empty** tree bottom-up from entries already
    /// sorted by `(key, payload)`, packing every node to `fill`
    /// (0 < fill ≤ 1; the rightmost node of each level holds the
    /// remainder).
    ///
    /// One streaming pass: each page is written exactly once and the
    /// builder keeps one pending node per level, so loading `n` entries
    /// costs `O(pages)` sequential page writes and `O(height)` memory —
    /// no per-entry descents (see the module docs).  On a durable pool
    /// every packed page logs one WAL `FirstMod` record through the
    /// ordinary write path; commit/checkpoint semantics are unchanged.
    ///
    /// Errors with `InvalidArgument` if the tree is not empty, if the
    /// input is unsorted, if an entry's arity differs from the tree's,
    /// or if `fill` is out of range.  Concurrent DML *during* the build
    /// is not supported: the finished structure is installed under the
    /// meta latch, and losing an install race to a concurrent insert is
    /// reported as the same not-empty error rather than corrupting
    /// either write.
    ///
    /// ```
    /// use ri_btree::{BTree, Entry};
    /// use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
    /// use std::sync::Arc;
    ///
    /// let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    /// let tree = BTree::create(pool, 1).unwrap();
    /// tree.bulk_build_into((0..5000i64).map(|i| Entry::new(&[i], i as u64)), 1.0).unwrap();
    /// assert_eq!(tree.entry_count().unwrap(), 5000);
    /// assert!(tree.contains(&[1234], 1234).unwrap());
    /// tree.insert(&[5000], 5000).unwrap(); // ordinary DML continues to work
    /// ```
    pub fn bulk_build_into(
        &self,
        entries: impl IntoIterator<Item = Entry>,
        fill: f64,
    ) -> Result<u64> {
        self.bulk_build_checked(entries.into_iter().map(Ok), fill)
    }

    /// [`BTree::bulk_build_into`] over fallibly produced entries — the
    /// internal form shared with [`BTree::bulk_load`], whose column
    /// vectors are validated lazily inside the iterator.
    pub(crate) fn bulk_build_checked(
        &self,
        entries: impl Iterator<Item = Result<Entry>>,
        fill: f64,
    ) -> Result<u64> {
        if !(fill > 0.0 && fill <= 1.0) {
            return Err(Error::InvalidArgument(format!("fill factor {fill} not in (0, 1]")));
        }
        let empty = |m: &Meta| m.root.is_invalid() && m.count == 0 && m.first_leaf.is_invalid();
        if !empty(&self.read_meta()?) {
            return Err(Error::InvalidArgument(
                "bulk build requires an empty tree (it replaces the structure wholesale)"
                    .to_string(),
            ));
        }
        let mut builder = BulkBuilder::new(self, fill);
        for e in entries {
            let e = e?;
            self.check_arity(e.key.as_slice())?;
            builder.push(e)?;
        }
        let Some(built) = builder.finish()? else {
            return Ok(0); // empty input: the tree stays empty
        };
        // Install the finished structure.  On a fresh tree the latch is
        // uncontended by construction; it exists to detect (not to
        // support) a racing writer.
        self.pool().prefetch(self.meta_page())?;
        let _meta_latch = self.latches().page_exclusive(self.meta_page());
        let mut meta = self.read_meta()?;
        if !empty(&meta) {
            return Err(Error::InvalidArgument(
                "tree gained entries during the bulk build (concurrent DML is unsupported)"
                    .to_string(),
            ));
        }
        meta.root = built.root;
        meta.height = built.height;
        meta.count = built.count;
        meta.first_leaf = built.first_leaf;
        meta.pages += built.pages;
        self.write_meta(&meta)?;
        Ok(built.count)
    }

    /// Creates a tree and bulk-builds it from sorted entries in one
    /// call — the [`Entry`]-typed counterpart of [`BTree::bulk_load`]
    /// and the entry point the relational layer's empty-table bulk
    /// route uses.
    ///
    /// ```
    /// use ri_btree::{BTree, Entry};
    /// use ri_pagestore::{BufferPool, MemDisk, DEFAULT_PAGE_SIZE};
    /// use std::sync::Arc;
    ///
    /// let pool = Arc::new(BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE)));
    /// let entries = (0..10_000i64).map(|i| Entry::new(&[i / 100, i % 100], i as u64));
    /// let tree = BTree::bulk_load_entries(pool, 2, entries, 1.0).unwrap();
    /// assert_eq!(tree.stats().unwrap().entries, 10_000);
    /// ```
    pub fn bulk_load_entries(
        pool: Arc<BufferPool>,
        arity: usize,
        entries: impl IntoIterator<Item = Entry>,
        fill: f64,
    ) -> Result<BTree> {
        let tree = BTree::create(pool, arity)?;
        tree.bulk_build_into(entries, fill)?;
        Ok(tree)
    }
}

/// Page count a fill-1.0 bulk build of `n` entries produces, level by
/// level: `ceil(n / leaf_cap)` leaves, then each internal level packs
/// `internal_cap + 1` children per node until one remains.  Exact for
/// the builder's grouping; the scale-up figure uses it to price builds
/// it never runs, and tests use it to prove full fill.
pub fn predicted_pages(n: u64, leaf_cap: usize, internal_cap: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut nodes = n.div_ceil(leaf_cap as u64);
    let mut total = nodes;
    while nodes > 1 {
        nodes = nodes.div_ceil(internal_cap as u64 + 1);
        total += nodes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{leaf_capacity, Node};
    use ri_pagestore::{BufferPoolConfig, MemDisk};

    fn small_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(MemDisk::new(512), BufferPoolConfig::with_capacity(64)))
    }

    /// Minimum entry stored anywhere under `page` (leftmost descent).
    fn min_under(tree: &BTree, mut page: PageId) -> Entry {
        loop {
            match tree.read_any(page).unwrap() {
                Node::Leaf(l) => return l.entries[0],
                Node::Internal(n) => page = n.child0,
            }
        }
    }

    /// Walks one level's right-link chain, asserting every node except
    /// the rightmost is at exactly `target` fill with a high key equal
    /// to its successor's minimum entry.
    fn assert_level_packed(tree: &BTree, first: PageId, target: usize) -> Vec<PageId> {
        let mut pages = Vec::new();
        let mut page = first;
        loop {
            pages.push(page);
            let (len, next, high) = match tree.read_any(page).unwrap() {
                Node::Leaf(l) => (l.entries.len(), l.next, l.high),
                Node::Internal(n) => (n.entries.len(), n.next, n.high),
            };
            let next_min = (!next.is_invalid()).then(|| min_under(tree, next));
            match next_min {
                Some(min) => {
                    assert_eq!(len, target, "non-rightmost node {page} not at full fill");
                    assert_eq!(high, Some(min), "node {page} high key != successor's minimum");
                    page = next;
                }
                None => {
                    assert!(high.is_none(), "rightmost node {page} must bound +inf");
                    assert!(len >= 1);
                    return pages;
                }
            }
        }
    }

    #[test]
    fn every_non_rightmost_node_is_full_with_the_right_high_key() {
        let pool = small_pool();
        let tree = BTree::create(Arc::clone(&pool), 2).unwrap();
        let leaf_cap = leaf_capacity(512, 2);
        let n = (leaf_cap as i64) * 47 + 3; // several levels, ragged tail
        tree.bulk_build_into((0..n).map(|i| Entry::new(&[i / 7, i % 7], i as u64)), 1.0).unwrap();
        tree.check_invariants().unwrap();

        let meta = tree.read_meta().unwrap();
        assert_eq!(meta.count, n as u64);
        // Leaf level at leaf capacity…
        let leaves = assert_level_packed(&tree, meta.first_leaf, tree.leaf_cap);
        assert_eq!(leaves.len() as u64, (n as u64).div_ceil(tree.leaf_cap as u64));
        // …and every internal level at internal capacity.  Walk down
        // the leftmost spine to find each level's first node.
        let mut page = meta.root;
        let mut lefts = Vec::new();
        for _ in 2..=meta.height {
            lefts.push(page);
            page = match tree.read_any(page).unwrap() {
                Node::Internal(node) => node.child0,
                Node::Leaf(_) => panic!("spine ended early"),
            };
        }
        assert_eq!(page, meta.first_leaf, "spine must land on the first leaf");
        for first in lefts {
            assert_level_packed(&tree, first, tree.internal_cap);
        }
        // Full fill ⇒ the minimum possible page count.
        assert_eq!(meta.pages, predicted_pages(n as u64, tree.leaf_cap, tree.internal_cap));
    }

    #[test]
    fn builder_matches_predicted_pages_across_sizes() {
        for n in [0u64, 1, 2, 20, 21, 22, 419, 420, 421, 10_000] {
            let pool = small_pool();
            let tree = BTree::create(Arc::clone(&pool), 1).unwrap();
            tree.bulk_build_into((0..n as i64).map(|i| Entry::new(&[i], i as u64)), 1.0).unwrap();
            let stats = tree.stats().unwrap();
            assert_eq!(stats.entries, n);
            assert_eq!(
                stats.pages,
                predicted_pages(n, tree.leaf_cap, tree.internal_cap),
                "n = {n}"
            );
            tree.check_invariants().unwrap();
        }
    }

    #[test]
    fn bulk_build_rejects_a_non_empty_tree() {
        let pool = small_pool();
        let tree = BTree::create(pool, 1).unwrap();
        tree.insert(&[1], 1).unwrap();
        let err = tree.bulk_build_into([Entry::new(&[2], 2)], 1.0).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        // The resident entry is untouched.
        assert!(tree.contains(&[1], 1).unwrap());
        assert_eq!(tree.entry_count().unwrap(), 1);
    }

    #[test]
    fn dml_after_a_bulk_build_behaves_normally() {
        let pool = small_pool();
        let tree = BTree::create(pool, 1).unwrap();
        tree.bulk_build_into((0..500i64).map(|i| Entry::new(&[i * 2], i as u64)), 1.0).unwrap();
        // Inserts land between packed entries (forcing splits of full
        // leaves), deletes remove packed entries.
        for i in 0..200i64 {
            tree.insert(&[i * 2 + 1], 10_000 + i as u64).unwrap();
        }
        for i in 0..100i64 {
            assert!(tree.delete(&[i * 2], i as u64).unwrap());
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.entry_count().unwrap(), 500 + 200 - 100);
        assert!(tree.contains(&[3], 10_001).unwrap());
        assert!(!tree.contains(&[0], 0).unwrap());
    }

    #[test]
    fn empty_input_leaves_the_tree_empty() {
        let pool = small_pool();
        let tree = BTree::create(pool, 1).unwrap();
        assert_eq!(tree.bulk_build_into(std::iter::empty(), 1.0).unwrap(), 0);
        assert_eq!(tree.entry_count().unwrap(), 0);
        tree.check_invariants().unwrap();
        // Still usable.
        tree.insert(&[1], 1).unwrap();
        assert!(tree.contains(&[1], 1).unwrap());
    }
}
