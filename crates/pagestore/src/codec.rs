//! Little-endian fixed-width encode/decode helpers for on-page layouts.
//!
//! Every on-page structure in this repository (B+-tree nodes, heap pages,
//! catalog pages) is built from fixed-width integers written at computed
//! offsets.  Centralizing the byte fiddling here keeps the node layout code
//! readable and gives one place to test the encoding.

/// Reads a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().expect("u16 slice"))
}

/// Writes a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("u32 slice"))
}

/// Writes a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("u64 slice"))
}

/// Writes a `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `i64` at `off`.
#[inline]
pub fn get_i64(buf: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(buf[off..off + 8].try_into().expect("i64 slice"))
}

/// Writes an `i64` at `off`.
#[inline]
pub fn put_i64(buf: &mut [u8], off: usize, v: i64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = vec![0u8; 64];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEADBEEF);
        put_u64(&mut buf, 6, u64::MAX - 3);
        put_i64(&mut buf, 14, i64::MIN + 11);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEADBEEF);
        assert_eq!(get_u64(&buf, 6), u64::MAX - 3);
        assert_eq!(get_i64(&buf, 14), i64::MIN + 11);
    }

    #[test]
    fn negative_i64_preserved() {
        let mut buf = vec![0u8; 8];
        for v in [-1i64, i64::MIN, i64::MAX, 0, -(1 << 40)] {
            put_i64(&mut buf, 0, v);
            assert_eq!(get_i64(&buf, 0), v);
        }
    }
}
