//! Buffer pool: the "database block cache" of the paper's setup.
//!
//! The paper runs Oracle with its default cache of **200 blocks of 2 KB**
//! (Section 6.1); [`BufferPoolConfig::default`] mirrors that.  Replacement is
//! LRU, writes are cached (write-back on eviction or explicit flush), and
//! every page access is counted in [`IoStats`], which is how the experiments
//! obtain the "physical disk block accesses" series of Figures 13 and 14.
//!
//! # Sharding
//!
//! The pool is **lock-striped**: pages hash to one of `shards` independent
//! shards (a power of two, default **1**), each owning its frames, LRU
//! clock, hash table, and [`IoStats`] counters.  Concurrent accesses to
//! pages in different shards never contend; aggregate counters are read
//! losslessly by summing the per-shard counters (see
//! [`PoolStats`]).
//!
//! With the default `shards = 1` the pool is a *single* LRU over a single
//! lock — bit-for-bit the behavior the paper experiments were calibrated
//! against (one global cache of 200 blocks), which keeps every figure
//! binary deterministic.  `tests/pool_determinism.rs` pins this.  Larger
//! shard counts trade exact global LRU for concurrency, the same trade
//! made by any production block cache (PostgreSQL buffer mapping
//! partitions, InnoDB buffer pool instances).
//!
//! # Access model
//!
//! Access is closure-based and *copy-in/copy-out*: [`BufferPool::with_page`]
//! copies the cached page into a scratch buffer under the shard lock, then
//! runs the caller's closure on the copy with the lock released.  This keeps
//! the implementation entirely safe Rust, allows closures to issue nested
//! page accesses (a B+-tree descent reads a parent, then its children, which
//! may live in *any* shard — no lock is held while a closure runs, so no
//! lock ordering issues arise), and costs one 2 KB memcpy per logical
//! access — irrelevant next to the simulated physical I/O the experiments
//! measure.  Callers must not access the *same* page from two nested
//! closures when either access is mutable; the B+-tree and heap layers are
//! structured to never do so.
//!
//! # Miss promotion: device reads run outside the shard lock
//!
//! A cache miss is a **three-phase protocol** instead of a fetch under the
//! shard lock:
//!
//! 1. **Reserve** (under the lock): pick a frame — grow, or evict the LRU
//!    among *non-reserved* frames — mark it reserved, move its buffer out,
//!    and register the page in the shard's in-flight miss table.
//! 2. **Fetch** (no lock held): write the dirty victim back and read the
//!    missing page from the device.  Hits on other pages of the same shard
//!    proceed concurrently; a hot shard no longer stalls behind one cold
//!    fetch.
//! 3. **Publish** (under the lock again): install the buffer, clear the
//!    reservation, remove the in-flight entry, and wake waiters.
//!
//! Concurrent faults on the same page **coalesce single-flight**: the first
//! becomes the fetcher, later ones block on the in-flight entry and are
//! served from the published frame — one device read total, counted in
//! [`IoStats::miss_snapshot`] as coalesced faults.  Reserved frames are
//! never chosen as eviction victims (their buffer is out with the fetcher);
//! a fault that finds every frame reserved waits for a publish.  A dirty
//! eviction victim is tracked in a per-shard `evicting` set until its
//! promoted write-back lands: a fault on such a page waits rather than
//! resurrect the stale disk image (the lost-update race that the
//! fetch-under-the-lock implementation excluded by construction).
//! [`BufferPool::flush_all`] and [`BufferPool::clear_cache`] drain each
//! shard's in-flight reads *and* write-backs before touching its frames.
//!
//! Single-threaded the protocol is observationally the seed pool verbatim:
//! one fault performs the same write-back and read, in the same order,
//! against the same LRU state — `tests/pool_determinism.rs` pins this
//! byte-for-byte.
//!
//! # Durability (optional WAL)
//!
//! A pool built with [`BufferPool::new_durable`] carries a [`Wal`] on a
//! second block device.  Every [`BufferPool::with_page_mut`] install logs
//! the byte-range delta of the update (full pre-image on the first
//! modification since a checkpoint) and stamps the frame with the
//! record's end LSN; every device write-back — eviction, flush, clear —
//! first forces the log durable up to that stamp.  This is the classic
//! WAL-before-data invariant: no page image whose update is not durable
//! in the log can reach the data device, so [`BufferPool::recover`]
//! (invoked by `Database::open`) can always rebuild the committed state.
//! Pools built without a WAL are bit-for-bit the seed pool — the
//! golden-pinned figures never pay for durability they don't use.
//!
//! A durable pool built with [`BufferPool::new_durable_with`] and
//! [`FlushPolicy::Background`] additionally owns the WAL's **background
//! flusher thread**: spawned at construction, it drains the append buffer
//! to the log device whenever the buffered backlog crosses the watermark,
//! so commit-time [`Wal::make_durable`] calls usually find their bytes
//! already written and only pay the fsync.  The thread is joined by
//! [`BufferPool::stop_flusher`] (called by `Database::close` and by the
//! pool's `Drop`); it never syncs the device, so the WAL's sync-accounting
//! identities and the WAL-before-data barrier are untouched.

use crate::disk::DiskManager;
use crate::error::{Error, Result};
use crate::latch::LatchManager;
use crate::page::PageId;
use crate::stats::{IoStats, PoolStats};
use crate::wal::{FlushPolicy, RecoveryReport, Wal, WalConfig, WalRecord};
use parking_lot::{Mutex, MutexGuard};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Condvar, PoisonError};

/// Sizing knobs for [`BufferPool`].
#[derive(Clone, Copy, Debug)]
pub struct BufferPoolConfig {
    /// Number of page frames the cache holds (summed across all shards).
    pub capacity: usize,
    /// Number of lock-striped shards; must be a power of two and at most
    /// `capacity`.  The default of 1 reproduces the paper's single global
    /// cache exactly.
    pub shards: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // The paper: "The database block cache was set to the default value
        // of 200 database blocks with a block size of 2 KB."
        BufferPoolConfig { capacity: 200, shards: 1 }
    }
}

impl BufferPoolConfig {
    /// A single-shard pool with `capacity` frames — the paper's
    /// deterministic global-LRU cache at a custom size.
    pub fn with_capacity(capacity: usize) -> Self {
        BufferPoolConfig { capacity, shards: 1 }
    }

    /// A lock-striped pool: `capacity` total frames over `shards` shards.
    pub fn sharded(capacity: usize, shards: usize) -> Self {
        BufferPoolConfig { capacity, shards }
    }
}

/// One cached page frame.
struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    /// Logical timestamp of the most recent access, for LRU victim selection.
    last_used: u64,
    /// Reserved by an in-flight miss: the buffer is out with the fetching
    /// thread, so the frame is excluded from victim selection and must not
    /// be touched until the fetch publishes or fails.
    reserved: bool,
    /// End LSN of this page's latest WAL record; the log must be durable
    /// up to here before the frame may be written back.  0 = no pending
    /// record (clean page, or the pool has no WAL).
    page_lsn: u64,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// Maps a cached page id to its frame index.
    table: HashMap<PageId, usize>,
    /// Pages whose device read is currently in flight, mapped to their
    /// reserved frame (the single-flight miss table).
    in_flight: HashMap<PageId, usize>,
    /// Dirty eviction victims whose write-back is currently in flight.
    /// Such a page is out of the table but its *disk image is stale*; a
    /// fault on it must wait for the write-back to land (or fail back
    /// into the cache) or it would resurrect the pre-update image — the
    /// lost-update race the shard lock used to prevent by construction.
    evicting: HashSet<PageId>,
    /// Janitors (flush/clear) currently draining this shard.  While
    /// non-zero, *new* reservations are turned away so the drain cannot
    /// be starved by sustained miss traffic; hits and already-in-flight
    /// fetches proceed untouched.
    draining: u32,
    clock: u64,
}

/// One lock stripe: its own frame set, LRU clock, and I/O counters.
struct Shard {
    inner: Mutex<PoolInner>,
    /// Signalled on every publish / fetch failure: same-page waiters,
    /// frame-starved faults, and flush/clear drains block here.
    cv: Condvar,
    stats: Arc<IoStats>,
    /// Frames this shard may hold (the pool capacity is split across
    /// shards, remainder to the lowest-numbered ones).
    capacity: usize,
}

thread_local! {
    /// Stack of reusable scratch buffers; a stack (not a single buffer) so
    /// nested `with_page` calls each get their own copy.
    static SCRATCH: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch(len: usize) -> Vec<u8> {
    SCRATCH.with(|s| {
        let mut buf = s.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    })
}

fn return_scratch(buf: Vec<u8>) {
    SCRATCH.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.len() < 16 {
            stack.push(buf);
        }
    })
}

/// Write-back page cache with LRU replacement, lock-striped over `shards`
/// independent shards.
///
/// All structures in this repository (B+-trees, heap tables, catalogs)
/// access pages exclusively through this type, so the physical I/O of the
/// RI-tree and of every competing access method is measured under identical
/// caching rules — the methodology of the paper's Section 6.
pub struct BufferPool {
    disk: Box<dyn DiskManager>,
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard routing is `page & mask` (power of two).
    mask: u64,
    stats: PoolStats,
    latches: LatchManager,
    page_size: usize,
    capacity: usize,
    /// Write-ahead log on its own device; `None` for volatile pools.
    /// Shared with the background flusher thread when one is running.
    wal: Option<Arc<Wal>>,
    /// Join handle of the background flusher thread, when
    /// [`FlushPolicy::Background`] is active.  Taken (joined) exactly once
    /// by [`BufferPool::stop_flusher`].
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl BufferPool {
    /// Creates a pool over `disk` with the given configuration.
    ///
    /// # Panics
    ///
    /// If `capacity == 0`, `shards` is not a power of two, or
    /// `shards > capacity` (every shard needs at least one frame).
    pub fn new<D: DiskManager + 'static>(disk: D, config: BufferPoolConfig) -> Self {
        assert!(config.capacity >= 1, "buffer pool needs at least one frame");
        assert!(
            config.shards >= 1 && config.shards.is_power_of_two(),
            "shard count must be a power of two, got {}",
            config.shards
        );
        assert!(
            config.shards <= config.capacity,
            "{} shards need at least {} frames, pool has {}",
            config.shards,
            config.shards,
            config.capacity
        );
        let page_size = disk.page_size();
        let base = config.capacity / config.shards;
        let rem = config.capacity % config.shards;
        let shards: Box<[Shard]> = (0..config.shards)
            .map(|i| {
                let capacity = base + usize::from(i < rem);
                Shard {
                    inner: Mutex::new(PoolInner {
                        frames: Vec::new(),
                        table: HashMap::with_capacity(capacity),
                        in_flight: HashMap::new(),
                        evicting: HashSet::new(),
                        draining: 0,
                        clock: 0,
                    }),
                    cv: Condvar::new(),
                    stats: IoStats::new_shared(),
                    capacity,
                }
            })
            .collect();
        let stats = PoolStats::new(shards.iter().map(|s| Arc::clone(&s.stats)).collect());
        BufferPool {
            disk: Box::new(disk),
            mask: shards.len() as u64 - 1,
            shards,
            stats,
            latches: LatchManager::default(),
            page_size,
            capacity: config.capacity,
            wal: None,
            flusher: Mutex::new(None),
        }
    }

    /// Creates a pool with the paper's default cache (200 frames, 1 shard).
    pub fn with_defaults<D: DiskManager + 'static>(disk: D) -> Self {
        Self::new(disk, BufferPoolConfig::default())
    }

    /// Creates a **durable** pool: pages on `disk`, write-ahead log on
    /// `wal_disk` (a separate device, so the data file layout is exactly
    /// the volatile pool's).  The log is attached — its anchor validated
    /// and its record stream scanned — but redo is *not* applied yet;
    /// call [`BufferPool::recover`] (done by `Database::open`) before
    /// reading pages from a device that may carry an unrecovered crash.
    pub fn new_durable<D, W>(disk: D, config: BufferPoolConfig, wal_disk: W) -> Result<Self>
    where
        D: DiskManager + 'static,
        W: DiskManager + 'static,
    {
        Self::new_durable_with(disk, config, wal_disk, WalConfig::default())
    }

    /// [`BufferPool::new_durable`] with an explicit [`WalConfig`]: segment
    /// size and [`FlushPolicy`].  With [`FlushPolicy::Background`] the pool
    /// spawns — and owns — the WAL's background flusher thread; call
    /// [`BufferPool::stop_flusher`] (or let `Drop` do it) to join it.  The
    /// default config is behaviorally identical to [`BufferPool::new_durable`].
    pub fn new_durable_with<D, W>(
        disk: D,
        config: BufferPoolConfig,
        wal_disk: W,
        wal_config: WalConfig,
    ) -> Result<Self>
    where
        D: DiskManager + 'static,
        W: DiskManager + 'static,
    {
        if wal_disk.page_size() != disk.page_size() {
            return Err(Error::InvalidArgument(format!(
                "WAL device page size {} != data device page size {}",
                wal_disk.page_size(),
                disk.page_size()
            )));
        }
        let wal = Arc::new(Wal::attach_with(Box::new(wal_disk), wal_config)?);
        let mut pool = Self::new(disk, config);
        if matches!(wal_config.flush_policy, FlushPolicy::Background { .. }) {
            let runner = Arc::clone(&wal);
            let handle = std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || runner.flusher_run())
                .map_err(Error::Io)?;
            *pool.flusher.lock() = Some(handle);
        }
        pool.wal = Some(wal);
        Ok(pool)
    }

    /// The pool's write-ahead log, if built with [`BufferPool::new_durable`].
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_deref()
    }

    /// Stops and joins the background flusher thread, if one is running.
    ///
    /// Idempotent and cheap when there is nothing to stop.  Buffered log
    /// bytes are *not* lost — they simply go back to being flushed inline
    /// by the next commit or checkpoint, exactly as under
    /// [`FlushPolicy::Off`].
    pub fn stop_flusher(&self) {
        let handle = self.flusher.lock().take();
        if let Some(handle) = handle {
            if let Some(wal) = &self.wal {
                wal.flusher_stop();
            }
            let _ = handle.join();
        }
    }

    /// Replays the log tail found at attach time against the data device:
    /// committed records are redone (FirstMod pre-image + deltas), pages
    /// first modified after the last commit are rolled back to their
    /// pre-images, every touched page is written out and synced, and the
    /// log is checkpointed.  Idempotent — later calls (and calls on a
    /// pool with no WAL or a clean log) return `Ok(None)`.
    ///
    /// Must run before the pool caches any page of a crashed device; the
    /// pre-recovery cache is discarded here for safety.
    pub fn recover(&self) -> Result<Option<RecoveryReport>> {
        let Some(wal) = &self.wal else {
            return Ok(None);
        };
        let Some(log) = wal.take_recovered() else {
            return Ok(None);
        };
        self.discard_cache();
        let mut images: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut commits = 0u64;
        let mut last_seq = 0u64;
        for rec in &log.records[..log.committed] {
            match rec {
                WalRecord::FirstMod { page, before, delta_off, delta, .. } => {
                    let mut img = before.clone();
                    img[*delta_off..*delta_off + delta.len()].copy_from_slice(delta);
                    images.insert(page.raw(), img);
                }
                WalRecord::Delta { page, delta_off, delta, .. } => {
                    // A Delta is always preceded by its page's FirstMod at
                    // or above the scan start (the truncation-horizon
                    // fixpoint guarantees no page run straddles it), so a
                    // missing image means the log is inconsistent.
                    let img = images.get_mut(&page.raw()).ok_or_else(|| {
                        Error::Corrupt(format!(
                            "WAL delta for page {} without a prior first-mod",
                            page.raw()
                        ))
                    })?;
                    img[*delta_off..*delta_off + delta.len()].copy_from_slice(delta);
                }
                WalRecord::Commit { seq, .. } => {
                    // Sequence numbers are strictly increasing within the
                    // retained log; a regression means records from
                    // different histories got mixed.
                    if *seq <= last_seq {
                        return Err(Error::Corrupt(format!(
                            "WAL commit sequence regressed: {seq} after {last_seq}"
                        )));
                    }
                    last_seq = *seq;
                    commits += 1;
                }
                // A fuzzy checkpoint marker carries no page state.
                WalRecord::Checkpoint { .. } => {}
            }
        }
        let pages_redone = images.len();
        // Roll back the uncommitted tail: a FirstMod there proves the page
        // was untouched by the committed prefix *of this generation*; its
        // pre-image is exactly the committed state.  (If the page also has
        // a committed image — possible when it was re-FirstMod'ed after an
        // interleaved checkpoint window — the committed image wins.)
        let mut tail_txns = std::collections::BTreeSet::new();
        for rec in &log.records[log.committed..] {
            match rec {
                WalRecord::FirstMod { page, txn, before, .. } => {
                    images.entry(page.raw()).or_insert_with(|| before.clone());
                    tail_txns.insert(*txn);
                }
                WalRecord::Delta { txn, .. } => {
                    tail_txns.insert(*txn);
                }
                WalRecord::Commit { .. } | WalRecord::Checkpoint { .. } => {}
            }
        }
        let pages_rolled_back = images.len() - pages_redone;
        for (&page, img) in &images {
            while self.disk.num_pages() <= page {
                self.disk.allocate_page()?;
            }
            self.disk.write_page(PageId(page), img)?;
        }
        self.disk.sync()?;
        // Recovery is single-threaded with nothing in flight, so this
        // checkpoint always observes the quiescent instant and rewinds.
        wal.checkpoint(wal.end_lsn())?;
        Ok(Some(RecoveryReport {
            records_scanned: log.records.len(),
            committed_records: log.committed,
            tail_records: log.records.len() - log.committed,
            commits,
            pages_redone,
            pages_rolled_back,
            txns_rolled_back: tail_txns.len() as u64,
        }))
    }

    /// Drops every cached frame *without* write-back: pre-recovery cache
    /// contents are stale by definition.  Only called from
    /// [`BufferPool::recover`], before the pool sees concurrent use.
    fn discard_cache(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            debug_assert!(
                inner.in_flight.is_empty() && inner.evicting.is_empty(),
                "recovery must run before concurrent pool use"
            );
            inner.table.clear();
            inner.frames.clear();
        }
    }

    /// The WAL-before-data barrier: forces the log durable up to `lsn`
    /// before a frame with that stamp may be written back.  No-op for
    /// volatile pools and for frames with no pending record.
    fn wal_barrier(&self, lsn: u64) -> Result<()> {
        match &self.wal {
            Some(wal) if lsn > 0 => wal.make_durable(lsn),
            _ => Ok(()),
        }
    }

    /// The page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total number of frames in the cache (across all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock-striped shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index page `id` is routed to.
    pub fn shard_of(&self, id: PageId) -> usize {
        (id.raw() & self.mask) as usize
    }

    /// Aggregating handle over this pool's per-shard I/O counters.
    pub fn stats(&self) -> PoolStats {
        self.stats.clone()
    }

    /// The pool's latch manager: logical per-page latches (valid across
    /// evictions) used by the B-link tree's write path (one node latch at
    /// a time) and the heap's append path.  Latch traffic never touches
    /// pages, so it is invisible to [`BufferPool::stats`].
    pub fn latches(&self) -> &LatchManager {
        &self.latches
    }

    /// Number of pages allocated on the underlying device.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Allocates a fresh zeroed page on the device.
    ///
    /// The new page is *not* faulted into the cache; the first access will
    /// read it (counted as a physical read, as in a real system where a new
    /// block still passes through the cache).
    pub fn allocate_page(&self) -> Result<PageId> {
        self.disk.allocate_page()
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[(id.raw() & self.mask) as usize]
    }

    /// Runs `f` over an immutable snapshot of page `id`.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&[u8]) -> T) -> Result<T> {
        let shard = self.shard(id);
        shard.stats.record_logical_read();
        let mut buf = take_scratch(self.page_size);
        {
            let (inner, idx) = self.acquire_resident(shard, id)?;
            buf.copy_from_slice(&inner.frames[idx].data);
        }
        let result = f(&buf);
        return_scratch(buf);
        Ok(result)
    }

    /// Runs `f` over a mutable copy of page `id`, then installs the modified
    /// copy in the cache and marks the page dirty.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> T) -> Result<T> {
        let shard = self.shard(id);
        shard.stats.record_logical_write();
        let mut buf = take_scratch(self.page_size);
        {
            let (inner, idx) = self.acquire_resident(shard, id)?;
            buf.copy_from_slice(&inner.frames[idx].data);
        }
        let result = f(&mut buf);
        {
            // The page may have been evicted by nested accesses inside `f`;
            // fault it back in before installing the modified copy.
            let (mut inner, idx) = self.acquire_resident(shard, id)?;
            if let Some(wal) = &self.wal {
                // Log the byte-range delta of this install before the new
                // image becomes visible; the frame's stamp is the record's
                // end LSN.  (The WAL append lock nests under the shard
                // lock; it is a leaf and never waits on pool state.)
                let lsn = wal.log_update(id, &inner.frames[idx].data, &buf)?;
                if lsn > 0 {
                    inner.frames[idx].page_lsn = lsn;
                }
            }
            inner.frames[idx].data.copy_from_slice(&buf);
            inner.frames[idx].dirty = true;
        }
        return_scratch(buf);
        Ok(result)
    }

    /// Faults page `id` into the cache without counting a logical access.
    ///
    /// The latching layers call this immediately before acquiring an
    /// exclusive latch so the access that follows *under* the latch is a
    /// cache hit — no latch is ever held across a device read on the hot
    /// write path.  Counter-wise a prefetch is invisible except for the
    /// physical read it may perform, which the following access would
    /// otherwise have performed itself: single-threaded, `prefetch(id)`
    /// immediately followed by an access of `id` leaves all four I/O
    /// counters and every future LRU victim choice exactly as the access
    /// alone would have (the pair touches one page back-to-back, so the
    /// relative recency order of frames is unchanged).
    pub fn prefetch(&self, id: PageId) -> Result<()> {
        let shard = self.shard(id);
        let _ = self.acquire_resident(shard, id)?;
        Ok(())
    }

    /// Writes every dirty cached page back to the device and syncs it.
    ///
    /// Shards are flushed in index order, frames in slot order — the same
    /// deterministic write-back order as the seed pool when `shards = 1`.
    /// In-flight misses are drained first: a reserved frame's buffer is
    /// out with its fetcher, so the flush waits for every fetch to publish
    /// (or fail) before walking the shard's frames.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner = self.drain_in_flight(shard, inner);
            let walked = self.write_back_dirty_frames(shard, &mut inner);
            self.release_drain(shard, &mut inner);
            walked?;
        }
        self.disk.sync()
    }

    /// Flushes dirty pages, then drops everything from the cache.
    ///
    /// Experiments call this between the load phase and the query phase so
    /// queries start from a cold cache, as after the paper's bulk loads.
    /// Like [`BufferPool::flush_all`], each shard's in-flight misses are
    /// drained before its frames are dropped (frame indices held by a
    /// fetcher must never dangle).
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut late_writes = false;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner = self.drain_in_flight(shard, inner);
            // Concurrent writers may have dirtied frames after the flush
            // pass above released this shard's lock (and during the drain
            // waits): write those back under *this* guard, or dropping
            // the frames below would silently lose their updates.
            // Single-threaded nothing is dirty here, so the flush order
            // the goldens pin is untouched.
            let walked = self.write_back_dirty_frames(shard, &mut inner);
            if walked.is_ok() {
                inner.table.clear();
                inner.frames.clear();
            }
            self.release_drain(shard, &mut inner);
            late_writes |= walked?;
        }
        if late_writes {
            self.disk.sync()?;
        }
        Ok(())
    }

    /// The deterministic dirty-frame walk shared by [`BufferPool::flush_all`]
    /// and the late-write pass of [`BufferPool::clear_cache`]: frames in
    /// slot order, write-back, count, mark clean.  Caller holds the shard
    /// lock with the shard drained.  Returns whether anything was written.
    fn write_back_dirty_frames(&self, shard: &Shard, inner: &mut PoolInner) -> Result<bool> {
        let mut wrote = false;
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].dirty {
                let page = inner.frames[idx].page;
                self.wal_barrier(inner.frames[idx].page_lsn)?;
                self.disk.write_page(page, &inner.frames[idx].data)?;
                shard.stats.record_physical_write();
                inner.frames[idx].dirty = false;
                wrote = true;
            }
        }
        Ok(wrote)
    }

    /// Blocks until `shard` has no in-flight miss or write-back,
    /// re-acquiring the lock around each wait.  Registers the caller as a
    /// draining janitor first: while any janitor is registered, *new*
    /// reservations are turned away (hits and in-flight fetches proceed),
    /// so sustained miss traffic cannot starve a flush or clear.  The
    /// caller must pair this with [`BufferPool::release_drain`] under the
    /// same guard once its quiesced-shard work is done.
    fn drain_in_flight<'a>(
        &self,
        shard: &'a Shard,
        mut inner: MutexGuard<'a, PoolInner>,
    ) -> MutexGuard<'a, PoolInner> {
        inner.draining += 1;
        while !inner.in_flight.is_empty() || !inner.evicting.is_empty() {
            inner = shard.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        inner
    }

    /// Ends a [`BufferPool::drain_in_flight`] admission hold and wakes the
    /// reservations it turned away.
    fn release_drain(&self, shard: &Shard, inner: &mut PoolInner) {
        inner.draining -= 1;
        if inner.draining == 0 {
            shard.cv.notify_all();
        }
    }

    /// Makes page `id` resident in `shard` and returns the locked shard
    /// state plus the frame index — the three-phase miss protocol (see the
    /// module docs).
    ///
    /// Single-threaded (no concurrent fault on this shard) the observable
    /// behavior is the seed pool's `ensure_resident` verbatim: one LRU
    /// clock tick, the same victim, write-back before read, counters
    /// bumped at the same points, and the same failure states — only the
    /// *lock* is released around the device I/O.
    fn acquire_resident<'a>(
        &self,
        shard: &'a Shard,
        id: PageId,
    ) -> Result<(MutexGuard<'a, PoolInner>, usize)> {
        let mut inner = shard.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        let mut coalesced = false;
        loop {
            if let Some(&idx) = inner.table.get(&id) {
                // `max`: a waiter served after blocking carries a `now`
                // from before its sleep; a stale stamp must not move a
                // hot page backwards in LRU order.  Single-threaded `now`
                // is always the newest tick, so this is exactly the
                // seed's `last_used = now`.
                let fr = &mut inner.frames[idx];
                fr.last_used = fr.last_used.max(now);
                return Ok((inner, idx));
            }
            // Single-flight: another thread is already fetching this page.
            // Block on its in-flight entry instead of issuing a duplicate
            // device read; the published frame serves us on wake-up.
            if inner.in_flight.contains_key(&id) {
                if !coalesced {
                    coalesced = true;
                    shard.stats.record_coalesced_fault();
                }
                inner = shard.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // The page is a dirty eviction victim whose write-back has not
            // landed yet: its disk image is stale.  Wait for the
            // write-back, then fault the fresh image (not a coalesced
            // fault — we will issue our own read).
            if inner.evicting.contains(&id) {
                inner = shard.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // A janitor is draining this shard: hold new reservations back
            // so the drain terminates even under sustained miss traffic.
            if inner.draining > 0 {
                inner = shard.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // Phase 1 — reserve, under the lock: grow up to the shard's
            // capacity, else evict the LRU among *non-reserved* frames.
            let idx = if inner.frames.len() < shard.capacity {
                inner.frames.push(Frame {
                    page: PageId::INVALID,
                    data: vec![0u8; self.page_size].into_boxed_slice(),
                    dirty: false,
                    last_used: 0,
                    reserved: true,
                    page_lsn: 0,
                });
                inner.frames.len() - 1
            } else {
                let victim = inner
                    .frames
                    .iter()
                    .enumerate()
                    .filter(|(_, fr)| !fr.reserved)
                    .min_by_key(|(_, fr)| fr.last_used)
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => {
                        inner.frames[i].reserved = true;
                        i
                    }
                    None => {
                        // Every frame is reserved by an in-flight miss:
                        // wait for a publish to free one, then retry.
                        inner = shard.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                        continue;
                    }
                }
            };
            let old_page = inner.frames[idx].page;
            let old_dirty = inner.frames[idx].dirty;
            let old_lsn = inner.frames[idx].page_lsn;
            if !old_page.is_invalid() {
                inner.table.remove(&old_page);
            }
            if old_dirty {
                // Until the promoted write-back lands, faults on the
                // victim must wait (its disk image is stale).
                inner.evicting.insert(old_page);
            }
            // Move the buffer out to the fetcher; the reservation keeps
            // every other thread away from this frame until publish.
            let mut buf = std::mem::take(&mut inner.frames[idx].data);
            inner.in_flight.insert(id, idx);
            drop(inner);

            // Phase 2 — fetch, with no lock held: hot hits on this shard
            // proceed while the device works.  Write-back first, then the
            // read — the seed pool's exact device-op order.
            let mut failure: Option<Error> = None;
            let mut wrote_back = false;
            if old_dirty {
                // WAL-before-data: the victim's record must be durable
                // before its image reaches the device (both run lock-free).
                match self.wal_barrier(old_lsn).and_then(|()| self.disk.write_page(old_page, &buf))
                {
                    Ok(()) => {
                        shard.stats.record_physical_write();
                        wrote_back = true;
                    }
                    Err(e) => failure = Some(e),
                }
            }
            let mut read_ok = false;
            if failure.is_none() {
                match self.disk.read_page(id, &mut buf) {
                    Ok(()) => read_ok = true,
                    Err(e) => failure = Some(e),
                }
            }

            // Phase 3 — publish (or roll back), under the lock again.
            let mut inner2 = shard.inner.lock();
            // Re-read the clock for the publish stamp: hits that landed
            // during the fetch carry fresher ticks than our entry-time
            // `now`, and a freshly faulted page must not publish as the
            // shard's LRU minimum.  Single-threaded no tick intervened,
            // so the stamp equals `now` — the seed's exact value.
            let stamp = inner2.clock.max(now);
            {
                let fr = &mut inner2.frames[idx];
                fr.data = buf;
                fr.reserved = false;
                if read_ok {
                    fr.page = id;
                    fr.dirty = false;
                    fr.last_used = stamp;
                    fr.page_lsn = 0;
                } else if old_dirty && !wrote_back {
                    // Write-back failure: the victim stays dirty and
                    // cached (restored to the table below), as in the
                    // seed.  Its `page_lsn` stamp is untouched.
                } else {
                    // The read failed with the victim safely on disk
                    // (clean, or its write-back landed): the frame is
                    // uncached.  Clear its identity — if `old_page` is
                    // re-faulted into another frame while this one idles,
                    // a later eviction of this frame must not remove that
                    // live table mapping.
                    fr.dirty = false;
                    fr.page = PageId::INVALID;
                    fr.page_lsn = 0;
                }
            }
            inner2.in_flight.remove(&id);
            if old_dirty {
                // Write-back landed (disk is fresh) or failed (the victim
                // goes back into the cache below): either way the stale
                // window is over.
                inner2.evicting.remove(&old_page);
            }
            if read_ok {
                inner2.table.insert(id, idx);
                shard.stats.record_physical_read();
                shard.stats.record_lock_free_read();
            } else if old_dirty && !wrote_back {
                inner2.table.insert(old_page, idx);
            }
            shard.cv.notify_all();
            return match failure {
                Some(e) => Err(e),
                None => Ok((inner2, idx)),
            };
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort write-back so file-backed databases persist without an
        // explicit flush; errors are ignored as in most destructors.
        let _ = self.flush_all();
        self.stop_flusher();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn small_pool(frames: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(128), BufferPoolConfig::with_capacity(frames))
    }

    fn sharded_pool(frames: usize, shards: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(frames, shards))
    }

    #[test]
    fn hit_avoids_physical_read() {
        let pool = small_pool(4);
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| {}).unwrap();
        let after_first = pool.stats().snapshot();
        pool.with_page(p, |_| {}).unwrap();
        let after_second = pool.stats().snapshot();
        assert_eq!(after_second.since(&after_first).physical_reads, 0);
        assert_eq!(after_second.since(&after_first).logical_reads, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = small_pool(2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap();
        pool.with_page(b, |_| {}).unwrap();
        // Touch `a` so `b` is the LRU victim.
        pool.with_page(a, |_| {}).unwrap();
        pool.with_page(c, |_| {}).unwrap(); // evicts b
        let before = pool.stats().snapshot();
        pool.with_page(a, |_| {}).unwrap(); // still cached
        let mid = pool.stats().snapshot();
        assert_eq!(mid.since(&before).physical_reads, 0);
        pool.with_page(b, |_| {}).unwrap(); // must be re-read
        let after = pool.stats().snapshot();
        assert_eq!(after.since(&mid).physical_reads, 1);
    }

    #[test]
    fn dirty_page_written_back_on_eviction() {
        let pool = small_pool(1);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |data| data[0] = 42).unwrap();
        // Evict `a` by touching `b`; the write-back must hit the disk.
        pool.with_page(b, |_| {}).unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
        // Re-read `a`: the modification survived eviction.
        let v = pool.with_page(a, |data| data[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn writes_are_cached_until_eviction_or_flush() {
        let pool = small_pool(4);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |data| data[0] = 1).unwrap();
        pool.with_page_mut(a, |data| data[0] = 2).unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 0);
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
        // Flushing twice does not rewrite clean pages.
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let pool = small_pool(4);
        let a = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap();
        pool.clear_cache().unwrap();
        let before = pool.stats().snapshot();
        pool.with_page(a, |_| {}).unwrap();
        assert_eq!(pool.stats().snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn capacity_one_pool_works() {
        let pool = small_pool(1);
        let pages: Vec<_> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |data| data[0] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }

    #[test]
    fn nested_access_to_distinct_pages_is_supported() {
        let pool = small_pool(1); // worst case: inner access evicts outer page
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(b, |d| d[0] = 7).unwrap();
        let inner_val = pool
            .with_page_mut(a, |da| {
                da[0] = 1;
                // Nested read evicts `a` from the single-frame pool; the
                // outer modification must still land when the closure ends.
                pool.with_page(b, |db| db[0]).unwrap()
            })
            .unwrap();
        assert_eq!(inner_val, 7);
        assert_eq!(pool.with_page(a, |d| d[0]).unwrap(), 1);
    }

    #[test]
    fn stats_handle_is_shared() {
        let pool = small_pool(2);
        let stats = pool.stats();
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| {}).unwrap();
        assert_eq!(stats.snapshot().logical_reads, 1);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        use std::sync::Arc;
        let pool = Arc::new(small_pool(4));
        let pages: Vec<_> = (0..8)
            .map(|i| {
                let p = pool.allocate_page().unwrap();
                pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
                p
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let pages = pages.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        for (i, &p) in pages.iter().enumerate() {
                            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    // ------------------------------------------------------------------
    // Sharding
    // ------------------------------------------------------------------

    #[test]
    fn default_config_is_one_shard_of_200() {
        let cfg = BufferPoolConfig::default();
        assert_eq!((cfg.capacity, cfg.shards), (200, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = sharded_pool(16, 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn more_shards_than_frames_rejected() {
        let _ = sharded_pool(2, 4);
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        let pool = sharded_pool(16, 4);
        for raw in 0..64u64 {
            let s = pool.shard_of(PageId(raw));
            assert!(s < 4);
            assert_eq!(s, (raw % 4) as usize, "dense page ids round-robin over shards");
        }
    }

    #[test]
    fn capacity_splits_across_shards_without_loss() {
        // 10 frames over 4 shards: 3 + 3 + 2 + 2.
        let pool = sharded_pool(10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shards(), 4);
        // Fill every shard past its share; the pool must still serve all
        // pages correctly (evictions happen per shard).
        let pages: Vec<_> = (0..32).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }

    #[test]
    fn per_shard_counters_aggregate_losslessly() {
        let pool = sharded_pool(8, 4);
        let pages: Vec<_> = (0..16).map(|_| pool.allocate_page().unwrap()).collect();
        for &p in &pages {
            pool.with_page(p, |_| {}).unwrap();
        }
        let total = pool.stats().snapshot();
        let per_shard = pool.stats().per_shard();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.logical_reads).sum::<u64>(), total.logical_reads);
        assert_eq!(per_shard.iter().map(|s| s.physical_reads).sum::<u64>(), total.physical_reads);
        assert_eq!(total.logical_reads, 16);
        // Dense ids spread evenly: 4 logical reads per shard.
        assert!(per_shard.iter().all(|s| s.logical_reads == 4), "{per_shard:?}");
    }

    // ------------------------------------------------------------------
    // Miss promotion
    // ------------------------------------------------------------------

    #[test]
    fn every_miss_read_is_promoted_outside_the_lock() {
        let pool = small_pool(2);
        let pages: Vec<_> = (0..6).map(|_| pool.allocate_page().unwrap()).collect();
        for &p in &pages {
            pool.with_page(p, |_| {}).unwrap();
        }
        let io = pool.stats().snapshot();
        let miss = pool.stats().miss_snapshot();
        assert_eq!(miss.lock_free_reads, io.physical_reads, "all fetches run outside the lock");
        assert_eq!(miss.coalesced_faults, 0, "single-threaded faults never coalesce");
    }

    #[test]
    fn prefetch_makes_the_next_access_a_hit_and_stays_counter_invisible() {
        // Twin pools, identical op sequence except one prefetches before
        // each access: all four classic counters must match at every step.
        let plain = small_pool(2);
        let hinted = small_pool(2);
        let pp: Vec<_> = (0..5).map(|_| plain.allocate_page().unwrap()).collect();
        let hp: Vec<_> = (0..5).map(|_| hinted.allocate_page().unwrap()).collect();
        let seq = [0usize, 1, 0, 2, 3, 1, 4, 0, 2, 2, 4];
        for &i in &seq {
            plain.with_page(pp[i], |_| {}).unwrap();
            hinted.prefetch(hp[i]).unwrap();
            hinted.with_page(hp[i], |_| {}).unwrap();
            assert_eq!(plain.stats().snapshot(), hinted.stats().snapshot());
        }
        // And a prefetched access really is a hit.
        let before = hinted.stats().snapshot();
        hinted.prefetch(hp[3]).unwrap(); // cold again? no: 3 was evicted above
        let mid = hinted.stats().snapshot();
        hinted.with_page(hp[3], |_| {}).unwrap();
        let after = hinted.stats().snapshot();
        assert_eq!(mid.since(&before).logical_reads, 0, "prefetch counts no logical access");
        assert_eq!(after.since(&mid).physical_reads, 0, "the access after a prefetch is a hit");
    }

    #[test]
    fn failed_read_leaves_pool_usable_and_unreserved() {
        use crate::faulty::{FaultPlan, FaultyDisk};
        let faulty = FaultyDisk::new(
            MemDisk::new(128),
            FaultPlan { fail_read_at: Some(1), ..Default::default() },
        );
        let pool = BufferPool::new(faulty, BufferPoolConfig::with_capacity(1));
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap(); // read #0
        assert!(pool.with_page(b, |_| {}).is_err()); // read #1 injected fault
                                                     // The reservation was rolled back: both pages readable again, and
                                                     // flush/clear (which drain in-flight misses) do not hang.
        pool.with_page(b, |_| {}).unwrap();
        pool.with_page(a, |_| {}).unwrap();
        pool.clear_cache().unwrap();
        pool.with_page(a, |_| {}).unwrap();
    }

    #[test]
    fn sharded_pool_preserves_data_across_flush_and_clear() {
        let pool = sharded_pool(8, 4);
        let pages: Vec<_> = (0..24).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        pool.clear_cache().unwrap();
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }
}
