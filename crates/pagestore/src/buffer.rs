//! Buffer pool: the "database block cache" of the paper's setup.
//!
//! The paper runs Oracle with its default cache of **200 blocks of 2 KB**
//! (Section 6.1); [`BufferPoolConfig::default`] mirrors that.  Replacement is
//! LRU, writes are cached (write-back on eviction or explicit flush), and
//! every page access is counted in [`IoStats`], which is how the experiments
//! obtain the "physical disk block accesses" series of Figures 13 and 14.
//!
//! # Sharding
//!
//! The pool is **lock-striped**: pages hash to one of `shards` independent
//! shards (a power of two, default **1**), each owning its frames, LRU
//! clock, hash table, and [`IoStats`] counters.  Concurrent accesses to
//! pages in different shards never contend; aggregate counters are read
//! losslessly by summing the per-shard counters (see
//! [`PoolStats`]).
//!
//! With the default `shards = 1` the pool is a *single* LRU over a single
//! lock — bit-for-bit the behavior the paper experiments were calibrated
//! against (one global cache of 200 blocks), which keeps every figure
//! binary deterministic.  `tests/pool_determinism.rs` pins this.  Larger
//! shard counts trade exact global LRU for concurrency, the same trade
//! made by any production block cache (PostgreSQL buffer mapping
//! partitions, InnoDB buffer pool instances).
//!
//! # Access model
//!
//! Access is closure-based and *copy-in/copy-out*: [`BufferPool::with_page`]
//! copies the cached page into a scratch buffer under the shard lock, then
//! runs the caller's closure on the copy with the lock released.  This keeps
//! the implementation entirely safe Rust, allows closures to issue nested
//! page accesses (a B+-tree descent reads a parent, then its children, which
//! may live in *any* shard — no lock is held while a closure runs, so no
//! lock ordering issues arise), and costs one 2 KB memcpy per logical
//! access — irrelevant next to the simulated physical I/O the experiments
//! measure.  Callers must not access the *same* page from two nested
//! closures when either access is mutable; the B+-tree and heap layers are
//! structured to never do so.

use crate::disk::DiskManager;
use crate::error::Result;
use crate::latch::LatchManager;
use crate::page::PageId;
use crate::stats::{IoStats, PoolStats};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Sizing knobs for [`BufferPool`].
#[derive(Clone, Copy, Debug)]
pub struct BufferPoolConfig {
    /// Number of page frames the cache holds (summed across all shards).
    pub capacity: usize,
    /// Number of lock-striped shards; must be a power of two and at most
    /// `capacity`.  The default of 1 reproduces the paper's single global
    /// cache exactly.
    pub shards: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // The paper: "The database block cache was set to the default value
        // of 200 database blocks with a block size of 2 KB."
        BufferPoolConfig { capacity: 200, shards: 1 }
    }
}

impl BufferPoolConfig {
    /// A single-shard pool with `capacity` frames — the paper's
    /// deterministic global-LRU cache at a custom size.
    pub fn with_capacity(capacity: usize) -> Self {
        BufferPoolConfig { capacity, shards: 1 }
    }

    /// A lock-striped pool: `capacity` total frames over `shards` shards.
    pub fn sharded(capacity: usize, shards: usize) -> Self {
        BufferPoolConfig { capacity, shards }
    }
}

/// One cached page frame.
struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    /// Logical timestamp of the most recent access, for LRU victim selection.
    last_used: u64,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// Maps a cached page id to its frame index.
    table: HashMap<PageId, usize>,
    clock: u64,
}

/// One lock stripe: its own frame set, LRU clock, and I/O counters.
struct Shard {
    inner: Mutex<PoolInner>,
    stats: Arc<IoStats>,
    /// Frames this shard may hold (the pool capacity is split across
    /// shards, remainder to the lowest-numbered ones).
    capacity: usize,
}

thread_local! {
    /// Stack of reusable scratch buffers; a stack (not a single buffer) so
    /// nested `with_page` calls each get their own copy.
    static SCRATCH: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch(len: usize) -> Vec<u8> {
    SCRATCH.with(|s| {
        let mut buf = s.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    })
}

fn return_scratch(buf: Vec<u8>) {
    SCRATCH.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.len() < 16 {
            stack.push(buf);
        }
    })
}

/// Write-back page cache with LRU replacement, lock-striped over `shards`
/// independent shards.
///
/// All structures in this repository (B+-trees, heap tables, catalogs)
/// access pages exclusively through this type, so the physical I/O of the
/// RI-tree and of every competing access method is measured under identical
/// caching rules — the methodology of the paper's Section 6.
pub struct BufferPool {
    disk: Box<dyn DiskManager>,
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard routing is `page & mask` (power of two).
    mask: u64,
    stats: PoolStats,
    latches: LatchManager,
    page_size: usize,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool over `disk` with the given configuration.
    ///
    /// # Panics
    ///
    /// If `capacity == 0`, `shards` is not a power of two, or
    /// `shards > capacity` (every shard needs at least one frame).
    pub fn new<D: DiskManager + 'static>(disk: D, config: BufferPoolConfig) -> Self {
        assert!(config.capacity >= 1, "buffer pool needs at least one frame");
        assert!(
            config.shards >= 1 && config.shards.is_power_of_two(),
            "shard count must be a power of two, got {}",
            config.shards
        );
        assert!(
            config.shards <= config.capacity,
            "{} shards need at least {} frames, pool has {}",
            config.shards,
            config.shards,
            config.capacity
        );
        let page_size = disk.page_size();
        let base = config.capacity / config.shards;
        let rem = config.capacity % config.shards;
        let shards: Box<[Shard]> = (0..config.shards)
            .map(|i| {
                let capacity = base + usize::from(i < rem);
                Shard {
                    inner: Mutex::new(PoolInner {
                        frames: Vec::new(),
                        table: HashMap::with_capacity(capacity),
                        clock: 0,
                    }),
                    stats: IoStats::new_shared(),
                    capacity,
                }
            })
            .collect();
        let stats = PoolStats::new(shards.iter().map(|s| Arc::clone(&s.stats)).collect());
        BufferPool {
            disk: Box::new(disk),
            mask: shards.len() as u64 - 1,
            shards,
            stats,
            latches: LatchManager::default(),
            page_size,
            capacity: config.capacity,
        }
    }

    /// Creates a pool with the paper's default cache (200 frames, 1 shard).
    pub fn with_defaults<D: DiskManager + 'static>(disk: D) -> Self {
        Self::new(disk, BufferPoolConfig::default())
    }

    /// The page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total number of frames in the cache (across all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock-striped shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index page `id` is routed to.
    pub fn shard_of(&self, id: PageId) -> usize {
        (id.raw() & self.mask) as usize
    }

    /// Aggregating handle over this pool's per-shard I/O counters.
    pub fn stats(&self) -> PoolStats {
        self.stats.clone()
    }

    /// The pool's latch manager: logical per-page latches (valid across
    /// evictions) used by the B+-tree's latch-crabbing write path and the
    /// heap's append path.  Latch traffic never touches pages, so it is
    /// invisible to [`BufferPool::stats`].
    pub fn latches(&self) -> &LatchManager {
        &self.latches
    }

    /// Number of pages allocated on the underlying device.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Allocates a fresh zeroed page on the device.
    ///
    /// The new page is *not* faulted into the cache; the first access will
    /// read it (counted as a physical read, as in a real system where a new
    /// block still passes through the cache).
    pub fn allocate_page(&self) -> Result<PageId> {
        self.disk.allocate_page()
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[(id.raw() & self.mask) as usize]
    }

    /// Runs `f` over an immutable snapshot of page `id`.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&[u8]) -> T) -> Result<T> {
        let shard = self.shard(id);
        shard.stats.record_logical_read();
        let mut buf = take_scratch(self.page_size);
        {
            let mut inner = shard.inner.lock();
            let idx = self.ensure_resident(shard, &mut inner, id)?;
            buf.copy_from_slice(&inner.frames[idx].data);
        }
        let result = f(&buf);
        return_scratch(buf);
        Ok(result)
    }

    /// Runs `f` over a mutable copy of page `id`, then installs the modified
    /// copy in the cache and marks the page dirty.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> T) -> Result<T> {
        let shard = self.shard(id);
        shard.stats.record_logical_write();
        let mut buf = take_scratch(self.page_size);
        {
            let mut inner = shard.inner.lock();
            let idx = self.ensure_resident(shard, &mut inner, id)?;
            buf.copy_from_slice(&inner.frames[idx].data);
        }
        let result = f(&mut buf);
        {
            let mut inner = shard.inner.lock();
            // The page may have been evicted by nested accesses inside `f`;
            // fault it back in before installing the modified copy.
            let idx = self.ensure_resident(shard, &mut inner, id)?;
            inner.frames[idx].data.copy_from_slice(&buf);
            inner.frames[idx].dirty = true;
        }
        return_scratch(buf);
        Ok(result)
    }

    /// Writes every dirty cached page back to the device and syncs it.
    ///
    /// Shards are flushed in index order, frames in slot order — the same
    /// deterministic write-back order as the seed pool when `shards = 1`.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            for idx in 0..inner.frames.len() {
                if inner.frames[idx].dirty {
                    let page = inner.frames[idx].page;
                    self.disk.write_page(page, &inner.frames[idx].data)?;
                    shard.stats.record_physical_write();
                    inner.frames[idx].dirty = false;
                }
            }
        }
        self.disk.sync()
    }

    /// Flushes dirty pages, then drops everything from the cache.
    ///
    /// Experiments call this between the load phase and the query phase so
    /// queries start from a cold cache, as after the paper's bulk loads.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.table.clear();
            inner.frames.clear();
        }
        Ok(())
    }

    /// Makes page `id` resident in `shard` and returns its frame index.
    ///
    /// Runs entirely under the shard lock; with `shards = 1` this is the
    /// seed pool's algorithm verbatim (global LRU clock, min-`last_used`
    /// victim, write-back of dirty victims).
    fn ensure_resident(&self, shard: &Shard, inner: &mut PoolInner, id: PageId) -> Result<usize> {
        inner.clock += 1;
        let now = inner.clock;
        if let Some(&idx) = inner.table.get(&id) {
            inner.frames[idx].last_used = now;
            return Ok(idx);
        }
        // Miss: grow up to the shard's capacity, then evict the LRU frame.
        let idx = if inner.frames.len() < shard.capacity {
            inner.frames.push(Frame {
                page: PageId::INVALID,
                data: vec![0u8; self.page_size].into_boxed_slice(),
                dirty: false,
                last_used: 0,
            });
            inner.frames.len() - 1
        } else {
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1 guarantees a victim");
            if inner.frames[victim].dirty {
                let page = inner.frames[victim].page;
                self.disk.write_page(page, &inner.frames[victim].data)?;
                shard.stats.record_physical_write();
                inner.frames[victim].dirty = false;
            }
            let old = inner.frames[victim].page;
            inner.table.remove(&old);
            victim
        };
        // Fault the page in.
        let frame = &mut inner.frames[idx];
        self.disk.read_page(id, &mut frame.data)?;
        shard.stats.record_physical_read();
        frame.page = id;
        frame.dirty = false;
        frame.last_used = now;
        inner.table.insert(id, idx);
        Ok(idx)
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort write-back so file-backed databases persist without an
        // explicit flush; errors are ignored as in most destructors.
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn small_pool(frames: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(128), BufferPoolConfig::with_capacity(frames))
    }

    fn sharded_pool(frames: usize, shards: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(128), BufferPoolConfig::sharded(frames, shards))
    }

    #[test]
    fn hit_avoids_physical_read() {
        let pool = small_pool(4);
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| {}).unwrap();
        let after_first = pool.stats().snapshot();
        pool.with_page(p, |_| {}).unwrap();
        let after_second = pool.stats().snapshot();
        assert_eq!(after_second.since(&after_first).physical_reads, 0);
        assert_eq!(after_second.since(&after_first).logical_reads, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = small_pool(2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap();
        pool.with_page(b, |_| {}).unwrap();
        // Touch `a` so `b` is the LRU victim.
        pool.with_page(a, |_| {}).unwrap();
        pool.with_page(c, |_| {}).unwrap(); // evicts b
        let before = pool.stats().snapshot();
        pool.with_page(a, |_| {}).unwrap(); // still cached
        let mid = pool.stats().snapshot();
        assert_eq!(mid.since(&before).physical_reads, 0);
        pool.with_page(b, |_| {}).unwrap(); // must be re-read
        let after = pool.stats().snapshot();
        assert_eq!(after.since(&mid).physical_reads, 1);
    }

    #[test]
    fn dirty_page_written_back_on_eviction() {
        let pool = small_pool(1);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |data| data[0] = 42).unwrap();
        // Evict `a` by touching `b`; the write-back must hit the disk.
        pool.with_page(b, |_| {}).unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
        // Re-read `a`: the modification survived eviction.
        let v = pool.with_page(a, |data| data[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn writes_are_cached_until_eviction_or_flush() {
        let pool = small_pool(4);
        let a = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |data| data[0] = 1).unwrap();
        pool.with_page_mut(a, |data| data[0] = 2).unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 0);
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
        // Flushing twice does not rewrite clean pages.
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().snapshot().physical_writes, 1);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let pool = small_pool(4);
        let a = pool.allocate_page().unwrap();
        pool.with_page(a, |_| {}).unwrap();
        pool.clear_cache().unwrap();
        let before = pool.stats().snapshot();
        pool.with_page(a, |_| {}).unwrap();
        assert_eq!(pool.stats().snapshot().since(&before).physical_reads, 1);
    }

    #[test]
    fn capacity_one_pool_works() {
        let pool = small_pool(1);
        let pages: Vec<_> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |data| data[0] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }

    #[test]
    fn nested_access_to_distinct_pages_is_supported() {
        let pool = small_pool(1); // worst case: inner access evicts outer page
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(b, |d| d[0] = 7).unwrap();
        let inner_val = pool
            .with_page_mut(a, |da| {
                da[0] = 1;
                // Nested read evicts `a` from the single-frame pool; the
                // outer modification must still land when the closure ends.
                pool.with_page(b, |db| db[0]).unwrap()
            })
            .unwrap();
        assert_eq!(inner_val, 7);
        assert_eq!(pool.with_page(a, |d| d[0]).unwrap(), 1);
    }

    #[test]
    fn stats_handle_is_shared() {
        let pool = small_pool(2);
        let stats = pool.stats();
        let p = pool.allocate_page().unwrap();
        pool.with_page(p, |_| {}).unwrap();
        assert_eq!(stats.snapshot().logical_reads, 1);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        use std::sync::Arc;
        let pool = Arc::new(small_pool(4));
        let pages: Vec<_> = (0..8)
            .map(|i| {
                let p = pool.allocate_page().unwrap();
                pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
                p
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let pages = pages.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        for (i, &p) in pages.iter().enumerate() {
                            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    // ------------------------------------------------------------------
    // Sharding
    // ------------------------------------------------------------------

    #[test]
    fn default_config_is_one_shard_of_200() {
        let cfg = BufferPoolConfig::default();
        assert_eq!((cfg.capacity, cfg.shards), (200, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = sharded_pool(16, 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn more_shards_than_frames_rejected() {
        let _ = sharded_pool(2, 4);
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        let pool = sharded_pool(16, 4);
        for raw in 0..64u64 {
            let s = pool.shard_of(PageId(raw));
            assert!(s < 4);
            assert_eq!(s, (raw % 4) as usize, "dense page ids round-robin over shards");
        }
    }

    #[test]
    fn capacity_splits_across_shards_without_loss() {
        // 10 frames over 4 shards: 3 + 3 + 2 + 2.
        let pool = sharded_pool(10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shards(), 4);
        // Fill every shard past its share; the pool must still serve all
        // pages correctly (evictions happen per shard).
        let pages: Vec<_> = (0..32).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }

    #[test]
    fn per_shard_counters_aggregate_losslessly() {
        let pool = sharded_pool(8, 4);
        let pages: Vec<_> = (0..16).map(|_| pool.allocate_page().unwrap()).collect();
        for &p in &pages {
            pool.with_page(p, |_| {}).unwrap();
        }
        let total = pool.stats().snapshot();
        let per_shard = pool.stats().per_shard();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.logical_reads).sum::<u64>(), total.logical_reads);
        assert_eq!(per_shard.iter().map(|s| s.physical_reads).sum::<u64>(), total.physical_reads);
        assert_eq!(total.logical_reads, 16);
        // Dense ids spread evenly: 4 logical reads per shard.
        assert!(per_shard.iter().all(|s| s.logical_reads == 4), "{per_shard:?}");
    }

    #[test]
    fn sharded_pool_preserves_data_across_flush_and_clear() {
        let pool = sharded_pool(8, 4);
        let pages: Vec<_> = (0..24).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        pool.clear_cache().unwrap();
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(pool.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
    }
}
