//! Paged block storage for the RI-tree reproduction.
//!
//! The paper ([Kriegel, Pötke, Seidl; VLDB 2000]) evaluates the Relational
//! Interval Tree on an Oracle 8.1.5 server configured with a **2 KB block
//! size** and a **database block cache of 200 blocks**, and reports *physical
//! disk block accesses* as its primary cost metric.  This crate provides the
//! equivalent substrate:
//!
//! * [`disk`] — a block device abstraction with an in-memory implementation
//!   ([`MemDisk`]) used by the experiments and a file-backed implementation
//!   ([`FileDisk`]) used by the persistence tests,
//! * [`buffer`] — a lock-striped buffer pool with per-shard LRU replacement
//!   and write-back caching (the "database block cache"; the default single
//!   shard reproduces the paper's global 200-block cache exactly),
//! * [`stats`] — shared counters for logical/physical reads and writes plus a
//!   late-1990s disk [`LatencyModel`] that converts physical I/O volume into
//!   a *simulated response time*, making the paper's seconds-scale response
//!   time plots reproducible on modern hardware,
//! * [`wal`] — a page-oriented write-ahead log with group commit, fuzzy
//!   checkpoint truncation (safe under concurrent DML), and redo recovery
//!   ([`BufferPool::new_durable`] pools stamp frames with page LSNs and
//!   enforce WAL-before-data),
//! * [`faulty`] — a fault-injecting disk wrapper used by the failure tests,
//!   including crash-point, crash-at-sync-barrier, and torn-write
//!   (partial-sector) injection on a shared [`FaultClock`] for
//!   kill-anywhere recovery testing.
//!
//! All upper layers (the B+-tree, the relational engine, and every access
//! method compared in the evaluation) perform I/O exclusively through
//! [`BufferPool`], so their physical I/O counts are directly comparable —
//! exactly the methodology of the paper's Section 6.

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod faulty;
pub mod latch;
pub mod page;
pub mod stats;
pub mod wal;

pub use buffer::{BufferPool, BufferPoolConfig};
pub use disk::{DiskManager, FileDisk, MemDisk};
pub use error::{Error, Result};
pub use faulty::{CrashPlan, FaultClock, FaultPlan, FaultyDisk, ReadHook, SyncHook, WriteHook};
pub use latch::{LatchGuard, LatchManager, LatchSnapshot, LatchStats};
pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use stats::{IoSnapshot, IoStats, LatencyModel, MissSnapshot, PoolStats};
pub use wal::{FlushPolicy, RecoveryReport, Wal, WalConfig, WalSnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip() {
        let pool = BufferPool::with_defaults(MemDisk::new(DEFAULT_PAGE_SIZE));
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |data| {
            data[0] = 0xAB;
            data[DEFAULT_PAGE_SIZE - 1] = 0xCD;
        })
        .unwrap();
        pool.flush_all().unwrap();
        let (a, b) = pool.with_page(pid, |data| (data[0], data[DEFAULT_PAGE_SIZE - 1])).unwrap();
        assert_eq!((a, b), (0xAB, 0xCD));
    }
}
