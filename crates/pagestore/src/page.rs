//! Page identifiers and sizing.

/// Default page size in bytes.
///
/// The paper's experimental setup uses an Oracle block size of 2 KB
/// (Section 6.1); all experiments therefore run with this default.
pub const DEFAULT_PAGE_SIZE: usize = 2048;

/// Identifier of a fixed-size block on a disk.
///
/// Page ids are dense: a device with `n` pages exposes ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used in on-page link fields meaning "no page".
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Returns `true` if this id is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }

    /// The raw 64-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_invalid() {
            write!(f, "P<nil>")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_sentinel() {
        assert!(PageId::INVALID.is_invalid());
        assert!(!PageId(0).is_invalid());
        assert_eq!(PageId(42).raw(), 42);
    }

    #[test]
    fn display() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(PageId::INVALID.to_string(), "P<nil>");
    }
}
