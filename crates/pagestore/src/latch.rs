//! Page latches: the short-term locks that let writers share a tree.
//!
//! The paper delegates all concurrency control to the host RDBMS; this
//! module is the reproduction's equivalent of that host-provided latch
//! manager.  It hands out **logical latches keyed by page id** — they
//! protect the *logical page*, not a buffer frame, so they remain valid
//! across evictions — plus two pieces of in-memory bookkeeping the
//! B+-tree's optimistic write protocol needs:
//!
//! * a **structure-modification epoch** per tree (keyed by the tree's meta
//!   page): bumped after every split/merge/root change, it lets a writer
//!   that released its latches to upgrade detect whether the structure it
//!   descended through is still exactly the one it saw;
//! * a **version counter** per page: bumped on every in-place leaf store,
//!   it lets the same upgrading writer detect concurrent *content* changes
//!   to its target leaf that the epoch (which only tracks structure) would
//!   miss.
//!
//! Latches are deliberately **not** tied to buffer-pool I/O: acquiring or
//! releasing one never touches a page, so the single-threaded page-access
//! sequence of every operation is bit-for-bit identical to the unlatched
//! seed implementation — the property `tests/pool_determinism.rs` pins.
//!
//! # Modes and policy
//!
//! Latches are shared/exclusive with **reader preference** by default: a
//! shared request only waits while a writer is *inside*, never for queued
//! writers.  This makes nested shared acquisitions by one thread safe
//! (the B+-tree takes the tree latch shared around whole scans) at the
//! usual cost that a continuous reader stream can starve writers; the
//! workloads here are bursty enough that this is the right trade.
//!
//! An opt-in **writer-fairness mode**
//! ([`LatchManager::set_writer_fairness`]) blocks *new* shared
//! acquisitions once an exclusive waiter has queued, bounding writer wait
//! times to the drain of the readers already inside.  It is off by
//! default because it makes nested shared acquisition on the *same* latch
//! a deadlock (the outer hold keeps the writer queued, the queued writer
//! blocks the inner acquisition); enable it only for workloads audited to
//! never nest — the B+-tree's own operations never acquire the same
//! tree's latch shared twice on one thread (the audit is recorded in
//! ARCHITECTURE.md, and the "no DML under an open cursor" contract in
//! [`crate::BufferPool`] users already forbids the remaining case).
//!
//! Latch *waits* are intentionally uncounted in [`LatchStats`]: wait
//! counts depend on thread scheduling, and every number exposed here
//! feeds deterministic benchmark snapshots.

use crate::page::PageId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of hash-striped cell maps (a power of two).
const STRIPES: usize = 16;

/// What a latch key protects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Domain {
    /// The whole tree rooted at this meta page (structure latch).
    Tree,
    /// One page's content.
    Page,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    page: u64,
    domain: Domain,
}

#[derive(Default)]
struct Core {
    readers: u32,
    writer: bool,
    /// Exclusive acquisitions currently parked on this cell; fairness
    /// mode turns new shared requests away while this is non-zero.
    writers_waiting: u32,
}

struct Cell {
    state: Mutex<Core>,
    cv: Condvar,
}

/// Cumulative latch acquisition counters (deterministic: no wait counts).
#[derive(Debug, Default)]
pub struct LatchStats {
    tree_shared: AtomicU64,
    tree_exclusive: AtomicU64,
    page_shared: AtomicU64,
    page_exclusive: AtomicU64,
    upgrades: AtomicU64,
    restarts: AtomicU64,
}

/// Point-in-time copy of [`LatchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatchSnapshot {
    /// Tree latches taken shared (readers and optimistic writers).
    pub tree_shared: u64,
    /// Tree latches taken exclusive (structure modifications).
    pub tree_exclusive: u64,
    /// Page latches taken shared (inner-node crabbing).
    pub page_shared: u64,
    /// Page latches taken exclusive (leaf writes, meta counter bumps).
    pub page_exclusive: u64,
    /// Optimistic write attempts that had to upgrade to the tree-exclusive
    /// path (a split or merge was needed).
    pub upgrades: u64,
    /// Upgrades whose cached descent was invalidated by a concurrent
    /// writer and had to re-descend pessimistically.
    pub restarts: u64,
}

impl LatchSnapshot {
    /// Counter-wise difference `self - earlier`; saturates at zero.
    pub fn since(&self, earlier: &LatchSnapshot) -> LatchSnapshot {
        LatchSnapshot {
            tree_shared: self.tree_shared.saturating_sub(earlier.tree_shared),
            tree_exclusive: self.tree_exclusive.saturating_sub(earlier.tree_exclusive),
            page_shared: self.page_shared.saturating_sub(earlier.page_shared),
            page_exclusive: self.page_exclusive.saturating_sub(earlier.page_exclusive),
            upgrades: self.upgrades.saturating_sub(earlier.upgrades),
            restarts: self.restarts.saturating_sub(earlier.restarts),
        }
    }

    /// Total latch acquisitions of any kind.
    pub fn total_acquisitions(&self) -> u64 {
        self.tree_shared + self.tree_exclusive + self.page_shared + self.page_exclusive
    }
}

impl LatchStats {
    fn snapshot(&self) -> LatchSnapshot {
        LatchSnapshot {
            tree_shared: self.tree_shared.load(Ordering::Relaxed),
            tree_exclusive: self.tree_exclusive.load(Ordering::Relaxed),
            page_shared: self.page_shared.load(Ordering::Relaxed),
            page_exclusive: self.page_exclusive.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

/// One hash stripe of the cell table.
type Stripe = Mutex<HashMap<Key, Arc<Cell>>>;

/// One hash stripe of a [`CounterTable`].
type CounterStripe = Mutex<HashMap<u64, Arc<AtomicU64>>>;

/// Striped map of shared atomic counters (epochs, page versions).  The
/// handles are `Arc`s so hot paths fetch once and then operate lock-free;
/// entries are one atomic per distinct key (pages ever written), which is
/// bounded by the database size and never worth collecting.
struct CounterTable {
    stripes: Box<[CounterStripe]>,
}

impl Default for CounterTable {
    fn default() -> Self {
        CounterTable { stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect() }
    }
}

impl CounterTable {
    fn handle(&self, key: u64) -> Arc<AtomicU64> {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut map =
            self.stripes[(h as usize) & (STRIPES - 1)].lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_default())
    }
}

/// Per-pool latch table; obtain it via [`crate::BufferPool::latches`].
pub struct LatchManager {
    stripes: Box<[Stripe]>,
    /// Structure-modification epoch per tree, keyed by meta page id.
    epochs: CounterTable,
    /// Content version per page, keyed by page id.
    versions: CounterTable,
    stats: Arc<LatchStats>,
    /// Writer-fairness mode (see the module docs); off by default.
    fair: AtomicBool,
}

impl Default for LatchManager {
    fn default() -> Self {
        LatchManager {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            epochs: CounterTable::default(),
            versions: CounterTable::default(),
            stats: Arc::new(LatchStats::default()),
            fair: AtomicBool::new(false),
        }
    }
}

impl LatchManager {
    /// Shared latch on the whole tree rooted at `meta`: taken by readers
    /// for the duration of a scan and by optimistic (leaf-only) writers.
    pub fn tree_shared(&self, meta: PageId) -> LatchGuard<'_> {
        self.stats.tree_shared.fetch_add(1, Ordering::Relaxed);
        self.acquire(Key { page: meta.raw(), domain: Domain::Tree }, false)
    }

    /// Exclusive latch on the whole tree: taken for every structure
    /// modification (split, merge, root change, bulk load).
    pub fn tree_exclusive(&self, meta: PageId) -> LatchGuard<'_> {
        self.stats.tree_exclusive.fetch_add(1, Ordering::Relaxed);
        self.acquire(Key { page: meta.raw(), domain: Domain::Tree }, true)
    }

    /// Shared latch on one page (inner-node latch crabbing).
    pub fn page_shared(&self, page: PageId) -> LatchGuard<'_> {
        self.stats.page_shared.fetch_add(1, Ordering::Relaxed);
        self.acquire(Key { page: page.raw(), domain: Domain::Page }, false)
    }

    /// Exclusive latch on one page (leaf writes, meta counter bumps).
    pub fn page_exclusive(&self, page: PageId) -> LatchGuard<'_> {
        self.stats.page_exclusive.fetch_add(1, Ordering::Relaxed);
        self.acquire(Key { page: page.raw(), domain: Domain::Page }, true)
    }

    /// The structure-modification epoch of the tree rooted at `meta`.
    pub fn epoch(&self, meta: PageId) -> Arc<AtomicU64> {
        self.epochs.handle(meta.raw())
    }

    /// The content version counter of page `page`.
    pub fn page_version(&self, page: PageId) -> Arc<AtomicU64> {
        self.versions.handle(page.raw())
    }

    /// Records an optimistic→exclusive upgrade (a structure modification
    /// was needed).
    pub fn record_upgrade(&self) {
        self.stats.upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pessimistic restart (an upgrade found its cached descent
    /// invalidated by a concurrent writer).
    pub fn record_restart(&self) {
        self.stats.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the acquisition counters.
    pub fn stats(&self) -> LatchSnapshot {
        self.stats.snapshot()
    }

    /// Switches the opt-in writer-fairness mode (see the module docs):
    /// when enabled, a *new* shared acquisition blocks while any
    /// exclusive waiter is queued on the same latch, so a continuous
    /// reader stream can no longer starve a queued structure
    /// modification.  Off by default.
    ///
    /// # Deadlock contract
    ///
    /// Enabling fairness requires that no thread acquires the same latch
    /// shared while already holding it shared (nesting): the outer hold
    /// keeps a queued writer waiting, and the queued writer blocks the
    /// inner acquisition.  The B+-tree and relational layers in this
    /// workspace satisfy this (audited in ARCHITECTURE.md): every
    /// operation takes its tree latch shared at most once per thread, and
    /// the pre-existing "no DML under an open cursor" rule already forbids
    /// the writer-under-reader variant of the same cycle.
    pub fn set_writer_fairness(&self, enabled: bool) {
        self.fair.store(enabled, Ordering::Relaxed);
    }

    /// Whether writer-fairness mode is currently enabled.
    pub fn writer_fairness(&self) -> bool {
        self.fair.load(Ordering::Relaxed)
    }

    fn stripe(&self, key: &Key) -> &Stripe {
        let mut h = key.page.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= matches!(key.domain, Domain::Tree) as u64;
        &self.stripes[(h as usize) & (STRIPES - 1)]
    }

    fn acquire(&self, key: Key, exclusive: bool) -> LatchGuard<'_> {
        let cell = {
            let mut map = self.stripe(&key).lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_insert_with(|| {
                Arc::new(Cell { state: Mutex::new(Core::default()), cv: Condvar::new() })
            }))
        };
        {
            let mut core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if exclusive {
                core.writers_waiting += 1;
                while core.writer || core.readers > 0 {
                    core = cell.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
                core.writers_waiting -= 1;
                core.writer = true;
            } else {
                // Reader preference by default: only an active writer
                // blocks a shared request.  Fairness mode additionally
                // turns new shared requests away while a writer is queued.
                let fair = self.fair.load(Ordering::Relaxed);
                while core.writer || (fair && core.writers_waiting > 0) {
                    core = cell.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
                core.readers += 1;
            }
        }
        LatchGuard { manager: self, key, cell, exclusive }
    }

    /// Called by a dropping guard: release the mode, wake waiters, and
    /// garbage-collect the cell if nobody else references it.
    fn release(&self, key: Key, cell: &Arc<Cell>, exclusive: bool) {
        let wake = {
            let mut core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if exclusive {
                core.writer = false;
                true
            } else {
                core.readers -= 1;
                // A shared release that leaves other readers inside can't
                // unblock anyone (shared waiters only wait on writers, and
                // exclusive waiters need `readers == 0`): skip the wakeup.
                core.readers == 0
            }
        };
        if wake {
            cell.cv.notify_all();
        }
        // GC: while holding the stripe lock nobody can fetch the Arc, so a
        // strong count of 2 (map + our clone) proves the cell is unwanted.
        let mut map = self.stripe(&key).lock().unwrap_or_else(|e| e.into_inner());
        if Arc::strong_count(cell) == 2 {
            let idle = {
                let core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
                !core.writer && core.readers == 0
            };
            if idle {
                map.remove(&key);
            }
        }
    }
}

/// RAII latch hold; releasing is dropping.  Holds no buffer-pool state, so
/// guards are freely `Send`/`Sync` and can live inside scan cursors.
#[must_use = "a latch protects nothing once dropped"]
pub struct LatchGuard<'m> {
    manager: &'m LatchManager,
    key: Key,
    cell: Arc<Cell>,
    exclusive: bool,
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.manager.release(self.key, &self.cell, self.exclusive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shared_latches_coexist_nested() {
        let m = LatchManager::default();
        let a = m.tree_shared(PageId(7));
        let b = m.tree_shared(PageId(7)); // same thread, nested
        drop(a);
        drop(b);
        assert_eq!(m.stats().tree_shared, 2);
    }

    #[test]
    fn exclusive_excludes_shared_and_exclusive() {
        let m = Arc::new(LatchManager::default());
        let order = Arc::new(AtomicUsize::new(0));
        let x = m.page_exclusive(PageId(3));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let _g = if i % 2 == 0 {
                        m.page_shared(PageId(3))
                    } else {
                        m.page_exclusive(PageId(3))
                    };
                    order.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "all waiters blocked behind exclusive");
        drop(x);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(order.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn tree_and_page_domains_are_independent() {
        let m = LatchManager::default();
        let _t = m.tree_exclusive(PageId(5));
        // Same raw id, different domain: must not block.
        let _p = m.page_exclusive(PageId(5));
    }

    #[test]
    fn cells_are_garbage_collected() {
        let m = LatchManager::default();
        for i in 0..100u64 {
            let _g = m.page_exclusive(PageId(i));
        }
        let live: usize = m.stripes.iter().map(|s| s.lock().unwrap().len()).sum();
        assert_eq!(live, 0, "idle cells must be removed on release");
    }

    #[test]
    fn epochs_and_versions_are_shared_handles() {
        let m = LatchManager::default();
        let e1 = m.epoch(PageId(9));
        let e2 = m.epoch(PageId(9));
        e1.fetch_add(1, Ordering::SeqCst);
        assert_eq!(e2.load(Ordering::SeqCst), 1);
        let v1 = m.page_version(PageId(9));
        let v2 = m.page_version(PageId(9));
        v1.fetch_add(3, Ordering::SeqCst);
        assert_eq!(v2.load(Ordering::SeqCst), 3);
        assert_eq!(m.epoch(PageId(10)).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn default_mode_admits_shared_past_a_queued_writer() {
        // Reader preference (fairness off): a shared request succeeds even
        // while an exclusive waiter is queued — the property that keeps
        // nested shared acquisition deadlock-free.
        let m = Arc::new(LatchManager::default());
        let outer = m.tree_shared(PageId(4));
        let m2 = Arc::clone(&m);
        let writer = std::thread::spawn(move || {
            let _x = m2.tree_exclusive(PageId(4)); // parks behind `outer`
        });
        // Give the writer time to queue, then nest: must not block.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let inner = m.tree_shared(PageId(4));
        drop(inner);
        drop(outer);
        writer.join().unwrap();
    }

    #[test]
    fn fairness_blocks_new_shared_once_a_writer_queues() {
        use std::sync::atomic::AtomicBool;
        let m = Arc::new(LatchManager::default());
        m.set_writer_fairness(true);
        assert!(m.writer_fairness());
        let outer = m.tree_shared(PageId(6));
        let writer_in = Arc::new(AtomicBool::new(false));
        let late_reader_in = Arc::new(AtomicBool::new(false));
        let (m2, w2) = (Arc::clone(&m), Arc::clone(&writer_in));
        let writer = std::thread::spawn(move || {
            let _x = m2.tree_exclusive(PageId(6));
            w2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let (m3, r3, w3) = (Arc::clone(&m), Arc::clone(&late_reader_in), Arc::clone(&writer_in));
        let late_reader = std::thread::spawn(move || {
            let _s = m3.tree_shared(PageId(6));
            // By the time a late shared request gets in, the queued
            // writer must already have had its turn.
            assert!(w3.load(Ordering::SeqCst), "late reader overtook the queued writer");
            r3.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!writer_in.load(Ordering::SeqCst), "writer entered past a live shared hold");
        assert!(!late_reader_in.load(Ordering::SeqCst), "late reader admitted despite fairness");
        drop(outer); // readers drain -> writer -> late reader
        writer.join().unwrap();
        late_reader.join().unwrap();
    }

    #[test]
    fn fairness_prevents_writer_starvation_under_a_continuous_reader_stream() {
        use std::sync::atomic::AtomicBool;
        // Reader threads re-acquire the instant they release (bounded
        // holds, never nested — nesting under fairness is the documented
        // deadlock), so the shared count practically never reaches zero
        // under reader preference.  With fairness on, the moment the
        // writer queues all *new* shared requests park, the bounded holds
        // drain, and the writer must get in.
        let m = Arc::new(LatchManager::default());
        m.set_writer_fairness(true);
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while !done.load(Ordering::SeqCst) {
                        let g = m.tree_shared(PageId(2));
                        for _ in 0..20 {
                            std::thread::yield_now();
                        }
                        drop(g);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // The starvation regression: this acquisition must complete.
        let x = m.tree_exclusive(PageId(2));
        drop(x);
        done.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn writers_make_progress_between_reader_bursts() {
        let m = Arc::new(LatchManager::default());
        let m2 = Arc::clone(&m);
        let writer = std::thread::spawn(move || {
            for _ in 0..50 {
                let _x = m2.tree_exclusive(PageId(1));
            }
        });
        for _ in 0..50 {
            let _s = m.tree_shared(PageId(1));
        }
        writer.join().unwrap();
    }
}
