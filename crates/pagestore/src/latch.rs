//! Page latches: the short-term locks that let writers share a tree.
//!
//! The paper delegates all concurrency control to the host RDBMS; this
//! module is the reproduction's equivalent of that host-provided latch
//! manager.  It hands out **logical latches keyed by page id** — they
//! protect the *logical page*, not a buffer frame, so they remain valid
//! across evictions.
//!
//! Since the B-link refactor (PR 5) the latch vocabulary is deliberately
//! small: there are only per-page latches.  The tree-wide latch, the
//! per-tree structure-modification epoch, and the per-page version
//! counters that powered PR 3's optimistic-upgrade protocol are gone —
//! the B-link protocol never holds more than one node latch at a time
//! and never excludes readers, so there is nothing tree-wide left to
//! lock or to validate against (see `ri_btree::tree` and
//! ARCHITECTURE.md).  What this module gained instead are the
//! deterministic protocol counters: node **splits**, **right-link
//! chases** (a traversal found its key at or past a node's high key and
//! moved to the right sibling), and **incomplete-SMO completions** (a
//! separator post or root grow that finished a split whose sibling was
//! already published — the second phase of the two-phase split).
//!
//! Latches are deliberately **not** tied to buffer-pool I/O: acquiring or
//! releasing one never touches a page, so the single-threaded page-access
//! sequence of every operation is exactly the algorithm's — the property
//! `tests/pool_determinism.rs` pins with golden counters.
//!
//! # Modes and policy
//!
//! Latches are shared/exclusive with **reader preference** by default: a
//! shared request only waits while a writer is *inside*, never for queued
//! writers.  This keeps nested shared acquisitions by one thread safe at
//! the usual cost that a continuous reader stream can starve writers.
//! (The B-link tree itself takes only exclusive page latches — its
//! readers are latch-free — but the heap and catalog layers share this
//! manager, and the mode machinery is generic.)
//!
//! An opt-in **writer-fairness mode**
//! ([`LatchManager::set_writer_fairness`]) blocks *new* shared
//! acquisitions once an exclusive waiter has queued, bounding writer wait
//! times to the drain of the readers already inside.  It is off by
//! default because it makes nested shared acquisition on the *same* latch
//! a deadlock (the outer hold keeps the writer queued, the queued writer
//! blocks the inner acquisition); enable it only for workloads audited to
//! never nest — nothing in this workspace nests shared holds of one page
//! latch (the audit is recorded in ARCHITECTURE.md).
//!
//! Latch *waits* are intentionally uncounted in [`LatchStats`]: wait
//! counts depend on thread scheduling, and every number exposed here
//! feeds deterministic benchmark snapshots.  The protocol counters are
//! deterministic single-threaded (chases are 0 without concurrency;
//! splits and completions depend only on the operation sequence).

use crate::page::PageId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of hash-striped cell maps (a power of two).
const STRIPES: usize = 16;

#[derive(Default)]
struct Core {
    readers: u32,
    writer: bool,
    /// Exclusive acquisitions currently parked on this cell; fairness
    /// mode turns new shared requests away while this is non-zero.
    writers_waiting: u32,
}

struct Cell {
    state: Mutex<Core>,
    cv: Condvar,
}

/// Cumulative latch / protocol counters (deterministic: no wait counts).
#[derive(Debug, Default)]
pub struct LatchStats {
    page_shared: AtomicU64,
    page_exclusive: AtomicU64,
    splits: AtomicU64,
    right_link_chases: AtomicU64,
    incomplete_smo_completions: AtomicU64,
    pending_root_grow_waits: AtomicU64,
}

/// Point-in-time copy of [`LatchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatchSnapshot {
    /// Page latches taken shared.
    pub page_shared: u64,
    /// Page latches taken exclusive (leaf/parent writes, meta holds).
    pub page_exclusive: u64,
    /// Node splits performed (leaf and internal; phase 1 of the B-link
    /// two-phase split: sibling allocated, linked, and published).
    pub splits: u64,
    /// Traversals that found their target at or past a node's high key
    /// and moved right through the right link.  Zero single-threaded:
    /// only an in-flight concurrent split makes a descent land left of
    /// its key.
    pub right_link_chases: u64,
    /// Completions of in-flight structure modifications: separator posts
    /// into a parent (or root grows) that finished a split whose right
    /// sibling was already reachable through the left node's right link
    /// (phase 2 of the two-phase split).
    pub incomplete_smo_completions: u64,
    /// Times a separator post found that its parent *level* did not
    /// exist yet (a top-level sibling split racing a still-pending root
    /// grow) and had to wait for the grow to land.  Zero
    /// single-threaded.
    pub pending_root_grow_waits: u64,
}

impl LatchSnapshot {
    /// Counter-wise difference `self - earlier`; saturates at zero.
    pub fn since(&self, earlier: &LatchSnapshot) -> LatchSnapshot {
        LatchSnapshot {
            page_shared: self.page_shared.saturating_sub(earlier.page_shared),
            page_exclusive: self.page_exclusive.saturating_sub(earlier.page_exclusive),
            splits: self.splits.saturating_sub(earlier.splits),
            right_link_chases: self.right_link_chases.saturating_sub(earlier.right_link_chases),
            incomplete_smo_completions: self
                .incomplete_smo_completions
                .saturating_sub(earlier.incomplete_smo_completions),
            pending_root_grow_waits: self
                .pending_root_grow_waits
                .saturating_sub(earlier.pending_root_grow_waits),
        }
    }

    /// Total latch acquisitions of any kind.
    pub fn total_acquisitions(&self) -> u64 {
        self.page_shared + self.page_exclusive
    }
}

impl LatchStats {
    fn snapshot(&self) -> LatchSnapshot {
        LatchSnapshot {
            page_shared: self.page_shared.load(Ordering::Relaxed),
            page_exclusive: self.page_exclusive.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            right_link_chases: self.right_link_chases.load(Ordering::Relaxed),
            incomplete_smo_completions: self.incomplete_smo_completions.load(Ordering::Relaxed),
            pending_root_grow_waits: self.pending_root_grow_waits.load(Ordering::Relaxed),
        }
    }
}

/// One hash stripe of the cell table.
type Stripe = Mutex<HashMap<u64, Arc<Cell>>>;

/// Per-pool latch table; obtain it via [`crate::BufferPool::latches`].
pub struct LatchManager {
    stripes: Box<[Stripe]>,
    stats: Arc<LatchStats>,
    /// Writer-fairness mode (see the module docs); off by default.
    fair: AtomicBool,
}

impl Default for LatchManager {
    fn default() -> Self {
        LatchManager {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            stats: Arc::new(LatchStats::default()),
            fair: AtomicBool::new(false),
        }
    }
}

impl LatchManager {
    /// Shared latch on one page.
    pub fn page_shared(&self, page: PageId) -> LatchGuard<'_> {
        self.stats.page_shared.fetch_add(1, Ordering::Relaxed);
        self.acquire(page.raw(), false)
    }

    /// Exclusive latch on one page (leaf/parent writes, meta holds).
    pub fn page_exclusive(&self, page: PageId) -> LatchGuard<'_> {
        self.stats.page_exclusive.fetch_add(1, Ordering::Relaxed);
        self.acquire(page.raw(), true)
    }

    /// Records a node split (phase 1 of the two-phase B-link split).
    pub fn record_split(&self) {
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a right-link chase (a traversal moved right past a high
    /// key).
    pub fn record_right_link_chase(&self) {
        self.stats.right_link_chases.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the completion of an in-flight structure modification
    /// (phase 2 of the two-phase split: separator posted or root grown).
    pub fn record_smo_completion(&self) {
        self.stats.incomplete_smo_completions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one wait probe by a separator post whose parent level
    /// does not exist yet (pending root grow).
    pub fn record_pending_grow_wait(&self) {
        self.stats.pending_root_grow_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn stats(&self) -> LatchSnapshot {
        self.stats.snapshot()
    }

    /// Switches the opt-in writer-fairness mode (see the module docs):
    /// when enabled, a *new* shared acquisition blocks while any
    /// exclusive waiter is queued on the same latch, so a continuous
    /// reader stream can no longer starve a queued writer.  Off by
    /// default.
    ///
    /// # Deadlock contract
    ///
    /// Enabling fairness requires that no thread acquires the same latch
    /// shared while already holding it shared (nesting): the outer hold
    /// keeps a queued writer waiting, and the queued writer blocks the
    /// inner acquisition.  Nothing in this workspace nests shared holds
    /// of one page latch (audited in ARCHITECTURE.md; the B-link tree's
    /// readers are latch-free, and its writers hold at most one
    /// exclusive node latch plus the meta latch).
    pub fn set_writer_fairness(&self, enabled: bool) {
        self.fair.store(enabled, Ordering::Relaxed);
    }

    /// Whether writer-fairness mode is currently enabled.
    pub fn writer_fairness(&self) -> bool {
        self.fair.load(Ordering::Relaxed)
    }

    fn stripe(&self, key: u64) -> &Stripe {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(h as usize) & (STRIPES - 1)]
    }

    fn acquire(&self, key: u64, exclusive: bool) -> LatchGuard<'_> {
        let cell = {
            let mut map = self.stripe(key).lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_insert_with(|| {
                Arc::new(Cell { state: Mutex::new(Core::default()), cv: Condvar::new() })
            }))
        };
        {
            let mut core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if exclusive {
                core.writers_waiting += 1;
                while core.writer || core.readers > 0 {
                    core = cell.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
                core.writers_waiting -= 1;
                core.writer = true;
            } else {
                // Reader preference by default: only an active writer
                // blocks a shared request.  Fairness mode additionally
                // turns new shared requests away while a writer is queued.
                let fair = self.fair.load(Ordering::Relaxed);
                while core.writer || (fair && core.writers_waiting > 0) {
                    core = cell.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
                core.readers += 1;
            }
        }
        LatchGuard { manager: self, key, cell, exclusive }
    }

    /// Called by a dropping guard: release the mode, wake waiters, and
    /// garbage-collect the cell if nobody else references it.
    fn release(&self, key: u64, cell: &Arc<Cell>, exclusive: bool) {
        let wake = {
            let mut core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if exclusive {
                core.writer = false;
                true
            } else {
                core.readers -= 1;
                // A shared release that leaves other readers inside can't
                // unblock anyone (shared waiters only wait on writers, and
                // exclusive waiters need `readers == 0`): skip the wakeup.
                core.readers == 0
            }
        };
        if wake {
            cell.cv.notify_all();
        }
        // GC: while holding the stripe lock nobody can fetch the Arc, so a
        // strong count of 2 (map + our clone) proves the cell is unwanted.
        let mut map = self.stripe(key).lock().unwrap_or_else(|e| e.into_inner());
        if Arc::strong_count(cell) == 2 {
            let idle = {
                let core = cell.state.lock().unwrap_or_else(|e| e.into_inner());
                !core.writer && core.readers == 0
            };
            if idle {
                map.remove(&key);
            }
        }
    }
}

/// RAII latch hold; releasing is dropping.  Holds no buffer-pool state, so
/// guards are freely `Send`/`Sync`.
#[must_use = "a latch protects nothing once dropped"]
pub struct LatchGuard<'m> {
    manager: &'m LatchManager,
    key: u64,
    cell: Arc<Cell>,
    exclusive: bool,
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.manager.release(self.key, &self.cell, self.exclusive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shared_latches_coexist_nested() {
        let m = LatchManager::default();
        let a = m.page_shared(PageId(7));
        let b = m.page_shared(PageId(7)); // same thread, nested
        drop(a);
        drop(b);
        assert_eq!(m.stats().page_shared, 2);
    }

    #[test]
    fn exclusive_excludes_shared_and_exclusive() {
        let m = Arc::new(LatchManager::default());
        let order = Arc::new(AtomicUsize::new(0));
        let x = m.page_exclusive(PageId(3));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let _g = if i % 2 == 0 {
                        m.page_shared(PageId(3))
                    } else {
                        m.page_exclusive(PageId(3))
                    };
                    order.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "all waiters blocked behind exclusive");
        drop(x);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(order.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn cells_are_garbage_collected() {
        let m = LatchManager::default();
        for i in 0..100u64 {
            let _g = m.page_exclusive(PageId(i));
        }
        let live: usize = m.stripes.iter().map(|s| s.lock().unwrap().len()).sum();
        assert_eq!(live, 0, "idle cells must be removed on release");
    }

    #[test]
    fn protocol_counters_accumulate_and_diff() {
        let m = LatchManager::default();
        let before = m.stats();
        m.record_split();
        m.record_split();
        m.record_right_link_chase();
        m.record_smo_completion();
        let delta = m.stats().since(&before);
        assert_eq!(delta.splits, 2);
        assert_eq!(delta.right_link_chases, 1);
        assert_eq!(delta.incomplete_smo_completions, 1);
        assert_eq!(delta.total_acquisitions(), 0, "protocol counters are not acquisitions");
    }

    #[test]
    fn default_mode_admits_shared_past_a_queued_writer() {
        // Reader preference (fairness off): a shared request succeeds even
        // while an exclusive waiter is queued — the property that keeps
        // nested shared acquisition deadlock-free.
        let m = Arc::new(LatchManager::default());
        let outer = m.page_shared(PageId(4));
        let m2 = Arc::clone(&m);
        let writer = std::thread::spawn(move || {
            let _x = m2.page_exclusive(PageId(4)); // parks behind `outer`
        });
        // Give the writer time to queue, then nest: must not block.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let inner = m.page_shared(PageId(4));
        drop(inner);
        drop(outer);
        writer.join().unwrap();
    }

    #[test]
    fn fairness_blocks_new_shared_once_a_writer_queues() {
        use std::sync::atomic::AtomicBool;
        let m = Arc::new(LatchManager::default());
        m.set_writer_fairness(true);
        assert!(m.writer_fairness());
        let outer = m.page_shared(PageId(6));
        let writer_in = Arc::new(AtomicBool::new(false));
        let late_reader_in = Arc::new(AtomicBool::new(false));
        let (m2, w2) = (Arc::clone(&m), Arc::clone(&writer_in));
        let writer = std::thread::spawn(move || {
            let _x = m2.page_exclusive(PageId(6));
            w2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let (m3, r3, w3) = (Arc::clone(&m), Arc::clone(&late_reader_in), Arc::clone(&writer_in));
        let late_reader = std::thread::spawn(move || {
            let _s = m3.page_shared(PageId(6));
            // By the time a late shared request gets in, the queued
            // writer must already have had its turn.
            assert!(w3.load(Ordering::SeqCst), "late reader overtook the queued writer");
            r3.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!writer_in.load(Ordering::SeqCst), "writer entered past a live shared hold");
        assert!(!late_reader_in.load(Ordering::SeqCst), "late reader admitted despite fairness");
        drop(outer); // readers drain -> writer -> late reader
        writer.join().unwrap();
        late_reader.join().unwrap();
    }

    #[test]
    fn fairness_prevents_writer_starvation_under_a_continuous_reader_stream() {
        use std::sync::atomic::AtomicBool;
        // Reader threads re-acquire the instant they release (bounded
        // holds, never nested — nesting under fairness is the documented
        // deadlock), so the shared count practically never reaches zero
        // under reader preference.  With fairness on, the moment the
        // writer queues all *new* shared requests park, the bounded holds
        // drain, and the writer must get in.
        let m = Arc::new(LatchManager::default());
        m.set_writer_fairness(true);
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while !done.load(Ordering::SeqCst) {
                        let g = m.page_shared(PageId(2));
                        for _ in 0..20 {
                            std::thread::yield_now();
                        }
                        drop(g);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // The starvation regression: this acquisition must complete.
        let x = m.page_exclusive(PageId(2));
        drop(x);
        done.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn writers_make_progress_between_reader_bursts() {
        let m = Arc::new(LatchManager::default());
        let m2 = Arc::clone(&m);
        let writer = std::thread::spawn(move || {
            for _ in 0..50 {
                let _x = m2.page_exclusive(PageId(1));
            }
        });
        for _ in 0..50 {
            let _s = m.page_shared(PageId(1));
        }
        writer.join().unwrap();
    }
}
