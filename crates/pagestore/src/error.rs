//! Error type shared by all storage layers.

use std::fmt;

/// Errors produced by the storage stack.
#[derive(Debug)]
pub enum Error {
    /// A page id referred to a block beyond the end of the device.
    PageOutOfBounds {
        /// The offending page id.
        page: u64,
        /// Number of pages currently allocated on the device.
        num_pages: u64,
    },
    /// Underlying operating-system I/O failure (file-backed disks only).
    Io(std::io::Error),
    /// Every frame of the buffer pool is pinned; no victim can be evicted.
    PoolExhausted {
        /// Configured capacity of the pool in frames.
        capacity: usize,
    },
    /// A fault injected by [`crate::faulty::FaultyDisk`] for testing.
    InjectedFault {
        /// Which operation failed ("read" or "write").
        op: &'static str,
        /// The page the operation targeted.
        page: u64,
    },
    /// The simulated process/machine died ([`crate::faulty::CrashPlan`]);
    /// every operation on the crashed device fails until it is "rebooted"
    /// by reopening the underlying storage.
    Crashed,
    /// On-disk bytes failed validation when being decoded.
    Corrupt(String),
    /// A caller-supplied invariant did not hold (e.g. mismatched page size).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageOutOfBounds { page, num_pages } => {
                write!(f, "page {page} out of bounds (device has {num_pages} pages)")
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            Error::InjectedFault { op, page } => {
                write!(f, "injected {op} fault on page {page}")
            }
            Error::Crashed => {
                write!(f, "simulated crash: device is offline until reopened")
            }
            Error::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used across the storage crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::PageOutOfBounds { page: 9, num_pages: 3 };
        assert!(e.to_string().contains("page 9"));
        let e = Error::PoolExhausted { capacity: 200 };
        assert!(e.to_string().contains("200"));
        let e = Error::InjectedFault { op: "read", page: 7 };
        assert!(e.to_string().contains("read"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
